#include "algebra/vectorized.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>

#include "algebra/row_batch.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "storage/column_table.h"

namespace wuw {
namespace vec {

namespace {

// ---------------------------------------------------------------------------
// Gate.

int g_enabled_override = -1;

bool EnvEnabled() {
  const char* env = std::getenv("WUW_COLUMNAR");
  return env == nullptr || std::string(env) != "0";
}

// ---------------------------------------------------------------------------
// Cell hashing / equality.  The hash is engine-internal (see vectorized.h);
// the only requirement is consistency with Value equality: equal cells must
// hash equally.  Numerics therefore hash through their normalized double
// image (Value compares numerics by image), strings through content-based
// per-code dictionary hashes, nulls through one constant (null == null).

inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr uint64_t kNullCellHash = 0x9e3779b97f4a7c15ULL;

inline uint64_t HashDouble(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0 (mirrors Value::Hash)
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return MixBits(bits);
}

inline double NumericImageAt(const ColumnVec& c, size_t i) {
  return c.type == TypeId::kDouble ? c.dbls[i]
                                   : static_cast<double>(c.ints[i]);
}

inline uint64_t CellHashAt(const ColumnVec& c, size_t i) {
  if (c.type == TypeId::kString) {
    uint32_t code = c.codes[i];
    return code == kNullStringCode ? kNullCellHash : c.dict->HashOf(code);
  }
  if (c.type == TypeId::kNull || c.IsNull(i)) return kNullCellHash;
  return HashDouble(NumericImageAt(c, i));
}

/// Same combining scheme as KeyHash (algebra/key_util.h) so the hash
/// distributes comparably; the seed/sequence is irrelevant to correctness.
inline uint64_t CombineKeyHash(uint64_t h, uint64_t cell) {
  return h ^ (cell + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

constexpr uint64_t kKeyHashSeed = 0x345678;

// ---------------------------------------------------------------------------
// Key equality plan between two (possibly identical) column tables.

bool IsNumericType(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kDate;
}

struct KeyColEq {
  const ColumnVec* a;
  const ColumnVec* b;
  enum Kind : uint8_t {
    kNumNum,        // both numeric: compare double images
    kStrSameDict,   // both string, shared dictionary: compare codes
    kStrCrossDict,  // both string, distinct dictionaries: translate b -> a
    kRankMismatch,  // different type ranks: only null == null matches
  } kind;
  /// kStrCrossDict: b-code -> a-code (kNullStringCode = no such string).
  std::vector<uint32_t> trans;
};

inline bool CellIsNull(const ColumnVec& c, size_t i) {
  if (c.type == TypeId::kString) return c.codes[i] == kNullStringCode;
  if (c.type == TypeId::kNull) return true;
  return c.IsNull(i);
}

struct KeyEq {
  std::vector<KeyColEq> cols;
  /// Value-level hash lookups performed while building translations.
  int64_t setup_value_hashes = 0;

  bool Eq(size_t i, size_t j) const {
    for (const KeyColEq& c : cols) {
      bool an = CellIsNull(*c.a, i), bn = CellIsNull(*c.b, j);
      if (an || bn) {
        if (an != bn) return false;  // null == null passes the column
        continue;
      }
      switch (c.kind) {
        case KeyColEq::kNumNum:
          if (NumericImageAt(*c.a, i) != NumericImageAt(*c.b, j)) return false;
          break;
        case KeyColEq::kStrSameDict:
          if (c.a->codes[i] != c.b->codes[j]) return false;
          break;
        case KeyColEq::kStrCrossDict: {
          uint32_t t = c.trans[c.b->codes[j]];
          if (t == kNullStringCode || c.a->codes[i] != t) return false;
          break;
        }
        case KeyColEq::kRankMismatch:
          return false;  // both non-null, types never compare equal
      }
    }
    return true;
  }
};

KeyEq MakeKeyEq(const ColumnTable& a, const std::vector<size_t>& aidx,
                const ColumnTable& b, const std::vector<size_t>& bidx) {
  KeyEq eq;
  eq.cols.reserve(aidx.size());
  for (size_t k = 0; k < aidx.size(); ++k) {
    KeyColEq col;
    col.a = &a.column(aidx[k]);
    col.b = &b.column(bidx[k]);
    TypeId ta = col.a->type, tb = col.b->type;
    if (IsNumericType(ta) && IsNumericType(tb)) {
      col.kind = KeyColEq::kNumNum;
    } else if (ta == TypeId::kString && tb == TypeId::kString) {
      if (col.a->dict == col.b->dict) {
        col.kind = KeyColEq::kStrSameDict;
      } else {
        col.kind = KeyColEq::kStrCrossDict;
        const StringDict& bd = *col.b->dict;
        const StringDict& ad = *col.a->dict;
        col.trans.resize(bd.size());
        for (uint32_t code = 0; code < bd.size(); ++code) {
          col.trans[code] = ad.Find(bd.At(code));
        }
        eq.setup_value_hashes += static_cast<int64_t>(bd.size());
      }
    } else if (ta == TypeId::kNull || tb == TypeId::kNull) {
      // Every cell of the kNull side is null; the null/null branch of Eq
      // decides, so the kind is never consulted.
      col.kind = KeyColEq::kRankMismatch;
    } else {
      col.kind = KeyColEq::kRankMismatch;
    }
    eq.cols.push_back(std::move(col));
  }
  return eq;
}

/// Hash of row i's key columns `cols`, counting one mix per column into
/// *mixes.
inline uint64_t RowKeyHash(const std::vector<const ColumnVec*>& cols,
                           size_t i) {
  uint64_t h = kKeyHashSeed;
  for (const ColumnVec* c : cols) h = CombineKeyHash(h, CellHashAt(*c, i));
  return h;
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation.  CompileNode mirrors BindNode
// (expr/evaluator.cc) exactly — same column resolution, same static type
// rules — and EvalNode reproduces EvalNode's per-row semantics: arith on
// nulls yields null, int64 arithmetic stays exact except kDiv (double),
// division by zero yields null, comparisons on nulls yield Int64(0), and
// ToBool treats null as false, strings as non-empty, numerics by image.

struct VecExpr {
  ExprKind kind = ExprKind::kLiteral;
  size_t col = 0;
  Value literal;
  ArithOp aop = ArithOp::kAdd;
  CompareOp cop = CompareOp::kEq;
  LogicalOp lop = LogicalOp::kAnd;
  std::unique_ptr<VecExpr> lhs, rhs;
  TypeId type = TypeId::kNull;
};

std::unique_ptr<VecExpr> CompileNode(const ScalarExpr& e, const Schema& schema,
                                     bool* ok) {
  auto n = std::make_unique<VecExpr>();
  n->kind = e.kind();
  switch (e.kind()) {
    case ExprKind::kColumn: {
      int idx = schema.IndexOf(e.column_name());
      if (idx < 0) {
        *ok = false;  // row path aborts on the same input; let it
        return nullptr;
      }
      n->col = static_cast<size_t>(idx);
      n->type = schema.column(n->col).type;
      return n;
    }
    case ExprKind::kLiteral:
      n->literal = e.literal();
      n->type = n->literal.type();
      return n;
    case ExprKind::kArith: {
      n->aop = e.arith_op();
      n->lhs = CompileNode(*e.lhs(), schema, ok);
      n->rhs = CompileNode(*e.rhs(), schema, ok);
      if (!*ok) return nullptr;
      if (!IsNumericType(n->lhs->type) || !IsNumericType(n->rhs->type)) {
        *ok = false;  // row path aborts ("arithmetic requires numeric...")
        return nullptr;
      }
      n->type = (n->lhs->type == TypeId::kInt64 &&
                 n->rhs->type == TypeId::kInt64 && n->aop != ArithOp::kDiv)
                    ? TypeId::kInt64
                    : TypeId::kDouble;
      return n;
    }
    case ExprKind::kCompare: {
      n->cop = e.compare_op();
      n->lhs = CompileNode(*e.lhs(), schema, ok);
      n->rhs = CompileNode(*e.rhs(), schema, ok);
      if (!*ok) return nullptr;
      n->type = TypeId::kInt64;
      return n;
    }
    case ExprKind::kLogical: {
      n->lop = e.logical_op();
      n->lhs = CompileNode(*e.lhs(), schema, ok);
      n->rhs = CompileNode(*e.rhs(), schema, ok);
      if (!*ok) return nullptr;
      n->type = TypeId::kInt64;
      return n;
    }
    case ExprKind::kNot: {
      n->lhs = CompileNode(*e.lhs(), schema, ok);
      if (!*ok) return nullptr;
      n->type = TypeId::kInt64;
      return n;
    }
  }
  *ok = false;
  return nullptr;
}

/// Per-kernel-call vectorization counters, flushed in one batch of metric
/// adds so totals stay independent of morsel/batch boundaries.
struct VecCounters {
  int64_t rows = 0;
  int64_t batches = 0;
  int64_t key_mixes = 0;
  int64_t key_cmps = 0;
  int64_t code_evals = 0;
  int64_t value_hashes = 0;
  int64_t value_cmps = 0;

  void Flush() const {
    WUW_METRIC_ADD("engine.vec.rows", obs::MetricClass::kEngine, rows);
    WUW_METRIC_ADD("engine.vec.batches", obs::MetricClass::kEngine, batches);
    WUW_METRIC_ADD("engine.vec.key_mixes", obs::MetricClass::kEngine,
                   key_mixes);
    WUW_METRIC_ADD("engine.vec.key_cmps", obs::MetricClass::kEngine, key_cmps);
    WUW_METRIC_ADD("engine.vec.code_evals", obs::MetricClass::kEngine,
                   code_evals);
    WUW_METRIC_ADD("engine.vec.value_hashes", obs::MetricClass::kEngine,
                   value_hashes);
    WUW_METRIC_ADD("engine.vec.value_cmps", obs::MetricClass::kEngine,
                   value_cmps);
  }
};

/// A materialized expression result over one batch: either a broadcast
/// constant or per-visible-row typed arrays.
struct VecVal {
  TypeId type = TypeId::kNull;
  bool is_const = false;
  Value cval;
  std::vector<int64_t> ints;    // kInt64 / kDate payload, and bool results
  std::vector<double> dbls;     // kDouble payload
  std::vector<uint32_t> codes;  // kString payload
  std::shared_ptr<const StringDict> dict;
  std::vector<uint8_t> nulls;  // empty = no nulls (non-string types)

  bool IsNullAt(size_t k) const {
    if (is_const) return cval.is_null();
    if (type == TypeId::kString) return codes[k] == kNullStringCode;
    return !nulls.empty() && nulls[k] != 0;
  }
  int64_t IntAt(size_t k) const {
    return is_const ? cval.AsInt64() : ints[k];
  }
  double ImageAt(size_t k) const {
    if (is_const) return cval.NumericValue();
    return type == TypeId::kDouble ? dbls[k]
                                   : static_cast<double>(ints[k]);
  }
};

/// Materializes visible cell k with its exact row-path Value.
Value ValueFromVec(const VecVal& v, size_t k) {
  if (v.is_const) return v.cval;
  if (v.IsNullAt(k)) return Value::Null();
  switch (v.type) {
    case TypeId::kInt64:
      return Value::Int64(v.ints[k]);
    case TypeId::kDate:
      return Value::Date(v.ints[k]);
    case TypeId::kDouble:
      return Value::Double(v.dbls[k]);
    case TypeId::kString:
      return Value::String(v.dict->At(v.codes[k]));
    case TypeId::kNull:
      return Value::Null();
  }
  return Value::Null();
}

bool ToBoolValue(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == TypeId::kString) return !v.AsString().empty();
  return v.NumericValue() != 0.0;
}

bool CmpValues(CompareOp op, const Value& l, const Value& r) {
  switch (op) {
    case CompareOp::kEq:
      return l == r;
    case CompareOp::kNe:
      return l != r;
    case CompareOp::kLt:
      return l < r;
    case CompareOp::kLe:
      return !(r < l);
    case CompareOp::kGt:
      return r < l;
    case CompareOp::kGe:
      return !(l < r);
  }
  return false;
}

bool CmpDoubles(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

Value FoldArith(ArithOp op, TypeId type, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (type == TypeId::kInt64) {
    int64_t a = l.AsInt64(), b = r.AsInt64();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        break;
    }
  }
  double a = l.NumericValue(), b = r.NumericValue();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      return b == 0.0 ? Value::Null() : Value::Double(a / b);
  }
  return Value::Null();
}

bool EvalNodeVec(const VecExpr& n, const ColumnTable& ct, const RowBatch& b,
                 VecCounters* cnt, VecVal* out);

/// Boolean image of `v` over `m` visible rows (row-path ToBool semantics).
bool ToBoolVec(const VecVal& v, size_t m, VecCounters* cnt,
               std::vector<uint8_t>* out) {
  out->assign(m, 0);
  if (v.is_const) {
    if (ToBoolValue(v.cval)) out->assign(m, 1);
    return true;
  }
  switch (v.type) {
    case TypeId::kInt64:
    case TypeId::kDate:
      for (size_t k = 0; k < m; ++k) {
        (*out)[k] = (!v.IsNullAt(k) &&
                     static_cast<double>(v.ints[k]) != 0.0)
                        ? 1
                        : 0;
      }
      return true;
    case TypeId::kDouble:
      for (size_t k = 0; k < m; ++k) {
        (*out)[k] = (!v.IsNullAt(k) && v.dbls[k] != 0.0) ? 1 : 0;
      }
      return true;
    case TypeId::kString: {
      // One evaluation per distinct code, then a table lookup per row.
      std::vector<uint8_t> pass(v.dict->size());
      for (uint32_t code = 0; code < v.dict->size(); ++code) {
        pass[code] = v.dict->At(code).empty() ? 0 : 1;
      }
      cnt->code_evals += static_cast<int64_t>(v.dict->size());
      for (size_t k = 0; k < m; ++k) {
        uint32_t code = v.codes[k];
        (*out)[k] = code == kNullStringCode ? 0 : pass[code];
      }
      return true;
    }
    case TypeId::kNull:
      return true;  // all false
  }
  return false;
}

bool EvalCompareVec(const VecExpr& n, const VecVal& l, const VecVal& r,
                    size_t m, VecCounters* cnt, VecVal* out) {
  out->type = TypeId::kInt64;
  out->ints.assign(m, 0);
  // A null operand compares to Int64(0) — a constant-null side zeroes the
  // whole result.
  if ((l.is_const && l.cval.is_null()) || (r.is_const && r.cval.is_null())) {
    return true;
  }
  if (l.is_const && r.is_const) {
    int res = CmpValues(n.cop, l.cval, r.cval) ? 1 : 0;
    out->ints.assign(m, res);
    return true;
  }
  const bool lnum = IsNumericType(l.type), rnum = IsNumericType(r.type);
  if (lnum && rnum) {
    const double lci = l.is_const ? l.cval.NumericValue() : 0.0;
    const double rci = r.is_const ? r.cval.NumericValue() : 0.0;
    for (size_t k = 0; k < m; ++k) {
      if (l.IsNullAt(k) || r.IsNullAt(k)) continue;
      double a = l.is_const ? lci : l.ImageAt(k);
      double c = r.is_const ? rci : r.ImageAt(k);
      out->ints[k] = CmpDoubles(n.cop, a, c) ? 1 : 0;
    }
    return true;
  }
  if (l.type == TypeId::kString && r.type == TypeId::kString) {
    if (r.is_const || l.is_const) {
      // Column vs string literal: evaluate once per distinct code.
      const VecVal& col = r.is_const ? l : r;
      const Value& lit = r.is_const ? r.cval : l.cval;
      const bool col_on_left = r.is_const;
      std::vector<uint8_t> table(col.dict->size());
      for (uint32_t code = 0; code < col.dict->size(); ++code) {
        Value cell = Value::String(col.dict->At(code));
        table[code] = (col_on_left ? CmpValues(n.cop, cell, lit)
                                   : CmpValues(n.cop, lit, cell))
                          ? 1
                          : 0;
      }
      cnt->code_evals += static_cast<int64_t>(col.dict->size());
      for (size_t k = 0; k < m; ++k) {
        uint32_t code = col.codes[k];
        if (code == kNullStringCode) continue;
        out->ints[k] = table[code];
      }
      return true;
    }
    if (l.dict == r.dict) {
      if (n.cop == CompareOp::kEq || n.cop == CompareOp::kNe) {
        const bool want_eq = n.cop == CompareOp::kEq;
        for (size_t k = 0; k < m; ++k) {
          if (l.IsNullAt(k) || r.IsNullAt(k)) continue;
          out->ints[k] = ((l.codes[k] == r.codes[k]) == want_eq) ? 1 : 0;
        }
        return true;
      }
    }
    // Cross-dictionary (or ordered same-dict) column/column compare: per-row
    // string comparison, no allocation.
    for (size_t k = 0; k < m; ++k) {
      if (l.IsNullAt(k) || r.IsNullAt(k)) continue;
      const std::string& a = l.dict->At(l.codes[k]);
      const std::string& bstr = r.dict->At(r.codes[k]);
      bool res = false;
      switch (n.cop) {
        case CompareOp::kEq:
          res = a == bstr;
          break;
        case CompareOp::kNe:
          res = a != bstr;
          break;
        case CompareOp::kLt:
          res = a < bstr;
          break;
        case CompareOp::kLe:
          res = a <= bstr;
          break;
        case CompareOp::kGt:
          res = a > bstr;
          break;
        case CompareOp::kGe:
          res = a >= bstr;
          break;
      }
      out->ints[k] = res ? 1 : 0;
      ++cnt->value_cmps;
    }
    return true;
  }
  // Mixed rank (string vs numeric): the outcome is rank-determined and
  // identical for every pair of non-null cells.
  {
    int lrank = l.type == TypeId::kString ? 2 : 1;
    int rrank = r.type == TypeId::kString ? 2 : 1;
    bool res = false;
    switch (n.cop) {
      case CompareOp::kEq:
        res = false;
        break;
      case CompareOp::kNe:
        res = true;
        break;
      case CompareOp::kLt:
        res = lrank < rrank;
        break;
      case CompareOp::kLe:
        res = lrank <= rrank;
        break;
      case CompareOp::kGt:
        res = lrank > rrank;
        break;
      case CompareOp::kGe:
        res = lrank >= rrank;
        break;
    }
    for (size_t k = 0; k < m; ++k) {
      if (l.IsNullAt(k) || r.IsNullAt(k)) continue;
      out->ints[k] = res ? 1 : 0;
    }
    return true;
  }
}

bool EvalNodeVec(const VecExpr& n, const ColumnTable& ct, const RowBatch& b,
                 VecCounters* cnt, VecVal* out) {
  const size_t m = b.size();
  out->type = n.type;
  switch (n.kind) {
    case ExprKind::kLiteral:
      out->is_const = true;
      out->cval = n.literal;
      return true;
    case ExprKind::kColumn: {
      const ColumnVec& c = ct.column(n.col);
      if (c.type == TypeId::kNull) {
        out->is_const = true;
        out->cval = Value::Null();
        return true;
      }
      switch (c.type) {
        case TypeId::kInt64:
        case TypeId::kDate:
          out->ints.resize(m);
          for (size_t k = 0; k < m; ++k) out->ints[k] = c.ints[b.row(k)];
          break;
        case TypeId::kDouble:
          out->dbls.resize(m);
          for (size_t k = 0; k < m; ++k) out->dbls[k] = c.dbls[b.row(k)];
          break;
        case TypeId::kString:
          out->codes.resize(m);
          for (size_t k = 0; k < m; ++k) out->codes[k] = c.codes[b.row(k)];
          out->dict = c.dict;
          break;
        case TypeId::kNull:
          break;
      }
      if (!c.nulls.empty() && c.type != TypeId::kString) {
        out->nulls.resize(m);
        for (size_t k = 0; k < m; ++k) out->nulls[k] = c.nulls[b.row(k)];
      }
      return true;
    }
    case ExprKind::kArith: {
      VecVal l, r;
      if (!EvalNodeVec(*n.lhs, ct, b, cnt, &l) ||
          !EvalNodeVec(*n.rhs, ct, b, cnt, &r)) {
        return false;
      }
      if (l.is_const && r.is_const) {
        out->is_const = true;
        out->cval = FoldArith(n.aop, n.type, l.cval, r.cval);
        return true;
      }
      const bool nullable = (l.is_const && l.cval.is_null()) ||
                            (r.is_const && r.cval.is_null()) ||
                            !l.nulls.empty() || !r.nulls.empty() ||
                            n.aop == ArithOp::kDiv;
      if (nullable) out->nulls.assign(m, 0);
      // Int-exact consts exist only when the node types as int64 (both
      // operands kInt64); hoisting AsInt64 on a double const would abort.
      const int64_t lci = n.type == TypeId::kInt64 && l.is_const &&
                                  !l.cval.is_null()
                              ? l.cval.AsInt64()
                              : 0;
      const int64_t rci = n.type == TypeId::kInt64 && r.is_const &&
                                  !r.cval.is_null()
                              ? r.cval.AsInt64()
                              : 0;
      const double lcd =
          l.is_const && !l.cval.is_null() ? l.cval.NumericValue() : 0.0;
      const double rcd =
          r.is_const && !r.cval.is_null() ? r.cval.NumericValue() : 0.0;
      if (n.type == TypeId::kInt64) {
        out->ints.assign(m, 0);
        for (size_t k = 0; k < m; ++k) {
          if (l.IsNullAt(k) || r.IsNullAt(k)) {
            out->nulls[k] = 1;
            continue;
          }
          int64_t a = l.is_const ? lci : l.ints[k];
          int64_t c = r.is_const ? rci : r.ints[k];
          switch (n.aop) {
            case ArithOp::kAdd:
              out->ints[k] = a + c;
              break;
            case ArithOp::kSub:
              out->ints[k] = a - c;
              break;
            case ArithOp::kMul:
              out->ints[k] = a * c;
              break;
            case ArithOp::kDiv:
              break;  // unreachable: kDiv types as double
          }
        }
      } else {
        out->dbls.assign(m, 0.0);
        for (size_t k = 0; k < m; ++k) {
          if (l.IsNullAt(k) || r.IsNullAt(k)) {
            out->nulls[k] = 1;
            continue;
          }
          double a = l.is_const ? lcd : l.ImageAt(k);
          double c = r.is_const ? rcd : r.ImageAt(k);
          switch (n.aop) {
            case ArithOp::kAdd:
              out->dbls[k] = a + c;
              break;
            case ArithOp::kSub:
              out->dbls[k] = a - c;
              break;
            case ArithOp::kMul:
              out->dbls[k] = a * c;
              break;
            case ArithOp::kDiv:
              if (c == 0.0) {
                out->nulls[k] = 1;
              } else {
                out->dbls[k] = a / c;
              }
              break;
          }
        }
      }
      return true;
    }
    case ExprKind::kCompare: {
      VecVal l, r;
      if (!EvalNodeVec(*n.lhs, ct, b, cnt, &l) ||
          !EvalNodeVec(*n.rhs, ct, b, cnt, &r)) {
        return false;
      }
      return EvalCompareVec(n, l, r, m, cnt, out);
    }
    case ExprKind::kLogical: {
      VecVal l, r;
      std::vector<uint8_t> lb, rb;
      if (!EvalNodeVec(*n.lhs, ct, b, cnt, &l) ||
          !ToBoolVec(l, m, cnt, &lb) ||
          !EvalNodeVec(*n.rhs, ct, b, cnt, &r) ||
          !ToBoolVec(r, m, cnt, &rb)) {
        return false;
      }
      out->ints.resize(m);
      if (n.lop == LogicalOp::kAnd) {
        for (size_t k = 0; k < m; ++k) out->ints[k] = (lb[k] & rb[k]) ? 1 : 0;
      } else {
        for (size_t k = 0; k < m; ++k) out->ints[k] = (lb[k] | rb[k]) ? 1 : 0;
      }
      return true;
    }
    case ExprKind::kNot: {
      VecVal l;
      std::vector<uint8_t> lb;
      if (!EvalNodeVec(*n.lhs, ct, b, cnt, &l) ||
          !ToBoolVec(l, m, cnt, &lb)) {
        return false;
      }
      out->ints.resize(m);
      for (size_t k = 0; k < m; ++k) out->ints[k] = lb[k] ? 0 : 1;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Columnar output construction.

void GatherColumnInto(const ColumnVec& src, const std::vector<uint32_t>& ids,
                      ColumnVec* dst) {
  const size_t m = ids.size();
  switch (src.type) {
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kNull:
      dst->ints.resize(m);
      for (size_t k = 0; k < m; ++k) dst->ints[k] = src.ints[ids[k]];
      break;
    case TypeId::kDouble:
      dst->dbls.resize(m);
      for (size_t k = 0; k < m; ++k) dst->dbls[k] = src.dbls[ids[k]];
      break;
    case TypeId::kString:
      dst->codes.resize(m);
      for (size_t k = 0; k < m; ++k) dst->codes[k] = src.codes[ids[k]];
      dst->dict = src.dict;
      break;
  }
  if (!src.nulls.empty()) {
    dst->nulls.resize(m);
    for (size_t k = 0; k < m; ++k) dst->nulls[k] = src.nulls[ids[k]];
  }
}

/// Columnar image of rows `ids` of `src` with multiplicities `mult`
/// (dictionaries shared, nothing re-interned).
std::shared_ptr<const ColumnTable> GatherTable(const ColumnTable& src,
                                               const std::vector<uint32_t>& ids,
                                               std::vector<int64_t> mult) {
  auto out = std::make_shared<ColumnTable>(src.schema());
  for (size_t c = 0; c < src.num_columns(); ++c) {
    GatherColumnInto(src.column(c), ids, out->mutable_column(c));
  }
  *out->mutable_mult() = std::move(mult);
  out->Finish();
  return out;
}

/// Columnar image of a join output: left columns gathered by lids, right
/// columns by rids.
std::shared_ptr<const ColumnTable> GatherJoinTable(
    const Schema& out_schema, const ColumnTable& lct,
    const std::vector<uint32_t>& lids, const ColumnTable& rct,
    const std::vector<uint32_t>& rids, std::vector<int64_t> mult) {
  auto out = std::make_shared<ColumnTable>(out_schema);
  const size_t ln = lct.num_columns();
  for (size_t c = 0; c < ln; ++c) {
    GatherColumnInto(lct.column(c), lids, out->mutable_column(c));
  }
  for (size_t c = 0; c < rct.num_columns(); ++c) {
    GatherColumnInto(rct.column(c), rids, out->mutable_column(ln + c));
  }
  *out->mutable_mult() = std::move(mult);
  out->Finish();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Gate.

bool Enabled() {
  if (g_enabled_override >= 0) return g_enabled_override != 0;
  static const bool env_enabled = EnvEnabled();
  return env_enabled;
}

void TestOnlySetEnabled(int mode) { g_enabled_override = mode; }

// ---------------------------------------------------------------------------
// Filter.

bool TryFilter(const Rows& input, const ScalarExpr::Ptr& predicate,
               OperatorStats* stats, ThreadPool* pool,
               const CancelToken* cancel, Rows* out) {
  (void)pool;
  (void)cancel;
  std::shared_ptr<const ColumnTable> ct = input.Columnar();
  if (ct == nullptr) return false;
  bool ok = true;
  std::unique_ptr<VecExpr> expr = CompileNode(*predicate, input.schema, &ok);
  if (!ok) return false;

  VecCounters cnt;
  const std::vector<int64_t>& mult = ct->mult();
  std::vector<uint32_t> sel;
  sel.reserve(ct->num_rows());
  int64_t scanned = 0, produced = 0;
  int64_t out_signed = 0, out_abs = 0;

  bool supported = true;
  ForEachBatch(*ct, [&](const RowBatch& b) {
    if (!supported) return;
    ++cnt.batches;
    cnt.rows += static_cast<int64_t>(b.size());
    scanned += b.abs_card;
    VecVal v;
    std::vector<uint8_t> pass;
    if (!EvalNodeVec(*expr, *ct, b, &cnt, &v) ||
        !ToBoolVec(v, b.size(), &cnt, &pass)) {
      supported = false;
      return;
    }
    for (size_t k = 0; k < b.size(); ++k) {
      if (!pass[k]) continue;
      uint32_t id = static_cast<uint32_t>(b.row(k));
      int64_t c = mult[id];
      produced += std::llabs(c);
      if (c == 0) continue;  // Rows::Add drops zero counts; match it
      sel.push_back(id);
      out_signed += c;
      out_abs += std::llabs(c);
    }
  });
  if (!supported) return false;

  *out = Rows(input.schema);
  out->rows.reserve(sel.size());
  std::vector<int64_t> out_mult;
  out_mult.reserve(sel.size());
  for (uint32_t id : sel) {
    out->rows.push_back(input.rows[id]);
    out_mult.push_back(mult[id]);
  }
  out->SetCachedCardinalities(out_signed, out_abs);
  out->AttachColumnar(GatherTable(*ct, sel, std::move(out_mult)));
  if (stats != nullptr) {
    stats->rows_scanned += scanned;
    stats->rows_produced += produced;
  }
  cnt.Flush();
  return true;
}

// ---------------------------------------------------------------------------
// Project.

bool TryProject(const Rows& input, const std::vector<ProjectItem>& items,
                OperatorStats* stats, ThreadPool* pool,
                const CancelToken* cancel, Rows* out) {
  (void)pool;
  (void)cancel;
  std::shared_ptr<const ColumnTable> ct = input.Columnar();
  if (ct == nullptr) return false;
  // Zero-multiplicity rows never occur in operator pipelines (Add drops
  // them), and the sequential/parallel row paths disagree on them — stay
  // on the row path for such degenerate inputs.
  for (int64_t m : ct->mult()) {
    if (m == 0) return false;
  }
  bool ok = true;
  std::vector<std::unique_ptr<VecExpr>> exprs;
  std::vector<Column> out_cols;
  exprs.reserve(items.size());
  for (const ProjectItem& item : items) {
    exprs.push_back(CompileNode(*item.expr, input.schema, &ok));
    if (!ok) return false;
    out_cols.push_back(Column{item.name, exprs.back()->type});
  }

  VecCounters cnt;
  Schema out_schema{out_cols};
  auto payload = std::make_shared<ColumnTable>(out_schema);
  // Constant string items intern their one value up front so batch loops
  // only append codes.
  std::vector<std::shared_ptr<StringDict>> const_dicts(items.size());
  std::vector<uint32_t> const_codes(items.size(), kNullStringCode);
  for (size_t a = 0; a < exprs.size(); ++a) {
    if (exprs[a]->type == TypeId::kString &&
        exprs[a]->kind == ExprKind::kLiteral) {
      const_dicts[a] = std::make_shared<StringDict>();
      const_codes[a] = const_dicts[a]->Intern(exprs[a]->literal.AsString());
      payload->mutable_column(a)->dict = const_dicts[a];
    }
  }

  const size_t n = ct->num_rows();
  const std::vector<int64_t>& mult = ct->mult();
  *out = Rows(out_schema);
  out->rows.reserve(n);
  int64_t scanned = 0;

  bool supported = true;
  ForEachBatch(*ct, [&](const RowBatch& b) {
    if (!supported) return;
    ++cnt.batches;
    cnt.rows += static_cast<int64_t>(b.size());
    scanned += b.abs_card;
    const size_t m = b.size();
    std::vector<VecVal> vals(exprs.size());
    for (size_t a = 0; a < exprs.size(); ++a) {
      if (!EvalNodeVec(*exprs[a], *ct, b, &cnt, &vals[a])) {
        supported = false;
        return;
      }
    }
    for (size_t k = 0; k < m; ++k) {
      std::vector<Value> values;
      values.reserve(exprs.size());
      for (const VecVal& v : vals) values.push_back(ValueFromVec(v, k));
      out->rows.emplace_back(Tuple(std::move(values)), mult[b.row(k)]);
    }
    // Payload columns: append this batch's slices.
    for (size_t a = 0; a < exprs.size(); ++a) {
      ColumnVec* dst = payload->mutable_column(a);
      const VecVal& v = vals[a];
      switch (exprs[a]->type) {
        case TypeId::kInt64:
        case TypeId::kDate:
        case TypeId::kNull: {
          for (size_t k = 0; k < m; ++k) {
            bool null = v.IsNullAt(k);
            dst->ints.push_back(null || exprs[a]->type == TypeId::kNull
                                    ? 0
                                    : v.IntAt(k));
            if (null && dst->nulls.empty() &&
                exprs[a]->type != TypeId::kNull) {
              dst->nulls.resize(dst->ints.size() - 1, 0);
            }
            if (!dst->nulls.empty() || exprs[a]->type == TypeId::kNull) {
              if (dst->nulls.size() < dst->ints.size()) {
                dst->nulls.resize(dst->ints.size(), 0);
              }
              dst->nulls[dst->ints.size() - 1] = null ? 1 : 0;
            }
          }
          break;
        }
        case TypeId::kDouble: {
          for (size_t k = 0; k < m; ++k) {
            bool null = v.IsNullAt(k);
            dst->dbls.push_back(null ? 0.0 : v.ImageAt(k));
            if (null && dst->nulls.empty()) {
              dst->nulls.resize(dst->dbls.size() - 1, 0);
            }
            if (!dst->nulls.empty()) {
              if (dst->nulls.size() < dst->dbls.size()) {
                dst->nulls.resize(dst->dbls.size(), 0);
              }
              dst->nulls[dst->dbls.size() - 1] = null ? 1 : 0;
            }
          }
          break;
        }
        case TypeId::kString: {
          if (v.is_const) {
            uint32_t code =
                v.cval.is_null() ? kNullStringCode : const_codes[a];
            dst->codes.insert(dst->codes.end(), m, code);
          } else {
            dst->codes.insert(dst->codes.end(), v.codes.begin(),
                              v.codes.end());
            if (dst->dict == nullptr) dst->dict = v.dict;
          }
          break;
        }
      }
    }
  });
  if (!supported) return false;

  for (size_t a = 0; a < exprs.size(); ++a) {
    // A string column that saw no batches (empty input) still needs a
    // dictionary — FromRows always attaches one.
    ColumnVec* dst = payload->mutable_column(a);
    if (dst->type == TypeId::kString && dst->dict == nullptr) {
      dst->dict = std::make_shared<StringDict>();
    }
  }
  *payload->mutable_mult() = mult;  // one output row per input row
  payload->Finish();
  out->SetCachedCardinalities(ct->SignedCardBetween(0, n),
                              ct->AbsCardBetween(0, n));
  out->AttachColumnar(std::move(payload));
  if (stats != nullptr) {
    stats->rows_scanned += scanned;
    stats->rows_produced += scanned;
  }
  cnt.Flush();
  return true;
}

// ---------------------------------------------------------------------------
// Hash join.

namespace {

/// Radix partitions for the parallel build — same layout as the row-path
/// ParallelHashJoin (top hash bits pick the partition, bottom bits the
/// bucket), so the determinism argument carries over verbatim.
constexpr size_t kVecJoinPartitionBits = 6;
constexpr size_t kVecJoinPartitions = size_t{1} << kVecJoinPartitionBits;
constexpr size_t kVecJoinPartitionShift = 64 - kVecJoinPartitionBits;

struct VecJoinPartition {
  std::vector<uint32_t> ids;
  std::vector<int32_t> heads;
  std::vector<int32_t> chain;
  uint64_t mask = 0;
};

}  // namespace

bool TryHashJoin(const Rows& left, const Rows& right,
                 const std::vector<size_t>& left_idx,
                 const std::vector<size_t>& right_idx, OperatorStats* stats,
                 ThreadPool* pool, const CancelToken* cancel, Rows* out) {
  std::shared_ptr<const ColumnTable> lct = left.Columnar();
  std::shared_ptr<const ColumnTable> rct = right.Columnar();
  if (lct == nullptr || rct == nullptr) return false;

  VecCounters cnt;
  KeyEq eq = MakeKeyEq(*lct, left_idx, *rct, right_idx);
  cnt.value_hashes += eq.setup_value_hashes;
  std::vector<const ColumnVec*> lcols, rcols;
  for (size_t i : left_idx) lcols.push_back(&lct->column(i));
  for (size_t i : right_idx) rcols.push_back(&rct->column(i));

  const size_t n = rct->num_rows();
  const size_t ln = lct->num_rows();
  const std::vector<int64_t>& rmult = rct->mult();
  const std::vector<int64_t>& lmult = lct->mult();
  const int64_t arity = static_cast<int64_t>(left_idx.size());

  Schema out_schema = Schema::Concat(left.schema, right.schema);
  *out = Rows(out_schema);

  // Build-side hashes, batch-at-a-time (pre-hashed key columns).
  std::vector<uint64_t> hashes(n);
  const bool parallel = ShouldParallelize(pool, ln + n);

  int64_t out_signed = 0, out_abs = 0;
  std::vector<uint32_t> out_lids, out_rids;
  std::vector<int64_t> out_mult;

  if (parallel) {
    // Counter parity with the sequential branch below: kEngine counters
    // must not depend on the pool size, so report the same row/batch
    // totals the batch loops would have.
    const size_t step = BatchRows();
    cnt.rows += static_cast<int64_t>(n + ln);
    cnt.batches += static_cast<int64_t>((n + step - 1) / step) +
                   static_cast<int64_t>((ln + step - 1) / step);
    const size_t build_morsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<uint32_t> counts(build_morsels * kVecJoinPartitions, 0);
    std::vector<int64_t> scanned(build_morsels, 0);
    pool->ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
      size_t mi = begin / kMorselRows;
      uint32_t* c = &counts[mi * kVecJoinPartitions];
      int64_t sc = 0;
      for (size_t i = begin; i < end; ++i) {
        sc += std::llabs(rmult[i]);
        uint64_t h = RowKeyHash(rcols, i);
        hashes[i] = h;
        ++c[h >> kVecJoinPartitionShift];
      }
      scanned[mi] = sc;
    }, cancel);
    cnt.key_mixes += static_cast<int64_t>(n) * arity;
    if (stats != nullptr) {
      for (int64_t sc : scanned) stats->rows_scanned += sc;
      stats->hash_build_rows += static_cast<int64_t>(n);
    }

    std::vector<VecJoinPartition> parts(kVecJoinPartitions);
    std::vector<uint32_t> offsets(build_morsels * kVecJoinPartitions);
    for (size_t p = 0; p < kVecJoinPartitions; ++p) {
      uint32_t run = 0;
      for (size_t mi = 0; mi < build_morsels; ++mi) {
        offsets[mi * kVecJoinPartitions + p] = run;
        run += counts[mi * kVecJoinPartitions + p];
      }
      parts[p].ids.resize(run);
    }
    pool->ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
      size_t mi = begin / kMorselRows;
      std::array<uint32_t, kVecJoinPartitions> cursor;
      for (size_t p = 0; p < kVecJoinPartitions; ++p) {
        cursor[p] = offsets[mi * kVecJoinPartitions + p];
      }
      for (size_t i = begin; i < end; ++i) {
        size_t p = hashes[i] >> kVecJoinPartitionShift;
        parts[p].ids[cursor[p]++] = static_cast<uint32_t>(i);
      }
    }, cancel);

    pool->ParallelTasks(kVecJoinPartitions, /*max_workers=*/0, [&](size_t p) {
      VecJoinPartition& part = parts[p];
      const size_t pm = part.ids.size();
      if (pm == 0) return;
      size_t nbuckets = 16;
      while (nbuckets < pm * 2) nbuckets <<= 1;
      part.mask = nbuckets - 1;
      part.heads.assign(nbuckets, -1);
      part.chain.resize(pm);
      for (size_t j = 0; j < pm; ++j) {
        uint64_t h = hashes[part.ids[j]];
        part.chain[j] = part.heads[h & part.mask];
        part.heads[h & part.mask] = static_cast<int32_t>(j);
      }
    }, cancel);

    // Morsel-parallel probe; per-morsel buffers merge in morsel order.
    const size_t probe_morsels = (ln + kMorselRows - 1) / kMorselRows;
    struct ProbeBuf {
      std::vector<std::pair<Tuple, int64_t>> rows;
      std::vector<uint32_t> lids, rids;
      std::vector<int64_t> mults;
      OperatorStats stats;
      int64_t key_cmps = 0;
    };
    std::vector<ProbeBuf> bufs(probe_morsels);
    pool->ParallelFor(ln, kMorselRows, [&](size_t begin, size_t end) {
      ProbeBuf& buf = bufs[begin / kMorselRows];
      for (size_t i = begin; i < end; ++i) {
        int64_t lc = lmult[i];
        buf.stats.rows_scanned += std::llabs(lc);
        buf.stats.hash_probes += 1;
        uint64_t h = RowKeyHash(lcols, i);
        const VecJoinPartition& part = parts[h >> kVecJoinPartitionShift];
        if (part.heads.empty()) continue;
        for (int32_t j = part.heads[h & part.mask]; j >= 0;
             j = part.chain[j]) {
          uint32_t r = part.ids[j];
          if (hashes[r] != h) continue;
          ++buf.key_cmps;
          if (!eq.Eq(i, r)) continue;
          int64_t rc = rmult[r];
          int64_t prod = lc * rc;
          if (prod != 0) {
            buf.rows.emplace_back(
                Tuple::Concat(left.rows[i].first, right.rows[r].first), prod);
            buf.lids.push_back(static_cast<uint32_t>(i));
            buf.rids.push_back(r);
            buf.mults.push_back(prod);
          }
          buf.stats.rows_produced += std::llabs(prod);
        }
      }
    }, cancel);
    cnt.key_mixes += static_cast<int64_t>(ln) * arity;

    size_t total = 0;
    for (const ProbeBuf& buf : bufs) total += buf.rows.size();
    out->rows.reserve(total);
    out_lids.reserve(total);
    out_rids.reserve(total);
    out_mult.reserve(total);
    for (ProbeBuf& buf : bufs) {
      out->rows.insert(out->rows.end(),
                       std::make_move_iterator(buf.rows.begin()),
                       std::make_move_iterator(buf.rows.end()));
      out_lids.insert(out_lids.end(), buf.lids.begin(), buf.lids.end());
      out_rids.insert(out_rids.end(), buf.rids.begin(), buf.rids.end());
      out_mult.insert(out_mult.end(), buf.mults.begin(), buf.mults.end());
      cnt.key_cmps += buf.key_cmps;
      if (stats != nullptr) *stats += buf.stats;
    }
  } else {
    // Sequential: one flat chained table over the full build side.  The
    // chain inserts rows in ascending order with head = most recent, so a
    // probe visits equal-key rows in DESCENDING build index — exactly the
    // row path's order.
    size_t nbuckets = 16;
    while (nbuckets < n * 2) nbuckets <<= 1;
    const uint64_t mask = nbuckets - 1;
    std::vector<int32_t> heads(nbuckets, -1);
    std::vector<int32_t> chain(n);
    int64_t scanned = 0;
    ForEachBatch(*rct, [&](const RowBatch& b) {
      ++cnt.batches;
      scanned += b.abs_card;
      for (size_t k = 0; k < b.size(); ++k) {
        size_t i = b.row(k);
        uint64_t h = RowKeyHash(rcols, i);
        hashes[i] = h;
        chain[i] = heads[h & mask];
        heads[h & mask] = static_cast<int32_t>(i);
      }
    });
    cnt.rows += static_cast<int64_t>(n);
    cnt.key_mixes += static_cast<int64_t>(n) * arity;
    if (stats != nullptr) {
      stats->rows_scanned += scanned;
      stats->hash_build_rows += static_cast<int64_t>(n);
    }

    int64_t probe_scanned = 0, produced = 0;
    out->rows.reserve(ln);
    ForEachBatch(*lct, [&](const RowBatch& b) {
      ++cnt.batches;
      probe_scanned += b.abs_card;
      for (size_t k = 0; k < b.size(); ++k) {
        size_t i = b.row(k);
        uint64_t h = RowKeyHash(lcols, i);
        int64_t lc = lmult[i];
        for (int32_t j = heads[h & mask]; j >= 0; j = chain[j]) {
          if (hashes[j] != h) continue;
          ++cnt.key_cmps;
          if (!eq.Eq(i, static_cast<size_t>(j))) continue;
          int64_t rc = rmult[j];
          int64_t prod = lc * rc;
          if (prod != 0) {
            out->rows.emplace_back(
                Tuple::Concat(left.rows[i].first, right.rows[j].first), prod);
            out_lids.push_back(static_cast<uint32_t>(i));
            out_rids.push_back(static_cast<uint32_t>(j));
            out_mult.push_back(prod);
          }
          produced += std::llabs(prod);
        }
      }
    });
    cnt.rows += static_cast<int64_t>(ln);
    cnt.key_mixes += static_cast<int64_t>(ln) * arity;
    if (stats != nullptr) {
      stats->rows_scanned += probe_scanned;
      stats->hash_probes += static_cast<int64_t>(ln);
      stats->rows_produced += produced;
    }
  }

  for (int64_t m : out_mult) {
    out_signed += m;
    out_abs += std::llabs(m);
  }
  out->SetCachedCardinalities(out_signed, out_abs);
  out->AttachColumnar(GatherJoinTable(out_schema, *lct, out_lids, *rct,
                                      out_rids, std::move(out_mult)));
  cnt.Flush();
  return true;
}

// ---------------------------------------------------------------------------
// Aggregate.

bool TryAggregate(const Rows& input, const std::vector<std::string>& group_by,
                  const std::vector<AggSpec>& aggs, OperatorStats* stats,
                  ThreadPool* pool, const CancelToken* cancel, Rows* out) {
  (void)pool;
  (void)cancel;
  std::shared_ptr<const ColumnTable> ct = input.Columnar();
  if (ct == nullptr) return false;

  std::vector<size_t> key_idx;
  std::vector<Column> out_cols;
  for (const std::string& name : group_by) {
    int i = input.schema.IndexOf(name);
    if (i < 0) return false;  // row path aborts on the same input
    key_idx.push_back(static_cast<size_t>(i));
    out_cols.push_back(input.schema.column(i));
  }

  bool ok = true;
  std::vector<std::unique_ptr<VecExpr>> args(aggs.size());
  std::vector<bool> sum_is_int;
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].fn == AggFn::kSum) {
      if (aggs[a].arg == nullptr) return false;  // row path aborts
      args[a] = CompileNode(*aggs[a].arg, input.schema, &ok);
      if (!ok) return false;
      // SUM over a string-typed argument aborts in the row path
      // (NumericValue); fall back so the behavior stays identical.
      if (args[a]->type == TypeId::kString) return false;
      bool is_int = args[a]->type == TypeId::kInt64;
      sum_is_int.push_back(is_int);
      out_cols.push_back(
          Column{aggs[a].name, is_int ? TypeId::kInt64 : TypeId::kDouble});
    } else {
      sum_is_int.push_back(true);
      out_cols.push_back(Column{aggs[a].name, TypeId::kInt64});
    }
  }
  out_cols.push_back(Column{kGroupCountColumn, TypeId::kInt64});

  VecCounters cnt;
  const size_t n = ct->num_rows();
  const std::vector<int64_t>& mult = ct->mult();
  const int64_t arity = static_cast<int64_t>(key_idx.size());
  std::vector<const ColumnVec*> kcols;
  for (size_t i : key_idx) kcols.push_back(&ct->column(i));
  KeyEq eq = MakeKeyEq(*ct, key_idx, *ct, key_idx);
  cnt.value_hashes += eq.setup_value_hashes;

  // Evaluate every SUM argument over the whole input, batch-at-a-time,
  // into flat argument columns (int64 exact sums / double images).
  std::vector<std::vector<int64_t>> arg_ints(aggs.size());
  std::vector<std::vector<double>> arg_dbls(aggs.size());
  std::vector<std::vector<uint8_t>> arg_nulls(aggs.size());
  bool supported = true;
  ForEachBatch(*ct, [&](const RowBatch& b) {
    if (!supported) return;
    ++cnt.batches;
    cnt.rows += static_cast<int64_t>(b.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].fn != AggFn::kSum) continue;
      VecVal v;
      if (!EvalNodeVec(*args[a], *ct, b, &cnt, &v)) {
        supported = false;
        return;
      }
      const size_t m = b.size();
      std::vector<uint8_t>& nu = arg_nulls[a];
      if (sum_is_int[a]) {
        std::vector<int64_t>& xs = arg_ints[a];
        const int64_t cint =
            v.is_const && !v.cval.is_null() ? v.cval.AsInt64() : 0;
        for (size_t k = 0; k < m; ++k) {
          bool null = v.IsNullAt(k);
          xs.push_back(null ? 0 : (v.is_const ? cint : v.ints[k]));
          nu.push_back(null ? 1 : 0);
        }
      } else {
        std::vector<double>& xs = arg_dbls[a];
        // Mirror the row path: SUM of a non-int argument accumulates
        // NumericValue(); a null contributes nothing.
        const double cimg = v.is_const && !v.cval.is_null()
                                ? v.cval.NumericValue()
                                : 0.0;
        for (size_t k = 0; k < m; ++k) {
          bool null = v.IsNullAt(k);
          xs.push_back(null ? 0.0 : (v.is_const ? cimg : v.ImageAt(k)));
          nu.push_back(null ? 1 : 0);
        }
      }
    }
  });
  if (!supported) return false;

  // Flat chained group table, mirroring the sequential row path: groups
  // are created in first-occurrence order and accumulated in input order.
  size_t nbuckets = 16;
  while (nbuckets < n + 16) nbuckets <<= 1;
  const uint64_t mask = nbuckets - 1;
  std::vector<int32_t> heads(nbuckets, -1);
  std::vector<int32_t> chain;
  std::vector<uint64_t> ghashes;
  std::vector<uint32_t> first_row;
  std::vector<std::vector<int64_t>> gi(aggs.size());
  std::vector<std::vector<double>> gd(aggs.size());
  std::vector<int64_t> gcount;
  int64_t scanned = 0;

  for (size_t i = 0; i < n; ++i) {
    scanned += std::llabs(mult[i]);
    uint64_t h = RowKeyHash(kcols, i);
    int32_t group = -1;
    for (int32_t g = heads[h & mask]; g >= 0; g = chain[g]) {
      if (ghashes[g] != h) continue;
      ++cnt.key_cmps;
      if (eq.Eq(i, first_row[g])) {
        group = g;
        break;
      }
    }
    if (group < 0) {
      group = static_cast<int32_t>(first_row.size());
      first_row.push_back(static_cast<uint32_t>(i));
      ghashes.push_back(h);
      chain.push_back(heads[h & mask]);
      heads[h & mask] = group;
      gcount.push_back(0);
      for (size_t a = 0; a < aggs.size(); ++a) {
        gi[a].push_back(0);
        gd[a].push_back(0.0);
      }
    }
    int64_t m = mult[i];
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].fn == AggFn::kCount) {
        gi[a][group] += m;
      } else if (sum_is_int[a]) {
        if (!arg_nulls[a][i]) gi[a][group] += m * arg_ints[a][i];
      } else {
        if (!arg_nulls[a][i]) {
          gd[a][group] += static_cast<double>(m) * arg_dbls[a][i];
        }
      }
    }
    gcount[group] += m;
  }
  cnt.key_mixes += static_cast<int64_t>(n) * arity;

  *out = Rows(Schema(std::move(out_cols)));
  out->rows.reserve(first_row.size());
  int64_t produced = 0;
  for (size_t g = 0; g < first_row.size(); ++g) {
    bool all_zero = gcount[g] == 0;
    if (all_zero) {
      for (size_t a = 0; a < aggs.size() && all_zero; ++a) {
        if (sum_is_int[a] ? gi[a][g] != 0 : gd[a][g] != 0.0) all_zero = false;
      }
    }
    if (all_zero) continue;
    Tuple row = input.rows[first_row[g]].first.Project(key_idx);
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.Append(sum_is_int[a] ? Value::Int64(gi[a][g])
                               : Value::Double(gd[a][g]));
    }
    row.Append(Value::Int64(gcount[g]));
    out->rows.emplace_back(std::move(row), 1);
    produced += 1;
  }
  out->SetCachedCardinalities(produced, produced);
  if (stats != nullptr) {
    stats->rows_scanned += scanned;
    stats->rows_produced += produced;
  }
  cnt.Flush();
  return true;
}

}  // namespace vec
}  // namespace wuw
