// In-place key hashing/equality over tuple column subsets.
//
// Joins and group-bys key on a few columns of every input row; projecting
// those columns into fresh key tuples would allocate per row.  These
// helpers hash and compare key columns in place instead, so the hot loops
// of HashJoin / AggregateSigned touch only existing memory.
#ifndef WUW_ALGEBRA_KEY_UTIL_H_
#define WUW_ALGEBRA_KEY_UTIL_H_

#include <cstddef>
#include <vector>

#include "storage/tuple.h"

namespace wuw {

/// Hash of the key columns `idx` of `t` (same combining scheme as
/// Tuple::Hash so semantics stay uniform).
inline size_t KeyHash(const Tuple& t, const std::vector<size_t>& idx) {
  size_t h = 0x345678;
  for (size_t i : idx) {
    h ^= t.value(i).Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

/// Column-wise equality of a's key `aidx` with b's key `bidx`.
inline bool KeysEqual(const Tuple& a, const std::vector<size_t>& aidx,
                      const Tuple& b, const std::vector<size_t>& bidx) {
  for (size_t i = 0; i < aidx.size(); ++i) {
    if (a.value(aidx[i]) != b.value(bidx[i])) return false;
  }
  return true;
}

}  // namespace wuw

#endif  // WUW_ALGEBRA_KEY_UTIL_H_
