// Equi hash join over signed multisets.
//
// Multiplicities multiply: joining a -2-weighted delta row with a
// 3-weighted table row yields a -6-weighted output row, which is exactly
// the counting semantics incremental view maintenance requires.
#ifndef WUW_ALGEBRA_HASH_JOIN_H_
#define WUW_ALGEBRA_HASH_JOIN_H_

#include <string>
#include <vector>

#include "algebra/operator_stats.h"
#include "algebra/rows.h"

namespace wuw {

class CancelToken;
class ThreadPool;

/// A conjunctive equi-join condition: left.key[i] == right.key[i] for all i.
struct JoinKeys {
  std::vector<std::string> left_columns;
  std::vector<std::string> right_columns;
};

/// Hash join (build on `right`, probe with `left`).  Output schema is the
/// concatenation left ++ right; callers guarantee column-name uniqueness
/// (view binding qualifies ambiguous names before joining).
///
/// With a pool (and a large enough input) the build is radix-partitioned
/// by key hash and the probe runs morsel-parallel with per-morsel output
/// buffers merged in morsel order — output rows, row ORDER, and stats are
/// byte-identical to the sequential path at every pool size.  A non-null
/// `cancel` token is checked at morsel boundaries.
Rows HashJoin(const Rows& left, const Rows& right, const JoinKeys& keys,
              OperatorStats* stats, ThreadPool* pool = nullptr,
              const CancelToken* cancel = nullptr);

/// Plan-node kernel form of HashJoin (uniform Run(inputs, stats, pool)
/// signature; see plan/plan_node.h).
struct HashJoinKernel {
  JoinKeys keys;

  /// inputs = {left, right}.
  Rows Run(const std::vector<const Rows*>& inputs, OperatorStats* stats,
           ThreadPool* pool = nullptr,
           const CancelToken* cancel = nullptr) const;
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_HASH_JOIN_H_
