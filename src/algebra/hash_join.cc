#include "algebra/hash_join.h"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "algebra/key_util.h"
#include "algebra/spill_util.h"
#include "algebra/vectorized.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "storage/paged_store.h"

namespace wuw {

namespace {

/// Radix partitions for the parallel build: keys partition by the TOP hash
/// bits (bucket chains inside a partition use the bottom bits, so the two
/// never alias).  Equal keys hash equally and therefore land in the same
/// partition, which is what makes per-partition builds race-free without
/// any shared-state writes.
constexpr size_t kJoinPartitionBits = 6;
constexpr size_t kJoinPartitions = size_t{1} << kJoinPartitionBits;
constexpr size_t kJoinPartitionShift =
    sizeof(size_t) * 8 - kJoinPartitionBits;

/// One partition's flat chained hash table.  `ids[j]` maps the local slot j
/// back to the global build-row index; chains link local slots.
struct JoinPartition {
  std::vector<uint32_t> ids;
  std::vector<int32_t> heads;
  std::vector<int32_t> chain;
  size_t mask = 0;
};

/// Morsel-parallel join.  Determinism argument, step by step:
///  - partition row-id lists are written morsel-block by morsel-block in
///    morsel order, so each partition's ids ascend in global row order;
///  - each partition's chain is built over ascending ids, so a probe walks
///    matching rows in DESCENDING global index — exactly the order the
///    sequential single-table chain yields for the same key (rows of one
///    key share one full hash, hence one partition and one bucket in both
///    layouts, and both probes skip non-matching hashes);
///  - probe morsels buffer output locally and merge in morsel order, which
///    reproduces the sequential probe's row order byte for byte.
Rows ParallelHashJoin(const Rows& left, const Rows& right,
                      const std::vector<size_t>& left_idx,
                      const std::vector<size_t>& right_idx,
                      OperatorStats* stats, ThreadPool* pool,
                      const CancelToken* cancel) {
  const size_t n = right.rows.size();
  const size_t build_morsels = (n + kMorselRows - 1) / kMorselRows;

  // Pass 1: hash every build row, count per-(morsel, partition).
  std::vector<size_t> hashes(n);
  std::vector<uint32_t> counts(build_morsels * kJoinPartitions, 0);
  std::vector<int64_t> scanned(build_morsels, 0);
  pool->ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
    size_t m = begin / kMorselRows;
    uint32_t* cnt = &counts[m * kJoinPartitions];
    int64_t sc = 0;
    for (size_t i = begin; i < end; ++i) {
      sc += std::llabs(right.rows[i].second);
      size_t h = KeyHash(right.rows[i].first, right_idx);
      hashes[i] = h;
      ++cnt[h >> kJoinPartitionShift];
    }
    scanned[m] = sc;
  }, cancel);
  if (stats != nullptr) {
    for (int64_t sc : scanned) stats->rows_scanned += sc;
    stats->hash_build_rows += static_cast<int64_t>(n);
  }

  // Exclusive prefix over morsels, per partition: each morsel's scatter
  // window into its partition.  Concatenating windows in morsel order keeps
  // every partition's ids ascending in global row order.
  std::vector<JoinPartition> parts(kJoinPartitions);
  std::vector<uint32_t> offsets(build_morsels * kJoinPartitions);
  for (size_t p = 0; p < kJoinPartitions; ++p) {
    uint32_t run = 0;
    for (size_t m = 0; m < build_morsels; ++m) {
      offsets[m * kJoinPartitions + p] = run;
      run += counts[m * kJoinPartitions + p];
    }
    parts[p].ids.resize(run);
  }
  pool->ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
    size_t m = begin / kMorselRows;
    std::array<uint32_t, kJoinPartitions> cursor;
    for (size_t p = 0; p < kJoinPartitions; ++p) {
      cursor[p] = offsets[m * kJoinPartitions + p];
    }
    for (size_t i = begin; i < end; ++i) {
      size_t p = hashes[i] >> kJoinPartitionShift;
      parts[p].ids[cursor[p]++] = static_cast<uint32_t>(i);
    }
  }, cancel);

  // Per-partition build: no writes escape the partition.
  pool->ParallelTasks(kJoinPartitions, /*max_workers=*/0, [&](size_t p) {
    JoinPartition& part = parts[p];
    const size_t m = part.ids.size();
    if (m == 0) return;
    size_t nbuckets = 16;
    while (nbuckets < m * 2) nbuckets <<= 1;
    part.mask = nbuckets - 1;
    part.heads.assign(nbuckets, -1);
    part.chain.resize(m);
    for (size_t j = 0; j < m; ++j) {
      size_t h = hashes[part.ids[j]];
      part.chain[j] = part.heads[h & part.mask];
      part.heads[h & part.mask] = static_cast<int32_t>(j);
    }
  }, cancel);

  // Morsel-parallel probe with per-morsel buffers.
  const size_t ln = left.rows.size();
  const size_t probe_morsels = (ln + kMorselRows - 1) / kMorselRows;
  std::vector<std::vector<std::pair<Tuple, int64_t>>> buffers(probe_morsels);
  std::vector<OperatorStats> partial(probe_morsels);
  pool->ParallelFor(ln, kMorselRows, [&](size_t begin, size_t end) {
    size_t m = begin / kMorselRows;
    std::vector<std::pair<Tuple, int64_t>>& buf = buffers[m];
    OperatorStats& ps = partial[m];
    buf.reserve(end - begin);
    int64_t key_cmps = 0;
    for (size_t i = begin; i < end; ++i) {
      const auto& [ltuple, lcount] = left.rows[i];
      ps.rows_scanned += std::llabs(lcount);
      ps.hash_probes += 1;
      size_t h = KeyHash(ltuple, left_idx);
      const JoinPartition& part = parts[h >> kJoinPartitionShift];
      if (part.heads.empty()) continue;
      for (int32_t j = part.heads[h & part.mask]; j >= 0; j = part.chain[j]) {
        uint32_t r = part.ids[j];
        if (hashes[r] != h) continue;
        ++key_cmps;
        const auto& [rtuple, rcount] = right.rows[r];
        if (!KeysEqual(ltuple, left_idx, rtuple, right_idx)) continue;
        if (lcount * rcount != 0) {
          buf.emplace_back(Tuple::Concat(ltuple, rtuple), lcount * rcount);
        }
        ps.rows_produced += std::llabs(lcount * rcount);
      }
    }
    // Candidate sets are hash-equal pairs, identical in the sequential
    // layout, so this total is pool-invariant.
    WUW_METRIC_ADD("engine.row.value_cmps", obs::MetricClass::kEngine,
                   key_cmps);
  }, cancel);

  Rows out(Schema::Concat(left.schema, right.schema));
  size_t total = 0;
  for (const auto& buf : buffers) total += buf.size();
  out.rows.reserve(total);
  for (auto& buf : buffers) {
    out.rows.insert(out.rows.end(), std::make_move_iterator(buf.begin()),
                    std::make_move_iterator(buf.end()));
  }
  if (stats != nullptr) {
    for (const OperatorStats& ps : partial) *stats += ps;
  }
  return out;
}

/// WUW_MEM_MB grace join: both sides partition by the TOP hash bits into a
/// page-backed spill (algebra/spill_util.h), then each partition builds and
/// probes independently — operator memory is bounded by one partition plus
/// the spill pool's budget instead of the whole build side.  Determinism
/// argument: a probe row's matches all live in its own partition (equal
/// keys share a full hash, hence a partition); within a partition probes
/// run in ascending global order and each walks its chain in descending
/// build order (head insertion over ascending spill order) — precisely the
/// sequential kernel's nesting — so a stable sort of the output on
/// probe-row index reproduces the sequential row order byte for byte.
Rows GraceHashJoin(const Rows& left, const Rows& right,
                   const std::vector<size_t>& left_idx,
                   const std::vector<size_t>& right_idx, OperatorStats* stats,
                   const paged::PagedOptions& options) {
  const size_t nparts = options.partitions;
  size_t bits = 0;
  while ((size_t{1} << bits) < nparts) ++bits;
  const size_t shift = sizeof(size_t) * 8 - bits;
  auto part_of = [&](size_t h) { return bits == 0 ? size_t{0} : h >> shift; };

  // Same per-row hashing totals as the resident row kernel.
  WUW_METRIC_ADD(
      "engine.row.value_hashes", obs::MetricClass::kEngine,
      static_cast<int64_t>((left.rows.size() + right.rows.size()) *
                           left_idx.size()));

  // Build partitions occupy [0, nparts), probe partitions
  // [nparts, 2*nparts) of one shared spill file; stat totals are charged
  // during the spill passes exactly as the sequential kernel charges them.
  spill::PartitionedSpill spilled(options, nparts * 2);
  for (size_t i = 0; i < right.rows.size(); ++i) {
    const auto& [tuple, count] = right.rows[i];
    if (stats != nullptr) {
      stats->rows_scanned += std::llabs(count);
      stats->hash_build_rows += 1;
    }
    size_t h = KeyHash(tuple, right_idx);
    spilled.Append(part_of(h), static_cast<uint32_t>(i), h, count, tuple);
  }
  for (size_t i = 0; i < left.rows.size(); ++i) {
    const auto& [tuple, count] = left.rows[i];
    if (stats != nullptr) {
      stats->rows_scanned += std::llabs(count);
      stats->hash_probes += 1;
    }
    size_t h = KeyHash(tuple, left_idx);
    spilled.Append(nparts + part_of(h), static_cast<uint32_t>(i), h, count,
                   tuple);
  }
  spilled.Finish();

  struct OutRow {
    uint32_t probe_idx;
    Tuple tuple;
    int64_t count;
  };
  std::vector<OutRow> produced;
  int64_t key_cmps = 0;
  int64_t rows_produced = 0;
  for (size_t p = 0; p < nparts; ++p) {
    std::vector<spill::SpillRecord> build = spilled.ReadPartition(p);
    std::vector<spill::SpillRecord> probe =
        spilled.ReadPartition(nparts + p);
    if (probe.empty()) continue;
    const size_t m = build.size();
    size_t nbuckets = 16;
    while (nbuckets < m * 2) nbuckets <<= 1;
    const size_t mask = nbuckets - 1;
    std::vector<int32_t> heads(nbuckets, -1);
    std::vector<int32_t> chain(m);
    for (size_t j = 0; j < m; ++j) {
      chain[j] = heads[build[j].hash & mask];
      heads[build[j].hash & mask] = static_cast<int32_t>(j);
    }
    for (const spill::SpillRecord& pr : probe) {
      for (int32_t j = heads[pr.hash & mask]; j >= 0; j = chain[j]) {
        const spill::SpillRecord& br = build[static_cast<size_t>(j)];
        if (br.hash != pr.hash) continue;
        ++key_cmps;
        if (!KeysEqual(pr.tuple, left_idx, br.tuple, right_idx)) continue;
        if (pr.count * br.count != 0) {
          produced.push_back(OutRow{pr.idx,
                                    Tuple::Concat(pr.tuple, br.tuple),
                                    pr.count * br.count});
        }
        rows_produced += std::llabs(pr.count * br.count);
      }
    }
  }
  if (stats != nullptr) stats->rows_produced += rows_produced;
  // Candidate sets are hash-equal pairs, identical to the sequential
  // single-table chain.
  WUW_METRIC_ADD("engine.row.value_cmps", obs::MetricClass::kEngine,
                 key_cmps);

  std::stable_sort(produced.begin(), produced.end(),
                   [](const OutRow& a, const OutRow& b) {
                     return a.probe_idx < b.probe_idx;
                   });
  Rows out(Schema::Concat(left.schema, right.schema));
  out.rows.reserve(produced.size());
  for (OutRow& row : produced) {
    out.rows.emplace_back(std::move(row.tuple), row.count);
  }
  return out;
}

}  // namespace

Rows HashJoinKernel::Run(const std::vector<const Rows*>& inputs,
                         OperatorStats* stats, ThreadPool* pool,
                         const CancelToken* cancel) const {
  WUW_CHECK(inputs.size() == 2, "HashJoinKernel takes exactly two inputs");
  return HashJoin(*inputs[0], *inputs[1], keys, stats, pool, cancel);
}

Rows HashJoin(const Rows& left, const Rows& right, const JoinKeys& keys,
              OperatorStats* stats, ThreadPool* pool,
              const CancelToken* cancel) {
  WUW_CHECK(keys.left_columns.size() == keys.right_columns.size(),
            "join key arity mismatch");
  std::vector<size_t> left_idx, right_idx;
  for (const std::string& c : keys.left_columns) {
    left_idx.push_back(left.schema.MustIndexOf(c));
  }
  for (const std::string& c : keys.right_columns) {
    right_idx.push_back(right.schema.MustIndexOf(c));
  }

  // WUW_MEM_MB: an oversized build side takes the grace-partition spill
  // path.  Checked before the vectorized attempt so a paged run bounds its
  // operator memory wherever the build side is big; rows, row order, and
  // OperatorStats are bit-identical on every path (the vec and parallel
  // kernels already prove parity with the sequential layout this path
  // mirrors partition by partition).  Disarmed: one relaxed atomic load.
  if (const paged::PagedOptions* spill_opts = paged::OperatorSpill();
      spill_opts != nullptr && spill::ApproxRowsBytes(right) >
                                   paged::ResolvedSpillBytes(*spill_opts)) {
    return GraceHashJoin(left, right, left_idx, right_idx, stats,
                         *spill_opts);
  }

  if (vec::Enabled()) {
    Rows vec_out;
    if (vec::TryHashJoin(left, right, left_idx, right_idx, stats, pool,
                         cancel, &vec_out)) {
      return vec_out;
    }
  }
  // KeyHash touches every key column of every build and probe row, on
  // either path below.
  WUW_METRIC_ADD(
      "engine.row.value_hashes", obs::MetricClass::kEngine,
      static_cast<int64_t>((left.rows.size() + right.rows.size()) *
                           left_idx.size()));

  if (ShouldParallelize(pool, left.rows.size() + right.rows.size())) {
    return ParallelHashJoin(left, right, left_idx, right_idx, stats, pool,
                            cancel);
  }

  // Build side: right input.  Flat chained hash table (two arrays, no
  // per-key allocation); keys hash in place and collisions resolve by
  // column-wise comparison at probe time.
  const size_t n = right.rows.size();
  size_t nbuckets = 16;
  while (nbuckets < n * 2) nbuckets <<= 1;
  const size_t mask = nbuckets - 1;
  std::vector<int32_t> heads(nbuckets, -1);
  std::vector<int32_t> chain(n);
  std::vector<size_t> hashes(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& [tuple, count] = right.rows[i];
    if (stats != nullptr) {
      stats->rows_scanned += std::llabs(count);
      stats->hash_build_rows += 1;
    }
    size_t h = KeyHash(tuple, right_idx);
    hashes[i] = h;
    chain[i] = heads[h & mask];
    heads[h & mask] = static_cast<int32_t>(i);
  }

  Rows out(Schema::Concat(left.schema, right.schema));
  out.rows.reserve(left.rows.size());
  int64_t key_cmps = 0;
  for (const auto& [ltuple, lcount] : left.rows) {
    if (stats != nullptr) {
      stats->rows_scanned += std::llabs(lcount);
      stats->hash_probes += 1;
    }
    size_t h = KeyHash(ltuple, left_idx);
    for (int32_t i = heads[h & mask]; i >= 0; i = chain[i]) {
      if (hashes[i] != h) continue;
      ++key_cmps;
      const auto& [rtuple, rcount] = right.rows[i];
      if (!KeysEqual(ltuple, left_idx, rtuple, right_idx)) continue;
      out.Add(Tuple::Concat(ltuple, rtuple), lcount * rcount);
      if (stats != nullptr) {
        stats->rows_produced += std::llabs(lcount * rcount);
      }
    }
  }
  WUW_METRIC_ADD("engine.row.value_cmps", obs::MetricClass::kEngine,
                 key_cmps);
  return out;
}

}  // namespace wuw
