#include "algebra/hash_join.h"

#include <unordered_map>

#include "algebra/key_util.h"
#include "common/check.h"

namespace wuw {

Rows HashJoinKernel::Run(const std::vector<const Rows*>& inputs,
                         OperatorStats* stats) const {
  WUW_CHECK(inputs.size() == 2, "HashJoinKernel takes exactly two inputs");
  return HashJoin(*inputs[0], *inputs[1], keys, stats);
}

Rows HashJoin(const Rows& left, const Rows& right, const JoinKeys& keys,
              OperatorStats* stats) {
  WUW_CHECK(keys.left_columns.size() == keys.right_columns.size(),
            "join key arity mismatch");
  std::vector<size_t> left_idx, right_idx;
  for (const std::string& c : keys.left_columns) {
    left_idx.push_back(left.schema.MustIndexOf(c));
  }
  for (const std::string& c : keys.right_columns) {
    right_idx.push_back(right.schema.MustIndexOf(c));
  }

  // Build side: right input.  Flat chained hash table (two arrays, no
  // per-key allocation); keys hash in place and collisions resolve by
  // column-wise comparison at probe time.
  const size_t n = right.rows.size();
  size_t nbuckets = 16;
  while (nbuckets < n * 2) nbuckets <<= 1;
  const size_t mask = nbuckets - 1;
  std::vector<int32_t> heads(nbuckets, -1);
  std::vector<int32_t> chain(n);
  std::vector<size_t> hashes(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& [tuple, count] = right.rows[i];
    if (stats != nullptr) {
      stats->rows_scanned += std::llabs(count);
      stats->hash_build_rows += 1;
    }
    size_t h = KeyHash(tuple, right_idx);
    hashes[i] = h;
    chain[i] = heads[h & mask];
    heads[h & mask] = static_cast<int32_t>(i);
  }

  Rows out(Schema::Concat(left.schema, right.schema));
  for (const auto& [ltuple, lcount] : left.rows) {
    if (stats != nullptr) {
      stats->rows_scanned += std::llabs(lcount);
      stats->hash_probes += 1;
    }
    size_t h = KeyHash(ltuple, left_idx);
    for (int32_t i = heads[h & mask]; i >= 0; i = chain[i]) {
      if (hashes[i] != h) continue;
      const auto& [rtuple, rcount] = right.rows[i];
      if (!KeysEqual(ltuple, left_idx, rtuple, right_idx)) continue;
      out.Add(Tuple::Concat(ltuple, rtuple), lcount * rcount);
      if (stats != nullptr) {
        stats->rows_produced += std::llabs(lcount * rcount);
      }
    }
  }
  return out;
}

}  // namespace wuw
