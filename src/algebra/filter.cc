#include "algebra/filter.h"

#include "common/check.h"
#include "expr/evaluator.h"

namespace wuw {

Rows FilterKernel::Run(const std::vector<const Rows*>& inputs,
                       OperatorStats* stats) const {
  WUW_CHECK(inputs.size() == 1, "FilterKernel takes exactly one input");
  return Filter(*inputs[0], predicate, stats);
}

Rows Filter(const Rows& input, const ScalarExpr::Ptr& predicate,
            OperatorStats* stats) {
  if (predicate == nullptr) return input;
  Rows out(input.schema);
  BoundExpr bound = BoundExpr::Bind(predicate, input.schema);
  for (const auto& [tuple, count] : input.rows) {
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
    if (bound.EvalBool(tuple)) {
      out.Add(tuple, count);
      if (stats != nullptr) stats->rows_produced += std::llabs(count);
    }
  }
  return out;
}

}  // namespace wuw
