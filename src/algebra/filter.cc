#include "algebra/filter.h"

#include <cstdlib>

#include "algebra/vectorized.h"
#include "common/check.h"
#include "expr/evaluator.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"

namespace wuw {

Rows FilterKernel::Run(const std::vector<const Rows*>& inputs,
                       OperatorStats* stats, ThreadPool* pool,
                       const CancelToken* cancel) const {
  WUW_CHECK(inputs.size() == 1, "FilterKernel takes exactly one input");
  return Filter(*inputs[0], predicate, stats, pool, cancel);
}

Rows Filter(const Rows& input, const ScalarExpr::Ptr& predicate,
            OperatorStats* stats, ThreadPool* pool,
            const CancelToken* cancel) {
  if (predicate == nullptr) return input;
  if (vec::Enabled()) {
    Rows vec_out;
    if (vec::TryFilter(input, predicate, stats, pool, cancel, &vec_out)) {
      return vec_out;
    }
  }
  Rows out(input.schema);
  BoundExpr bound = BoundExpr::Bind(predicate, input.schema);
  const size_t n = input.rows.size();
  // One bound-tree evaluation per row, on either path below.
  WUW_METRIC_ADD("engine.row.expr_evals", obs::MetricClass::kEngine,
                 static_cast<int64_t>(n));

  if (ShouldParallelize(pool, n)) {
    // Per-morsel buffers merged in morsel order keep the surviving rows in
    // input order — identical to the sequential scan.  The bound predicate
    // is evaluated concurrently over an immutable tree (see evaluator.h).
    const size_t nmorsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<std::vector<std::pair<Tuple, int64_t>>> buffers(nmorsels);
    std::vector<OperatorStats> partial(nmorsels);
    auto morsel = [&](size_t begin, size_t end) {
      size_t m = begin / kMorselRows;
      std::vector<std::pair<Tuple, int64_t>>& buf = buffers[m];
      OperatorStats& ps = partial[m];
      buf.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const auto& [tuple, count] = input.rows[i];
        ps.rows_scanned += std::llabs(count);
        if (bound.EvalBool(tuple)) {
          if (count != 0) buf.emplace_back(tuple, count);
          ps.rows_produced += std::llabs(count);
        }
      }
    };
    pool->ParallelFor(n, kMorselRows, morsel, cancel);
    size_t total = 0;
    for (const auto& buf : buffers) total += buf.size();
    out.rows.reserve(total);
    for (auto& buf : buffers) {
      out.rows.insert(out.rows.end(), std::make_move_iterator(buf.begin()),
                      std::make_move_iterator(buf.end()));
    }
    if (stats != nullptr) {
      for (const OperatorStats& ps : partial) *stats += ps;
    }
    return out;
  }

  out.rows.reserve(n);
  for (const auto& [tuple, count] : input.rows) {
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
    if (bound.EvalBool(tuple)) {
      out.Add(tuple, count);
      if (stats != nullptr) stats->rows_produced += std::llabs(count);
    }
  }
  return out;
}

}  // namespace wuw
