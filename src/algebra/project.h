// Generalized projection over signed multisets.
#ifndef WUW_ALGEBRA_PROJECT_H_
#define WUW_ALGEBRA_PROJECT_H_

#include <string>
#include <vector>

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "expr/scalar_expr.h"

namespace wuw {

class CancelToken;
class ThreadPool;

/// One output column of a projection: an expression plus an output name.
struct ProjectItem {
  ScalarExpr::Ptr expr;
  std::string name;
};

/// Evaluates `items` over every row of `input`.  Duplicates are NOT
/// collapsed (multiset projection); multiplicities are kept verbatim.
/// With a pool (and a large enough input) rows evaluate morsel-parallel
/// into a pre-sized output; output and stats match the sequential path.
/// A non-null `cancel` token is checked at morsel boundaries.
Rows Project(const Rows& input, const std::vector<ProjectItem>& items,
             OperatorStats* stats, ThreadPool* pool = nullptr,
             const CancelToken* cancel = nullptr);

/// Plan-node kernel form of Project (uniform Run(inputs, stats) signature;
/// see plan/plan_node.h).
struct ProjectKernel {
  std::vector<ProjectItem> items;

  /// inputs = {child}.
  Rows Run(const std::vector<const Rows*>& inputs, OperatorStats* stats,
           ThreadPool* pool = nullptr,
           const CancelToken* cancel = nullptr) const;
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_PROJECT_H_
