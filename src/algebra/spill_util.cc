#include "algebra/spill_util.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace wuw {
namespace spill {

namespace {

/// Distinguishes concurrent operators' temp files within one process
/// (each operator owns a private file; the counter only names them).
std::atomic<int64_t> g_spill_counter{0};

std::string SpillFilePath(const paged::PagedOptions& options) {
  namespace fs = std::filesystem;
  fs::path base = options.dir.empty() ? fs::temp_directory_path()
                                      : fs::path(options.dir);
  return (base / ("wuw_spill_" + std::to_string(::getpid()) + "_" +
                  std::to_string(g_spill_counter.fetch_add(
                      1, std::memory_order_relaxed)) +
                  ".pages"))
      .string();
}

}  // namespace

int64_t ApproxRowsBytes(const Rows& rows) {
  int64_t bytes = 0;
  for (const auto& [tuple, count] : rows.rows) {
    (void)count;
    bytes += paged::ApproxTupleBytes(tuple) + 8;
  }
  return bytes;
}

PartitionedSpill::PartitionedSpill(const paged::PagedOptions& options,
                                   size_t partitions)
    : parts_(partitions) {
  std::string error;
  file_ = paged::PageFile::Create(SpillFilePath(options), options.page_bytes,
                                  &error);
  if (file_ == nullptr) {
    throw std::runtime_error("spill file create failed: " + error);
  }
  file_->set_remove_on_close(true);
  pool_ = std::make_unique<paged::BufferPool>(
      file_.get(), static_cast<size_t>(paged::ResolvedPoolBytes(options)));
}

void PartitionedSpill::FlushChunk(Part* part, size_t bytes) {
  std::string* payload = nullptr;
  int64_t id = pool_->NewPage(&payload);
  payload->assign(part->pending, 0, bytes);
  part->pending.erase(0, bytes);
  part->pages.push_back(id);
  pool_->Unpin(id, /*dirty=*/true);
}

void PartitionedSpill::Append(size_t partition, uint32_t idx, size_t hash,
                              int64_t count, const Tuple& tuple) {
  WUW_CHECK(!finished_, "append to a finished spill");
  WUW_CHECK(partition < parts_.size(), "spill partition out of range");
  Part& part = parts_[partition];
  paged::PutU32(&part.pending, idx);
  paged::PutU64(&part.pending, static_cast<uint64_t>(hash));
  paged::PutI64(&part.pending, count);
  paged::PutTuple(&part.pending, tuple);
  ++part.records;
  const size_t cap = file_->payload_capacity();
  while (part.pending.size() >= cap) FlushChunk(&part, cap);
}

void PartitionedSpill::Finish() {
  WUW_CHECK(!finished_, "spill finished twice");
  finished_ = true;
  int64_t spilled = 0;
  for (Part& part : parts_) {
    if (!part.pending.empty()) FlushChunk(&part, part.pending.size());
    if (part.records > 0) ++spilled;
  }
  paged::internal::g_spilled_partitions.fetch_add(spilled,
                                                  std::memory_order_relaxed);
  WUW_METRIC_ADD("paged.spilled_partitions", obs::MetricClass::kEngine,
                 spilled);
}

std::vector<SpillRecord> PartitionedSpill::ReadPartition(size_t partition) {
  WUW_CHECK(finished_, "read of an unfinished spill");
  WUW_CHECK(partition < parts_.size(), "spill partition out of range");
  const Part& part = parts_[partition];
  std::string stream;
  for (int64_t id : part.pages) {
    std::string* payload = pool_->Pin(id);
    stream.append(*payload);
    pool_->Unpin(id, /*dirty=*/false);
  }
  std::vector<SpillRecord> out;
  out.reserve(static_cast<size_t>(part.records));
  paged::ByteReader r(stream);
  for (int64_t i = 0; i < part.records; ++i) {
    SpillRecord rec;
    rec.idx = r.U32();
    rec.hash = static_cast<size_t>(r.U64());
    rec.count = r.I64();
    bool ok = paged::GetTuple(&r, &rec.tuple);
    // Pages round-tripped their CRCs, so a short or malformed stream here
    // is an internal contract violation, not an I/O failure.
    WUW_CHECK(r.ok && ok, "corrupt spill record stream");
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace spill
}  // namespace wuw
