// Execution counters shared by all relational operators.
//
// rows_scanned tracks operand tuples read (the measured analogue of the
// paper's linear work metric, Def 3.5); rows_produced tracks output size.
// The Executor aggregates these per strategy expression so benchmarks can
// report both wall time and abstract work.
#ifndef WUW_ALGEBRA_OPERATOR_STATS_H_
#define WUW_ALGEBRA_OPERATOR_STATS_H_

#include <cstdint>
#include <string>

namespace wuw {

/// Accumulated counters for one execution scope (a Comp term, an Inst, a
/// whole strategy...).
struct OperatorStats {
  int64_t rows_scanned = 0;
  int64_t rows_produced = 0;
  int64_t hash_probes = 0;
  int64_t hash_build_rows = 0;
  /// Shared-subplan memoization (plan/subplan_cache.h): a hit replays a
  /// cached intermediate instead of re-running its operators, so none of
  /// the counters above accrue for the skipped subtree.
  int64_t subplan_cache_hits = 0;
  int64_t subplan_cache_misses = 0;

  OperatorStats& operator+=(const OperatorStats& other);
  bool operator==(const OperatorStats& other) const;
  bool operator!=(const OperatorStats& other) const {
    return !(*this == other);
  }
  std::string ToString() const;
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_OPERATOR_STATS_H_
