// Grouped aggregation over signed multisets.
//
// Supports SUM and COUNT, the aggregates that are exactly maintainable
// under insertions and deletions with per-group counts (the paper's views
// are TPC-D SELECT-FROM-WHERE-GROUPBY summaries with SUM of revenue; MIN /
// MAX are not self-maintainable under deletions and are deliberately
// excluded from the maintainable view language).
#ifndef WUW_ALGEBRA_AGGREGATE_H_
#define WUW_ALGEBRA_AGGREGATE_H_

#include <string>
#include <vector>

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "expr/scalar_expr.h"

namespace wuw {

class CancelToken;
class ThreadPool;

enum class AggFn : uint8_t { kSum, kCount };

/// One aggregate output column.
struct AggSpec {
  AggFn fn;
  /// Argument expression (ignored for COUNT).
  ScalarExpr::Ptr arg;
  std::string name;
};

/// Groups `input` by the named `group_by` columns and computes the signed
/// aggregate totals of each group: SUM adds multiplicity * arg, COUNT adds
/// multiplicity.
///
/// Output schema: group columns, one column per AggSpec, plus a trailing
/// "__count" INT64 column holding the signed number of contributing rows.
/// Emits one +1-weighted row per group whose aggregates or count are not
/// all zero.  Over all-positive input this is ordinary GROUP BY; over a
/// signed delta it is the *summary delta* of Mumick-Quass-Mumick 1997.
///
/// With a pool (and a large enough input) rows partition by group-key hash
/// into thread-local partial aggregation maps; each group is accumulated
/// by one worker in input order (double SUMs stay bit-identical) and the
/// partitions merge in global first-occurrence order, so output rows, row
/// ORDER, and stats match the sequential path at every pool size.  A
/// non-null `cancel` token is checked at morsel boundaries.
Rows AggregateSigned(const Rows& input, const std::vector<std::string>& group_by,
                     const std::vector<AggSpec>& aggs, OperatorStats* stats,
                     ThreadPool* pool = nullptr,
                     const CancelToken* cancel = nullptr);

/// Name of the hidden per-group contributing-row counter column.
inline const char* kGroupCountColumn = "__count";

/// Plan-node kernel form of AggregateSigned (uniform Run(inputs, stats)
/// signature; see plan/plan_node.h).
struct AggregateKernel {
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;

  /// inputs = {child}.
  Rows Run(const std::vector<const Rows*>& inputs, OperatorStats* stats,
           ThreadPool* pool = nullptr,
           const CancelToken* cancel = nullptr) const;
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_AGGREGATE_H_
