// Selection over signed multisets.
#ifndef WUW_ALGEBRA_FILTER_H_
#define WUW_ALGEBRA_FILTER_H_

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "expr/scalar_expr.h"

namespace wuw {

/// Returns the rows of `input` satisfying `predicate` (multiplicities kept
/// verbatim).  A null predicate passes everything through.
Rows Filter(const Rows& input, const ScalarExpr::Ptr& predicate,
            OperatorStats* stats);

}  // namespace wuw

#endif  // WUW_ALGEBRA_FILTER_H_
