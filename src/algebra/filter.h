// Selection over signed multisets.
#ifndef WUW_ALGEBRA_FILTER_H_
#define WUW_ALGEBRA_FILTER_H_

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "expr/scalar_expr.h"

namespace wuw {

class CancelToken;
class ThreadPool;

/// Returns the rows of `input` satisfying `predicate` (multiplicities kept
/// verbatim).  A null predicate passes everything through.  With a pool
/// (and a large enough input) the scan runs morsel-parallel; output and
/// stats match the sequential scan exactly.  A non-null `cancel` token is
/// checked at morsel boundaries (see exec/window_budget.h).
Rows Filter(const Rows& input, const ScalarExpr::Ptr& predicate,
            OperatorStats* stats, ThreadPool* pool = nullptr,
            const CancelToken* cancel = nullptr);

/// Plan-node kernel form of Filter: parameters captured at plan-build time,
/// executed with the uniform Run(inputs, stats) signature shared by every
/// relational operator (see plan/plan_node.h).
struct FilterKernel {
  ScalarExpr::Ptr predicate;

  /// inputs = {child}.
  Rows Run(const std::vector<const Rows*>& inputs, OperatorStats* stats,
           ThreadPool* pool = nullptr,
           const CancelToken* cancel = nullptr) const;
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_FILTER_H_
