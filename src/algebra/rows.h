// Pipeline row batches: the intermediate representation flowing between
// relational operators.
//
// A Rows value is a materialized signed multiset — each tuple carries a
// signed multiplicity.  Positive multiplicities are ordinary rows; negative
// ones are deletions flowing through delta computations.  Both full tables
// and delta relations convert into Rows for processing.
//
// Two caches ride along, invisible to the multiset semantics:
//  - running signed/abs cardinalities, memoized so the window-budget work
//    charging and plan cost hooks stop re-scanning multiplicities (debug
//    builds assert the cache against the O(n) recompute);
//  - a lazily-built columnar mirror (storage/column_table.h) shared by
//    copies, which is what lets the vectorized kernels (algebra/
//    vectorized.h) engage without changing any operator signature.
#ifndef WUW_ALGEBRA_ROWS_H_
#define WUW_ALGEBRA_ROWS_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace wuw {

class ColumnTable;

/// A materialized signed multiset of tuples with a schema.
struct Rows {
  Schema schema;
  std::vector<std::pair<Tuple, int64_t>> rows;

  Rows();
  explicit Rows(Schema s);
  Rows(const Rows& other);
  Rows(Rows&& other) noexcept;
  Rows& operator=(const Rows& other);
  Rows& operator=(Rows&& other) noexcept;
  ~Rows();

  void Add(Tuple t, int64_t count) {
    if (count == 0) return;
    rows.emplace_back(std::move(t), count);
    BumpCards(count);
  }

  /// Sum of multiplicities (may be negative for deltas).  O(n) on first
  /// call, O(1) memoized afterwards (and O(1) up front when the producer
  /// called SetCachedCardinalities); Add() maintains a set cache
  /// incrementally.
  int64_t SignedCardinality() const;

  /// Sum of |multiplicity| — the "size" of the batch as an operand, which
  /// is what the linear work metric charges for scanning it.  Memoized
  /// like SignedCardinality.
  int64_t AbsCardinality() const;

  bool empty() const { return rows.empty(); }

  /// Snapshot of a table as +1-weighted rows (multiplicities preserved).
  /// Carries the table's cardinality caches and columnar snapshot along.
  static Rows FromTable(const Table& table);

  /// The columnar mirror of this batch, built on first request (thread-safe
  /// for concurrent readers) and shared with copies.  Null when any cell
  /// violates its declared column type — such batches stay row-at-a-time.
  std::shared_ptr<const ColumnTable> Columnar() const;

  /// Attaches a pre-built mirror (vectorized kernels attach the columnar
  /// image of their output so downstream operators never re-convert).
  /// The mirror must represent exactly schema/rows.
  void AttachColumnar(std::shared_ptr<const ColumnTable> table) const;

  /// Seeds both cardinality caches from a producer that knows them.
  void SetCachedCardinalities(int64_t signed_card, int64_t abs_card) const;

  // -- implementation detail below (public only because Rows is an open
  //    struct; operators should use the accessors above) --

  /// Shared lazily-filled columnar cache; see rows.cc.
  struct ColumnarSlot;

  /// Resolves columnar_stale_ (detaching a fresh slot) and returns the
  /// current slot, all under columnar_mu_ — the one place the slot pointer
  /// is swapped or read.
  std::shared_ptr<ColumnarSlot> FreshSlot() const;

  void BumpCards(int64_t count) {
    int64_t s = signed_card_.load(std::memory_order_relaxed);
    if (s != kCardUnset) {
      signed_card_.store(s + count, std::memory_order_relaxed);
      abs_card_.store(abs_card_.load(std::memory_order_relaxed) +
                          std::llabs(count),
                      std::memory_order_relaxed);
    }
    columnar_stale_ = true;
  }

  static constexpr int64_t kCardUnset = INT64_MIN;
  /// Guards columnar_/columnar_stale_ so concurrent Columnar() callers on
  /// a shared batch (term workers over a cached subplan result, snapshot
  /// readers) never race on the lazy slot detach.  Held for one pointer
  /// swap/copy only; the slot's own mutex serializes the build.  Not
  /// copied by the copy/move members (each Rows owns its mutex).
  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<ColumnarSlot> columnar_;
  /// Set when rows changed after the slot was (possibly) filled; Columnar()
  /// rebuilds into a fresh slot so copies sharing the old one stay valid.
  /// Written without columnar_mu_ only from BumpCards, which is legal only
  /// while the batch is still uniquely owned (mutation during concurrent
  /// reads would already race on the rows vector itself).
  mutable bool columnar_stale_ = false;
  mutable std::atomic<int64_t> signed_card_{kCardUnset};
  mutable std::atomic<int64_t> abs_card_{kCardUnset};
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_ROWS_H_
