// Pipeline row batches: the intermediate representation flowing between
// relational operators.
//
// A Rows value is a materialized signed multiset — each tuple carries a
// signed multiplicity.  Positive multiplicities are ordinary rows; negative
// ones are deletions flowing through delta computations.  Both full tables
// and delta relations convert into Rows for processing.
#ifndef WUW_ALGEBRA_ROWS_H_
#define WUW_ALGEBRA_ROWS_H_

#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace wuw {

/// A materialized signed multiset of tuples with a schema.
struct Rows {
  Schema schema;
  std::vector<std::pair<Tuple, int64_t>> rows;

  Rows() = default;
  explicit Rows(Schema s) : schema(std::move(s)) {}

  void Add(Tuple t, int64_t count) {
    if (count != 0) rows.emplace_back(std::move(t), count);
  }

  /// Sum of multiplicities (may be negative for deltas).
  int64_t SignedCardinality() const {
    int64_t n = 0;
    for (const auto& [t, c] : rows) n += c;
    return n;
  }

  /// Sum of |multiplicity| — the "size" of the batch as an operand, which
  /// is what the linear work metric charges for scanning it.
  int64_t AbsCardinality() const {
    int64_t n = 0;
    for (const auto& [t, c] : rows) n += std::llabs(c);
    return n;
  }

  bool empty() const { return rows.empty(); }

  /// Snapshot of a table as +1-weighted rows (multiplicities preserved).
  static Rows FromTable(const Table& table) {
    Rows out(table.schema());
    out.rows.reserve(table.distinct_size());
    table.ForEach([&](const Tuple& t, int64_t c) { out.Add(t, c); });
    return out;
  }
};

}  // namespace wuw

#endif  // WUW_ALGEBRA_ROWS_H_
