// Vectorized (batch-at-a-time) kernels over the columnar core.
//
// Each Try* entry point mirrors one row kernel (Filter / Project /
// HashJoin / AggregateSigned).  When the inputs convert to ColumnTable form
// (Rows::Columnar()) and the expression/key shapes compile to typed column
// loops, the vectorized kernel runs and returns true; otherwise it returns
// false without touching *out and the caller falls back to the row path.
// The fallback decision depends only on (input contents, expression,
// schema) — never on the pool or cache state — so the executed path, rows,
// row ORDER, and OperatorStats are identical at every WUW_THREADS value.
//
// Bit-identity argument.  The vec kernels hash keys with an internal mixer
// (per-code dictionary hashes for strings, the normalized double image for
// numerics — matching Value equality exactly), which is deliberately NOT
// Value::Hash.  That is sound because no kernel's output order depends on
// the hash function: filter/project preserve input order; join output
// order is (probe row asc, build row desc among equal keys), and equal
// keys share a full hash under ANY consistent hash, hence one bucket in
// both layouts; aggregate emits in first-occurrence order.  Double SUMs
// accumulate per group in input order, exactly like the row path.
//
// WUW_COLUMNAR=0 disables every Try* (used for before/after benching);
// WUW_BATCH_ROWS sizes the internal batches (algebra/row_batch.h) and
// cannot change any output, only loop chunking.
#ifndef WUW_ALGEBRA_VECTORIZED_H_
#define WUW_ALGEBRA_VECTORIZED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/operator_stats.h"
#include "algebra/project.h"
#include "algebra/rows.h"
#include "expr/scalar_expr.h"

namespace wuw {

class CancelToken;
class ThreadPool;

namespace vec {

/// Columnar execution gate: true unless WUW_COLUMNAR=0.
bool Enabled();

/// Test hook: -1 restores the environment-derived gate, 0 forces the row
/// path, 1 forces the gate open (kernels still fall back per call when a
/// shape does not compile).
void TestOnlySetEnabled(int mode);

/// Vectorized selection.  `predicate` must be non-null.
bool TryFilter(const Rows& input, const ScalarExpr::Ptr& predicate,
               OperatorStats* stats, ThreadPool* pool,
               const CancelToken* cancel, Rows* out);

/// Vectorized generalized projection.
bool TryProject(const Rows& input, const std::vector<ProjectItem>& items,
                OperatorStats* stats, ThreadPool* pool,
                const CancelToken* cancel, Rows* out);

/// Vectorized hash join over pre-hashed key columns; keeps the
/// radix-partitioned parallel build when the pool and input sizes warrant
/// it.  `left_idx` / `right_idx` are resolved key column positions.
bool TryHashJoin(const Rows& left, const Rows& right,
                 const std::vector<size_t>& left_idx,
                 const std::vector<size_t>& right_idx, OperatorStats* stats,
                 ThreadPool* pool, const CancelToken* cancel, Rows* out);

/// Vectorized signed aggregation with flat accumulators.
bool TryAggregate(const Rows& input, const std::vector<std::string>& group_by,
                  const std::vector<AggSpec>& aggs, OperatorStats* stats,
                  ThreadPool* pool, const CancelToken* cancel, Rows* out);

}  // namespace vec
}  // namespace wuw

#endif  // WUW_ALGEBRA_VECTORIZED_H_
