#include "algebra/project.h"

#include <cstdlib>

#include "algebra/vectorized.h"
#include "common/check.h"
#include "expr/evaluator.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"

namespace wuw {

Rows ProjectKernel::Run(const std::vector<const Rows*>& inputs,
                        OperatorStats* stats, ThreadPool* pool,
                        const CancelToken* cancel) const {
  WUW_CHECK(inputs.size() == 1, "ProjectKernel takes exactly one input");
  return Project(*inputs[0], items, stats, pool, cancel);
}

Rows Project(const Rows& input, const std::vector<ProjectItem>& items,
             OperatorStats* stats, ThreadPool* pool,
             const CancelToken* cancel) {
  if (vec::Enabled()) {
    Rows vec_out;
    if (vec::TryProject(input, items, stats, pool, cancel, &vec_out)) {
      return vec_out;
    }
  }
  std::vector<BoundExpr> bound;
  std::vector<Column> out_cols;
  bound.reserve(items.size());
  for (const ProjectItem& item : items) {
    bound.push_back(BoundExpr::Bind(item.expr, input.schema));
    out_cols.push_back(Column{item.name, bound.back().result_type()});
  }
  Rows out((Schema(std::move(out_cols))));
  const size_t n = input.rows.size();
  // One bound-tree evaluation per (row, item), on either path below.
  WUW_METRIC_ADD("engine.row.expr_evals", obs::MetricClass::kEngine,
                 static_cast<int64_t>(n * items.size()));

  if (ShouldParallelize(pool, n)) {
    // One output row per input row and no filtering, so morsels can write
    // disjoint windows of the pre-sized output directly — merge order is
    // the row index itself.  (Rows with multiplicity 0 never occur in
    // operator pipelines; Add() upstream drops them.)
    const size_t nmorsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<OperatorStats> partial(nmorsels);
    out.rows.resize(n);
    auto morsel = [&](size_t begin, size_t end) {
      OperatorStats& ps = partial[begin / kMorselRows];
      for (size_t i = begin; i < end; ++i) {
        const auto& [tuple, count] = input.rows[i];
        ps.rows_scanned += std::llabs(count);
        std::vector<Value> values;
        values.reserve(bound.size());
        for (const BoundExpr& b : bound) values.push_back(b.Eval(tuple));
        out.rows[i] = {Tuple(std::move(values)), count};
        ps.rows_produced += std::llabs(count);
      }
    };
    pool->ParallelFor(n, kMorselRows, morsel, cancel);
    if (stats != nullptr) {
      for (const OperatorStats& ps : partial) *stats += ps;
    }
    return out;
  }

  out.rows.reserve(n);
  for (const auto& [tuple, count] : input.rows) {
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
    std::vector<Value> values;
    values.reserve(bound.size());
    for (const BoundExpr& b : bound) values.push_back(b.Eval(tuple));
    out.Add(Tuple(std::move(values)), count);
    if (stats != nullptr) stats->rows_produced += std::llabs(count);
  }
  return out;
}

}  // namespace wuw
