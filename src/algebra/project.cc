#include "algebra/project.h"

#include "common/check.h"
#include "expr/evaluator.h"

namespace wuw {

Rows ProjectKernel::Run(const std::vector<const Rows*>& inputs,
                        OperatorStats* stats) const {
  WUW_CHECK(inputs.size() == 1, "ProjectKernel takes exactly one input");
  return Project(*inputs[0], items, stats);
}

Rows Project(const Rows& input, const std::vector<ProjectItem>& items,
             OperatorStats* stats) {
  std::vector<BoundExpr> bound;
  std::vector<Column> out_cols;
  bound.reserve(items.size());
  for (const ProjectItem& item : items) {
    bound.push_back(BoundExpr::Bind(item.expr, input.schema));
    out_cols.push_back(Column{item.name, bound.back().result_type()});
  }
  Rows out((Schema(std::move(out_cols))));
  out.rows.reserve(input.rows.size());
  for (const auto& [tuple, count] : input.rows) {
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
    std::vector<Value> values;
    values.reserve(bound.size());
    for (const BoundExpr& b : bound) values.push_back(b.Eval(tuple));
    out.Add(Tuple(std::move(values)), count);
    if (stats != nullptr) stats->rows_produced += std::llabs(count);
  }
  return out;
}

}  // namespace wuw
