#include "algebra/row_batch.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace wuw {

namespace {

size_t EnvBatchRows() {
  const char* env = std::getenv("WUW_BATCH_ROWS");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return kBatchRows;
}

size_t g_batch_rows_override = 0;

}  // namespace

size_t BatchRows() {
  static const size_t env_rows = EnvBatchRows();
  return g_batch_rows_override != 0 ? g_batch_rows_override : env_rows;
}

void TestOnlySetBatchRows(size_t rows) { g_batch_rows_override = rows; }

RowBatch RowBatch::Of(const ColumnTable& table, size_t begin, size_t end) {
  RowBatch b;
  b.source = &table;
  b.begin = begin;
  b.end = end;
  b.signed_card = table.SignedCardBetween(begin, end);
  b.abs_card = table.AbsCardBetween(begin, end);
#ifndef NDEBUG
  b.CheckCards();
#endif
  return b;
}

RowBatch RowBatch::Select(const RowBatch& base, std::vector<uint32_t> selected,
                          int64_t signed_card, int64_t abs_card) {
  RowBatch b;
  b.source = base.source;
  b.begin = base.begin;
  b.end = base.end;
  b.sel = std::move(selected);
  b.filtered = true;
  b.signed_card = signed_card;
  b.abs_card = abs_card;
#ifndef NDEBUG
  b.CheckCards();
#endif
  return b;
}

void RowBatch::CheckCards() const {
#ifndef NDEBUG
  const std::vector<int64_t>& mult = source->mult();
  int64_t s = 0, a = 0;
  for (size_t k = 0; k < size(); ++k) {
    int64_t m = mult[row(k)];
    s += m;
    a += std::llabs(m);
  }
  WUW_CHECK(s == signed_card, "RowBatch signed cardinality cache is stale");
  WUW_CHECK(a == abs_card, "RowBatch abs cardinality cache is stale");
#endif
}

}  // namespace wuw
