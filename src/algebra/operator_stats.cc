#include "algebra/operator_stats.h"

namespace wuw {

OperatorStats& OperatorStats::operator+=(const OperatorStats& other) {
  rows_scanned += other.rows_scanned;
  rows_produced += other.rows_produced;
  hash_probes += other.hash_probes;
  hash_build_rows += other.hash_build_rows;
  subplan_cache_hits += other.subplan_cache_hits;
  subplan_cache_misses += other.subplan_cache_misses;
  return *this;
}

bool OperatorStats::operator==(const OperatorStats& other) const {
  return rows_scanned == other.rows_scanned &&
         rows_produced == other.rows_produced &&
         hash_probes == other.hash_probes &&
         hash_build_rows == other.hash_build_rows &&
         subplan_cache_hits == other.subplan_cache_hits &&
         subplan_cache_misses == other.subplan_cache_misses;
}

std::string OperatorStats::ToString() const {
  std::string out = "scanned=" + std::to_string(rows_scanned) +
                    " produced=" + std::to_string(rows_produced) +
                    " probes=" + std::to_string(hash_probes) +
                    " build=" + std::to_string(hash_build_rows);
  if (subplan_cache_hits != 0 || subplan_cache_misses != 0) {
    out += " cache_hits=" + std::to_string(subplan_cache_hits) +
           " cache_misses=" + std::to_string(subplan_cache_misses);
  }
  return out;
}

}  // namespace wuw
