#include "algebra/operator_stats.h"

namespace wuw {

OperatorStats& OperatorStats::operator+=(const OperatorStats& other) {
  rows_scanned += other.rows_scanned;
  rows_produced += other.rows_produced;
  hash_probes += other.hash_probes;
  hash_build_rows += other.hash_build_rows;
  return *this;
}

std::string OperatorStats::ToString() const {
  return "scanned=" + std::to_string(rows_scanned) +
         " produced=" + std::to_string(rows_produced) +
         " probes=" + std::to_string(hash_probes) +
         " build=" + std::to_string(hash_build_rows);
}

}  // namespace wuw
