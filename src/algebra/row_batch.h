// Batch-at-a-time IR: the unit the vectorized kernels process.
//
// A RowBatch is a VIEW over a contiguous row range of a ColumnTable plus an
// optional selection vector — filtering narrows the selection instead of
// copying cells, and every downstream loop walks `row(k)` indices into the
// shared column arrays.  Batches carry their running signed/abs
// cardinality, computed in O(1) from the ColumnTable's prefix sums, so the
// window-budget work charging never re-scans multiplicities (debug builds
// assert the cached values against the O(n) recompute).
//
// Batch capacity is WUW_BATCH_ROWS (default kBatchRows).  The size only
// chunks kernel loops — no per-row semantics cross a batch boundary — so
// every output is bit-identical at any batch size, and WUW_BATCH_ROWS=1
// degenerates to row-at-a-time execution for differential testing.
#ifndef WUW_ALGEBRA_ROW_BATCH_H_
#define WUW_ALGEBRA_ROW_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/column_table.h"

namespace wuw {

/// Default rows per batch: big enough to amortize per-batch dispatch,
/// small enough that a batch's working set (a few live columns) stays
/// cache-resident.
inline constexpr size_t kBatchRows = 1024;

/// Effective batch size: WUW_BATCH_ROWS when set to a positive integer,
/// else kBatchRows.  Read once per process.
size_t BatchRows();

/// Test hook: overrides BatchRows() for the current process (0 restores
/// the environment-derived value).
void TestOnlySetBatchRows(size_t rows);

/// A view of rows [begin, end) of a ColumnTable, optionally narrowed by a
/// selection vector of absolute row ids (ascending).  Cells are read
/// through source->column(c) at row(k); nothing is copied.
struct RowBatch {
  const ColumnTable* source = nullptr;
  size_t begin = 0;
  size_t end = 0;
  /// Absolute row ids surviving a filter, ascending; used iff `filtered`.
  std::vector<uint32_t> sel;
  bool filtered = false;
  /// Running cardinalities of the viewed rows (sum of mult / |mult|).
  int64_t signed_card = 0;
  int64_t abs_card = 0;

  /// Number of rows visible through the batch.
  size_t size() const { return filtered ? sel.size() : end - begin; }
  /// Absolute row id of the k-th visible row.
  size_t row(size_t k) const { return filtered ? sel[k] : begin + k; }

  /// Unfiltered view of [begin, end) with O(1) cardinalities.
  static RowBatch Of(const ColumnTable& table, size_t begin, size_t end);

  /// Narrows `base` to `selected` (absolute ids within [base.begin,
  /// base.end), ascending), recomputing cardinalities from the sums the
  /// caller accumulated while selecting.
  static RowBatch Select(const RowBatch& base, std::vector<uint32_t> selected,
                         int64_t signed_card, int64_t abs_card);

  /// Debug oracle: recomputes both cardinalities in O(n) and aborts on
  /// mismatch with the cached fields.  No-op in release builds.
  void CheckCards() const;
};

/// Splits [0, table.num_rows()) into BatchRows()-sized batches and calls
/// fn on each, in order.
template <typename Fn>
void ForEachBatch(const ColumnTable& table, Fn&& fn) {
  const size_t n = table.num_rows();
  const size_t step = BatchRows();
  for (size_t b = 0; b < n; b += step) {
    fn(RowBatch::Of(table, b, b + step < n ? b + step : n));
  }
}

}  // namespace wuw

#endif  // WUW_ALGEBRA_ROW_BATCH_H_
