#include "algebra/aggregate.h"

#include <array>
#include <cstdlib>
#include <queue>

#include "algebra/key_util.h"
#include "algebra/spill_util.h"
#include "algebra/vectorized.h"
#include "common/check.h"
#include "expr/evaluator.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "storage/paged_store.h"

namespace wuw {

namespace {

/// Per-group accumulator.  Integer sums accumulate exactly in int64 so
/// that different evaluation orders (different strategies) agree bitwise.
/// Grouping hashes key columns in place (no per-row key allocation); the
/// key tuple of each group points at its first input row.
struct Acc {
  Tuple exemplar;  // a row whose key columns identify this group
  std::vector<int64_t> int_sums;
  std::vector<double> dbl_sums;
  int64_t count = 0;
};

/// Partition count for the parallel path.  A group's rows all share one
/// key hash, hence one partition (top hash bits; bucket chains use the
/// bottom bits), so each group is accumulated by exactly one worker IN
/// INPUT ORDER — which is what keeps double SUMs bit-identical to the
/// sequential accumulation.
constexpr size_t kAggPartitionBits = 5;
constexpr size_t kAggPartitions = size_t{1} << kAggPartitionBits;
constexpr size_t kAggPartitionShift = sizeof(size_t) * 8 - kAggPartitionBits;

/// One partition's thread-local aggregation state.  Groups record the
/// global index of their first input row: within a partition groups are
/// created in ascending first_row order, so a k-way merge on first_row
/// reproduces the sequential path's global creation order exactly.
struct AggPartition {
  std::vector<Acc> groups;
  std::vector<uint32_t> first_row;
  OperatorStats stats;
};

}  // namespace

Rows AggregateKernel::Run(const std::vector<const Rows*>& inputs,
                          OperatorStats* stats, ThreadPool* pool,
                          const CancelToken* cancel) const {
  WUW_CHECK(inputs.size() == 1, "AggregateKernel takes exactly one input");
  return AggregateSigned(*inputs[0], group_by, aggs, stats, pool, cancel);
}

Rows AggregateSigned(const Rows& input, const std::vector<std::string>& group_by,
                     const std::vector<AggSpec>& aggs, OperatorStats* stats,
                     ThreadPool* pool, const CancelToken* cancel) {
  // WUW_MEM_MB: an oversized input takes the grace-partition spill path
  // below.  Decided before the vectorized attempt so a paged run bounds
  // its operator memory wherever the input is big; rows, row order, and
  // OperatorStats are bit-identical on every path.  Disarmed: one relaxed
  // atomic load.
  const paged::PagedOptions* spill_opts = paged::OperatorSpill();
  const bool grace = spill_opts != nullptr &&
                     spill::ApproxRowsBytes(input) >
                         paged::ResolvedSpillBytes(*spill_opts);

  if (!grace && vec::Enabled()) {
    Rows vec_out;
    if (vec::TryAggregate(input, group_by, aggs, stats, pool, cancel,
                          &vec_out)) {
      return vec_out;
    }
  }
  std::vector<size_t> key_idx;
  std::vector<Column> out_cols;
  for (const std::string& name : group_by) {
    size_t i = input.schema.MustIndexOf(name);
    key_idx.push_back(i);
    out_cols.push_back(input.schema.column(i));
  }

  std::vector<BoundExpr> args;
  std::vector<bool> sum_is_int;
  for (const AggSpec& spec : aggs) {
    if (spec.fn == AggFn::kSum) {
      WUW_CHECK(spec.arg != nullptr, "SUM requires an argument expression");
      args.push_back(BoundExpr::Bind(spec.arg, input.schema));
      bool is_int = args.back().result_type() == TypeId::kInt64;
      sum_is_int.push_back(is_int);
      out_cols.push_back(
          Column{spec.name, is_int ? TypeId::kInt64 : TypeId::kDouble});
    } else {
      args.emplace_back();  // placeholder, unused
      sum_is_int.push_back(true);
      out_cols.push_back(Column{spec.name, TypeId::kInt64});
    }
  }
  out_cols.push_back(Column{kGroupCountColumn, TypeId::kInt64});

  // COUNT(arg) is really COUNT(*) here: the maintainable language has no
  // NULL-filtering COUNT(col).
  auto accumulate = [&](Acc* acc, const Tuple& tuple, int64_t mult) {
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].fn == AggFn::kCount) {
        acc->int_sums[a] += mult;
      } else if (sum_is_int[a]) {
        Value v = args[a].Eval(tuple);
        if (!v.is_null()) acc->int_sums[a] += mult * v.AsInt64();
      } else {
        Value v = args[a].Eval(tuple);
        if (!v.is_null()) {
          acc->dbl_sums[a] += static_cast<double>(mult) * v.NumericValue();
        }
      }
    }
    acc->count += mult;
  };

  auto emit = [&](Rows* out, const Acc& acc, OperatorStats* emit_stats) {
    bool all_zero = acc.count == 0;
    if (all_zero) {
      for (size_t a = 0; a < aggs.size() && all_zero; ++a) {
        if (sum_is_int[a] ? acc.int_sums[a] != 0 : acc.dbl_sums[a] != 0.0) {
          all_zero = false;
        }
      }
    }
    if (all_zero) return;
    Tuple row = acc.exemplar.Project(key_idx);
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.Append(sum_is_int[a] ? Value::Int64(acc.int_sums[a])
                               : Value::Double(acc.dbl_sums[a]));
    }
    row.Append(Value::Int64(acc.count));
    out->Add(std::move(row), 1);
    if (emit_stats != nullptr) emit_stats->rows_produced += 1;
  };

  const size_t n = input.rows.size();
  // KeyHash touches every key column of every row, and each SUM argument
  // evaluates its bound tree once per row, on either path below.
  size_t num_sums = 0;
  for (const AggSpec& spec : aggs) {
    if (spec.fn == AggFn::kSum) ++num_sums;
  }
  WUW_METRIC_ADD("engine.row.value_hashes", obs::MetricClass::kEngine,
                 static_cast<int64_t>(n * key_idx.size()));
  WUW_METRIC_ADD("engine.row.expr_evals", obs::MetricClass::kEngine,
                 static_cast<int64_t>(n * num_sums));

  // WUW_MEM_MB grace aggregation: rows partition by the TOP hash bits
  // into a page-backed spill (algebra/spill_util.h), then each partition
  // accumulates independently — operator memory is bounded by one
  // partition plus the spill pool's budget.  Determinism argument mirrors
  // the parallel path's: a group's rows share one full hash, hence one
  // partition, and each partition accumulates in ascending input order
  // (bit-identical double SUMs); groups record their first input row, so
  // the k-way merge on first_row reproduces the sequential creation order
  // — and therefore the emitted row order — byte for byte.
  if (grace) {
    const size_t nparts = spill_opts->partitions;
    size_t bits = 0;
    while ((size_t{1} << bits) < nparts) ++bits;
    const size_t shift = sizeof(size_t) * 8 - bits;
    spill::PartitionedSpill spilled(*spill_opts, nparts);
    for (size_t i = 0; i < n; ++i) {
      const auto& [tuple, mult] = input.rows[i];
      if (stats != nullptr) stats->rows_scanned += std::llabs(mult);
      size_t h = KeyHash(tuple, key_idx);
      spilled.Append(bits == 0 ? size_t{0} : h >> shift,
                     static_cast<uint32_t>(i), h, mult, tuple);
    }
    spilled.Finish();

    std::vector<AggPartition> parts(nparts);
    int64_t key_cmps = 0;
    for (size_t p = 0; p < nparts; ++p) {
      std::vector<spill::SpillRecord> recs = spilled.ReadPartition(p);
      if (recs.empty()) continue;
      AggPartition& part = parts[p];
      size_t nbuckets = 16;
      while (nbuckets < recs.size() + 16) nbuckets <<= 1;
      const size_t pmask = nbuckets - 1;
      std::vector<int32_t> heads(nbuckets, -1);
      std::vector<int32_t> chain;
      std::vector<size_t> ghashes;
      for (const spill::SpillRecord& rec : recs) {
        Acc* acc = nullptr;
        for (int32_t g = heads[rec.hash & pmask]; g >= 0; g = chain[g]) {
          if (ghashes[g] != rec.hash) continue;
          ++key_cmps;
          if (KeysEqual(rec.tuple, key_idx, part.groups[g].exemplar,
                        key_idx)) {
            acc = &part.groups[g];
            break;
          }
        }
        if (acc == nullptr) {
          int32_t id = static_cast<int32_t>(part.groups.size());
          part.groups.push_back(Acc{rec.tuple,
                                    std::vector<int64_t>(aggs.size(), 0),
                                    std::vector<double>(aggs.size(), 0.0),
                                    0});
          part.first_row.push_back(rec.idx);
          ghashes.push_back(rec.hash);
          chain.push_back(heads[rec.hash & pmask]);
          heads[rec.hash & pmask] = id;
          acc = &part.groups.back();
        }
        accumulate(acc, rec.tuple, rec.count);
      }
    }
    // Candidate sets are hash-equal pairs, identical to the sequential
    // single-table chain.
    WUW_METRIC_ADD("engine.row.value_cmps", obs::MetricClass::kEngine,
                   key_cmps);

    Rows out((Schema(std::move(out_cols))));
    size_t total_groups = 0;
    for (const AggPartition& part : parts) total_groups += part.groups.size();
    out.rows.reserve(total_groups);
    using HeapItem = std::pair<uint32_t, uint32_t>;  // (first_row, partition)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    std::vector<size_t> cursor(nparts, 0);
    for (size_t p = 0; p < nparts; ++p) {
      if (!parts[p].groups.empty()) {
        heap.emplace(parts[p].first_row[0], static_cast<uint32_t>(p));
      }
    }
    while (!heap.empty()) {
      auto [first, p] = heap.top();
      heap.pop();
      emit(&out, parts[p].groups[cursor[p]], stats);
      if (++cursor[p] < parts[p].groups.size()) {
        heap.emplace(parts[p].first_row[cursor[p]], p);
      }
    }
    return out;
  }

  if (ShouldParallelize(pool, n)) {
    // Pass 1: hash every row, count per-(morsel, partition).
    const size_t nmorsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<size_t> hashes(n);
    std::vector<uint32_t> counts(nmorsels * kAggPartitions, 0);
    pool->ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
      uint32_t* cnt = &counts[(begin / kMorselRows) * kAggPartitions];
      for (size_t i = begin; i < end; ++i) {
        size_t h = KeyHash(input.rows[i].first, key_idx);
        hashes[i] = h;
        ++cnt[h >> kAggPartitionShift];
      }
    }, cancel);

    // Scatter row ids so every partition's list ascends in input order.
    std::vector<std::vector<uint32_t>> part_ids(kAggPartitions);
    std::vector<uint32_t> offsets(nmorsels * kAggPartitions);
    for (size_t p = 0; p < kAggPartitions; ++p) {
      uint32_t run = 0;
      for (size_t m = 0; m < nmorsels; ++m) {
        offsets[m * kAggPartitions + p] = run;
        run += counts[m * kAggPartitions + p];
      }
      part_ids[p].resize(run);
    }
    pool->ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
      size_t m = begin / kMorselRows;
      std::array<uint32_t, kAggPartitions> cursor;
      for (size_t p = 0; p < kAggPartitions; ++p) {
        cursor[p] = offsets[m * kAggPartitions + p];
      }
      for (size_t i = begin; i < end; ++i) {
        size_t p = hashes[i] >> kAggPartitionShift;
        part_ids[p][cursor[p]++] = static_cast<uint32_t>(i);
      }
    }, cancel);

    // Pass 2: thread-local partial aggregation, one partition per task.
    std::vector<AggPartition> parts(kAggPartitions);
    pool->ParallelTasks(kAggPartitions, /*max_workers=*/0, [&](size_t p) {
      AggPartition& part = parts[p];
      const std::vector<uint32_t>& ids = part_ids[p];
      if (ids.empty()) return;
      size_t nbuckets = 16;
      while (nbuckets < ids.size() + 16) nbuckets <<= 1;
      const size_t pmask = nbuckets - 1;
      std::vector<int32_t> heads(nbuckets, -1);
      std::vector<int32_t> chain;
      std::vector<size_t> ghashes;
      int64_t key_cmps = 0;
      for (uint32_t i : ids) {
        const auto& [tuple, mult] = input.rows[i];
        part.stats.rows_scanned += std::llabs(mult);
        size_t hash = hashes[i];
        Acc* acc = nullptr;
        for (int32_t g = heads[hash & pmask]; g >= 0; g = chain[g]) {
          if (ghashes[g] != hash) continue;
          ++key_cmps;
          if (KeysEqual(tuple, key_idx, part.groups[g].exemplar, key_idx)) {
            acc = &part.groups[g];
            break;
          }
        }
        if (acc == nullptr) {
          int32_t id = static_cast<int32_t>(part.groups.size());
          part.groups.push_back(Acc{tuple,
                                    std::vector<int64_t>(aggs.size(), 0),
                                    std::vector<double>(aggs.size(), 0.0), 0});
          part.first_row.push_back(i);
          ghashes.push_back(hash);
          chain.push_back(heads[hash & pmask]);
          heads[hash & pmask] = id;
          acc = &part.groups.back();
        }
        accumulate(acc, tuple, mult);
      }
      // A group's rows share one hash, hence one partition: candidate
      // walks match the sequential chain's, so this total is
      // pool-invariant.
      WUW_METRIC_ADD("engine.row.value_cmps", obs::MetricClass::kEngine,
                     key_cmps);
    }, cancel);

    // Deterministic merge: k-way by ascending first input row.  This is
    // exactly the sequential path's group-creation order, so the emitted
    // row order matches byte for byte.
    Rows out((Schema(std::move(out_cols))));
    size_t total_groups = 0;
    for (const AggPartition& part : parts) total_groups += part.groups.size();
    out.rows.reserve(total_groups);
    OperatorStats merge_stats;
    using HeapItem = std::pair<uint32_t, uint32_t>;  // (first_row, partition)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    std::array<size_t, kAggPartitions> cursor{};
    for (size_t p = 0; p < kAggPartitions; ++p) {
      if (!parts[p].groups.empty()) {
        heap.emplace(parts[p].first_row[0], static_cast<uint32_t>(p));
      }
    }
    while (!heap.empty()) {
      auto [first, p] = heap.top();
      heap.pop();
      emit(&out, parts[p].groups[cursor[p]], &merge_stats);
      if (++cursor[p] < parts[p].groups.size()) {
        heap.emplace(parts[p].first_row[cursor[p]], p);
      }
    }
    if (stats != nullptr) {
      for (const AggPartition& part : parts) *stats += part.stats;
      *stats += merge_stats;
    }
    return out;
  }

  std::vector<Acc> groups;
  // Flat chained hash over groups (no per-bucket allocation).
  size_t nbuckets = 16;
  while (nbuckets < n + 16) nbuckets <<= 1;
  const size_t mask = nbuckets - 1;
  std::vector<int32_t> heads(nbuckets, -1);
  std::vector<int32_t> chain;
  std::vector<size_t> hashes;

  int64_t key_cmps = 0;
  for (const auto& [tuple, mult] : input.rows) {
    if (stats != nullptr) stats->rows_scanned += std::llabs(mult);
    size_t hash = KeyHash(tuple, key_idx);
    Acc* acc = nullptr;
    for (int32_t g = heads[hash & mask]; g >= 0; g = chain[g]) {
      if (hashes[g] != hash) continue;
      ++key_cmps;
      if (KeysEqual(tuple, key_idx, groups[g].exemplar, key_idx)) {
        acc = &groups[g];
        break;
      }
    }
    if (acc == nullptr) {
      int32_t id = static_cast<int32_t>(groups.size());
      groups.push_back(Acc{tuple,
                           std::vector<int64_t>(aggs.size(), 0),
                           std::vector<double>(aggs.size(), 0.0), 0});
      hashes.push_back(hash);
      chain.push_back(heads[hash & mask]);
      heads[hash & mask] = id;
      acc = &groups.back();
    }
    accumulate(acc, tuple, mult);
  }
  WUW_METRIC_ADD("engine.row.value_cmps", obs::MetricClass::kEngine,
                 key_cmps);

  Rows out((Schema(std::move(out_cols))));
  out.rows.reserve(groups.size());
  for (const Acc& acc : groups) emit(&out, acc, stats);
  return out;
}

}  // namespace wuw
