#include "algebra/aggregate.h"

#include <unordered_map>

#include "algebra/key_util.h"
#include "common/check.h"
#include "expr/evaluator.h"

namespace wuw {

Rows AggregateKernel::Run(const std::vector<const Rows*>& inputs,
                          OperatorStats* stats) const {
  WUW_CHECK(inputs.size() == 1, "AggregateKernel takes exactly one input");
  return AggregateSigned(*inputs[0], group_by, aggs, stats);
}

Rows AggregateSigned(const Rows& input, const std::vector<std::string>& group_by,
                     const std::vector<AggSpec>& aggs, OperatorStats* stats) {
  std::vector<size_t> key_idx;
  std::vector<Column> out_cols;
  for (const std::string& name : group_by) {
    size_t i = input.schema.MustIndexOf(name);
    key_idx.push_back(i);
    out_cols.push_back(input.schema.column(i));
  }

  std::vector<BoundExpr> args;
  std::vector<bool> sum_is_int;
  for (const AggSpec& spec : aggs) {
    if (spec.fn == AggFn::kSum) {
      WUW_CHECK(spec.arg != nullptr, "SUM requires an argument expression");
      args.push_back(BoundExpr::Bind(spec.arg, input.schema));
      bool is_int = args.back().result_type() == TypeId::kInt64;
      sum_is_int.push_back(is_int);
      out_cols.push_back(
          Column{spec.name, is_int ? TypeId::kInt64 : TypeId::kDouble});
    } else {
      args.emplace_back();  // placeholder, unused
      sum_is_int.push_back(true);
      out_cols.push_back(Column{spec.name, TypeId::kInt64});
    }
  }
  out_cols.push_back(Column{kGroupCountColumn, TypeId::kInt64});

  // Per-group accumulators.  Integer sums accumulate exactly in int64 so
  // that different evaluation orders (different strategies) agree bitwise.
  // Grouping hashes key columns in place (no per-row key allocation); the
  // key tuple of each group points at its first input row.
  struct Acc {
    Tuple exemplar;  // a row whose key columns identify this group
    std::vector<int64_t> int_sums;
    std::vector<double> dbl_sums;
    int64_t count = 0;
  };
  std::vector<Acc> groups;
  // Flat chained hash over groups (no per-bucket allocation).
  size_t nbuckets = 16;
  while (nbuckets < input.rows.size() + 16) nbuckets <<= 1;
  const size_t mask = nbuckets - 1;
  std::vector<int32_t> heads(nbuckets, -1);
  std::vector<int32_t> chain;
  std::vector<size_t> hashes;

  // COUNT(arg) is really COUNT(*) here: the maintainable language has no
  // NULL-filtering COUNT(col).
  for (const auto& [tuple, mult] : input.rows) {
    if (stats != nullptr) stats->rows_scanned += std::llabs(mult);
    size_t hash = KeyHash(tuple, key_idx);
    Acc* acc = nullptr;
    for (int32_t g = heads[hash & mask]; g >= 0; g = chain[g]) {
      if (hashes[g] == hash &&
          KeysEqual(tuple, key_idx, groups[g].exemplar, key_idx)) {
        acc = &groups[g];
        break;
      }
    }
    if (acc == nullptr) {
      int32_t id = static_cast<int32_t>(groups.size());
      groups.push_back(Acc{tuple,
                           std::vector<int64_t>(aggs.size(), 0),
                           std::vector<double>(aggs.size(), 0.0), 0});
      hashes.push_back(hash);
      chain.push_back(heads[hash & mask]);
      heads[hash & mask] = id;
      acc = &groups.back();
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].fn == AggFn::kCount) {
        acc->int_sums[a] += mult;
      } else if (sum_is_int[a]) {
        Value v = args[a].Eval(tuple);
        if (!v.is_null()) acc->int_sums[a] += mult * v.AsInt64();
      } else {
        Value v = args[a].Eval(tuple);
        if (!v.is_null()) {
          acc->dbl_sums[a] += static_cast<double>(mult) * v.NumericValue();
        }
      }
    }
    acc->count += mult;
  }

  Rows out((Schema(std::move(out_cols))));
  for (const Acc& acc : groups) {
    bool all_zero = acc.count == 0;
    if (all_zero) {
      for (size_t a = 0; a < aggs.size() && all_zero; ++a) {
        if (sum_is_int[a] ? acc.int_sums[a] != 0 : acc.dbl_sums[a] != 0.0) {
          all_zero = false;
        }
      }
    }
    if (all_zero) continue;
    Tuple row = acc.exemplar.Project(key_idx);
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.Append(sum_is_int[a] ? Value::Int64(acc.int_sums[a])
                               : Value::Double(acc.dbl_sums[a]));
    }
    row.Append(Value::Int64(acc.count));
    out.Add(std::move(row), 1);
    if (stats != nullptr) stats->rows_produced += 1;
  }
  return out;
}

}  // namespace wuw
