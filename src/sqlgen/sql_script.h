// SQL stored-procedure script generation (Section 5.5).
//
// "Based on the VDAG of the warehouse, a set of stored procedures is
// defined, one for each compute or install expression... the resulting
// VDAG strategy is executed with the help of the stored procedures."
// This module emits that deployment artifact for a commercial RDBMS: one
// CREATE PROCEDURE per 1-way expression of the VDAG, plus a driver script
// for any given strategy.
#ifndef WUW_SQLGEN_SQL_SCRIPT_H_
#define WUW_SQLGEN_SQL_SCRIPT_H_

#include <string>

#include "core/strategy.h"
#include "graph/vdag.h"

namespace wuw {

/// Deterministic procedure name for an expression, e.g.
/// "wuw_comp_Q3__LINEITEM" or "wuw_inst_ORDERS".
std::string ProcedureName(const Expression& expression);

/// The CREATE PROCEDURE statement implementing one expression:
/// Comp procedures INSERT the maintenance terms into delta_<V>;
/// Inst procedures merge delta_<V> into V.
std::string GenerateProcedure(const Vdag& vdag, const Expression& expression);

/// All procedures for the VDAG's 1-way expressions plus delta-table DDL.
std::string GenerateSetupScript(const Vdag& vdag);

/// An EXEC driver running `strategy` via the procedures.
std::string GenerateDriverScript(const Vdag& vdag, const Strategy& strategy);

}  // namespace wuw

#endif  // WUW_SQLGEN_SQL_SCRIPT_H_
