// Synthetic change batches for the update-window experiments.
//
// The paper's experiments change the remote sources so that each base view
// shrinks by p% (Section 7); Experiment 3 sweeps p.  The generators here
// produce those deletion batches deterministically, plus insertion batches
// with fresh keys for mixed workloads.
#ifndef WUW_TPCD_CHANGE_GENERATOR_H_
#define WUW_TPCD_CHANGE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "delta/delta_relation.h"
#include "exec/warehouse.h"
#include "storage/table.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace tpcd {

/// A deletion delta removing ~`fraction` of `current`'s rows, selected
/// deterministically from `seed`.  Works on any table.
DeltaRelation MakeDeletionDelta(const Table& current, double fraction,
                                uint64_t seed);

/// An insertion delta of `count` fresh rows for the named TPC-D table,
/// with primary keys starting above `key_floor` (pass the current max key
/// or table size).
DeltaRelation MakeInsertionDelta(const std::string& table, int64_t count,
                                 int64_t key_floor,
                                 const GeneratorOptions& options);

/// Per-experiment convenience: applies the paper's default workload to a
/// warehouse's pending batch — every base view except REGION shrinks by
/// `delete_fraction` (plus optional inserts of `insert_fraction`).
void ApplyPaperChangeWorkload(Warehouse* warehouse, double delete_fraction,
                              double insert_fraction, uint64_t seed);

/// A coherent multi-batch change stream, the way an extractor produces it:
/// every batch is drawn against the TRUE source state (all earlier batches
/// applied), so a tuple is never deleted twice and deferred policies can
/// merge batches safely.  The stream keeps a private mirror of the base
/// tables; the warehouse being maintained is never touched.
class SourceChangeStream {
 public:
  /// Mirrors the warehouse's base tables as the initial source state.
  SourceChangeStream(const Warehouse& warehouse,
                     const GeneratorOptions& options);

  /// Produces the next batch (delete_fraction of current source rows per
  /// table, plus fresh inserts of insert_fraction for ORDERS/LINEITEM/
  /// CUSTOMER/SUPPLIER when they exist) and applies it to the mirror.
  std::unordered_map<std::string, DeltaRelation> NextBatch(
      double delete_fraction, double insert_fraction);

  /// Current source state (for ground-truth comparisons).
  const Catalog& source() const { return source_; }

 private:
  Catalog source_;
  std::vector<std::string> bases_;
  GeneratorOptions options_;
  uint64_t batch_number_ = 0;
  int64_t next_key_floor_;
};

}  // namespace tpcd
}  // namespace wuw

#endif  // WUW_TPCD_CHANGE_GENERATOR_H_
