// The TPC-D warehouse of Figure 4: six base views plus summary tables
// defined by TPC-D queries Q3 ("Shipping Priority"), Q5 ("Local Supplier
// Volume") and Q10 ("Returned Item Reporting").
//
// Revenue is SUM(l_extendedprice * (10000 - l_discount)) in
// cent-basis-point units — the integer form of the TPC-D expression
// l_extendedprice * (1 - l_discount), kept exact under any evaluation
// order.
#ifndef WUW_TPCD_TPCD_VIEWS_H_
#define WUW_TPCD_TPCD_VIEWS_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/warehouse.h"
#include "graph/vdag.h"
#include "tpcd/tpcd_generator.h"
#include "view/view_definition.h"

namespace wuw {
namespace tpcd {

/// Q3 over CUSTOMER, ORDERS, LINEITEM.
std::shared_ptr<const ViewDefinition> Q3Definition();
/// Q5 over all six base views.
std::shared_ptr<const ViewDefinition> Q5Definition();
/// Q10 over CUSTOMER, ORDERS, LINEITEM, NATION.
std::shared_ptr<const ViewDefinition> Q10Definition();

/// Builds the VDAG of Figure 4 restricted to the named derived views
/// (subset of {"Q3","Q5","Q10"}; empty means all three).  With
/// `only_referenced_bases`, base views no selected query reads are left
/// out — the single-view experiments (1-3) study one summary table in
/// isolation.
Vdag BuildTpcdVdag(const std::vector<std::string>& queries = {},
                   bool only_referenced_bases = false);

/// Creates a fully loaded warehouse: base tables generated at
/// options.scale_factor, derived views materialized.
Warehouse MakeTpcdWarehouse(const GeneratorOptions& options,
                            const std::vector<std::string>& queries = {},
                            bool only_referenced_bases = false);

/// Second-level summary tables ("derived views that further summarize Q3,
/// Q5 and Q10 can also be defined", Section 2): priority-level rollup of
/// Q3, nation-level rollup of Q10, and an order-status activity view that
/// JOINS Q10 back to ORDERS — a level-2 view over levels 1 and 0, which
/// makes the extended VDAG non-uniform: the territory where MinWork may
/// need ModifyOrdering and Prune earns its keep.
std::shared_ptr<const ViewDefinition> Q3ByPriorityDefinition();
std::shared_ptr<const ViewDefinition> Q10ByNationDefinition();
std::shared_ptr<const ViewDefinition> Q10OrderStatusDefinition();

/// Figure-4 VDAG extended with the two rollups above.
Vdag BuildExtendedTpcdVdag();

/// Loaded warehouse over the extended VDAG.
Warehouse MakeExtendedTpcdWarehouse(const GeneratorOptions& options);

}  // namespace tpcd
}  // namespace wuw

#endif  // WUW_TPCD_TPCD_VIEWS_H_
