#include "tpcd/tpcd_generator.h"

#include <cmath>

#include "common/check.h"
#include "tpcd/tpcd_schema.h"

namespace wuw {
namespace tpcd {

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",   "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",  "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",   "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// TPC-D nation -> region mapping (nations cycle over the 5 regions).
int NationRegion(int nation) { return nation % 5; }

std::string PaddedId(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

int64_t ScaledCount(double per_sf, const GeneratorOptions& options) {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(per_sf * options.scale_factor)));
}

}  // namespace

int64_t DateFromDayOffset(int64_t days) {
  // Synthetic calendar: 12 months of 30 days, starting 1992-01-01.
  int64_t year = 1992 + days / 360;
  int64_t month = (days % 360) / 30 + 1;
  int64_t day = (days % 30) + 1;
  return year * 10000 + month * 100 + day;
}

void FillRegion(Table* table) {
  for (int64_t k = 0; k < 5; ++k) {
    table->Add(Tuple({Value::Int64(k), Value::String(kRegions[k])}), 1);
  }
}

void FillNation(Table* table) {
  for (int64_t k = 0; k < 25; ++k) {
    table->Add(Tuple({Value::Int64(k), Value::String(kNations[k]),
                      Value::Int64(NationRegion(static_cast<int>(k)))}),
               1);
  }
}

void FillSupplier(Table* table, const GeneratorOptions& options,
                  int64_t first_key, int64_t count) {
  if (count < 0) count = ScaledCount(10000, options);
  Rng rng(options.seed ^ 0x5001);
  for (int64_t k = first_key; k < first_key + count; ++k) {
    table->Add(Tuple({Value::Int64(k), Value::String(PaddedId("Supplier", k)),
                      Value::Int64(rng.Range(0, 24)),
                      Value::Int64(rng.Range(-99999, 999999))}),
               1);
  }
}

void FillCustomer(Table* table, const GeneratorOptions& options,
                  int64_t first_key, int64_t count) {
  if (count < 0) count = ScaledCount(150000, options);
  Rng rng(options.seed ^ 0xC001);
  for (int64_t k = first_key; k < first_key + count; ++k) {
    table->Add(
        Tuple({Value::Int64(k), Value::String(PaddedId("Customer", k)),
               Value::Int64(rng.Range(0, 24)),
               Value::String(kSegments[rng.Below(5)]),
               Value::Int64(rng.Range(-99999, 999999)),
               Value::String(PaddedId("Addr", rng.Range(0, 1 << 20))),
               Value::String(PaddedId("Ph", rng.Range(0, 1 << 20)))}),
        1);
  }
}

void FillOrders(Table* table, const GeneratorOptions& options,
                int64_t first_key, int64_t count) {
  if (count < 0) count = ScaledCount(1500000, options);
  Rng rng(options.seed ^ 0x0001);
  int64_t num_customers = ScaledCount(150000, options);
  for (int64_t k = first_key; k < first_key + count; ++k) {
    // Dates span 1992-01-01 .. ~1998-08 as in TPC-D (2,400 synthetic days).
    int64_t date = DateFromDayOffset(rng.Range(0, 2399));
    table->Add(Tuple({Value::Int64(k),
                      Value::Int64(rng.Range(1, num_customers)),
                      Value::Date(date), Value::Int64(rng.Range(0, 1)),
                      Value::String(rng.Below(2) == 0 ? "F" : "O")}),
               1);
  }
}

void FillLineitem(Table* table, const GeneratorOptions& options,
                  int64_t first_order_key, int64_t order_count) {
  if (order_count < 0) order_count = ScaledCount(1500000, options);
  Rng rng(options.seed ^ 0x1001);
  int64_t num_suppliers = ScaledCount(10000, options);
  for (int64_t o = first_order_key; o < first_order_key + order_count; ++o) {
    int64_t lines = rng.Range(1, 7);
    for (int64_t l = 1; l <= lines; ++l) {
      // Ship 1..120 synthetic days after some order-epoch day; drawing the
      // ship date independently keeps the generator single-pass while
      // preserving the date-selectivity structure Q3 relies on.
      int64_t ship = DateFromDayOffset(rng.Range(1, 2519));
      const char* flag =
          rng.Below(4) == 0 ? "R" : (rng.Below(2) == 0 ? "A" : "N");
      table->Add(Tuple({Value::Int64(o), Value::Int64(l),
                        Value::Int64(rng.Range(1, num_suppliers)),
                        Value::Int64(rng.Range(100, 10000000)),  // cents
                        Value::Int64(rng.Range(0, 1000)),        // bp
                        Value::Date(ship), Value::String(flag)}),
                 1);
    }
  }
}

int64_t DefaultRowCount(const std::string& table,
                        const GeneratorOptions& options) {
  if (table == kRegion) return 5;
  if (table == kNation) return 25;
  if (table == kSupplier) return ScaledCount(10000, options);
  if (table == kCustomer) return ScaledCount(150000, options);
  if (table == kOrders) return ScaledCount(1500000, options);
  if (table == kLineitem) return ScaledCount(1500000, options) * 4;  // approx
  WUW_CHECK(false, ("unknown TPC-D table: " + table).c_str());
  return 0;
}

void FillTable(const std::string& table, Table* out,
               const GeneratorOptions& options) {
  if (table == kRegion) {
    FillRegion(out);
  } else if (table == kNation) {
    FillNation(out);
  } else if (table == kSupplier) {
    FillSupplier(out, options);
  } else if (table == kCustomer) {
    FillCustomer(out, options);
  } else if (table == kOrders) {
    FillOrders(out, options);
  } else if (table == kLineitem) {
    FillLineitem(out, options);
  } else {
    WUW_CHECK(false, ("unknown TPC-D table: " + table).c_str());
  }
}

}  // namespace tpcd
}  // namespace wuw
