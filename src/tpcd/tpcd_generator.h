// Deterministic synthetic TPC-D data generator.
//
// Row counts follow the TPC-D ratios at a given scale factor:
//   SUPPLIER 10,000·SF   CUSTOMER 150,000·SF   ORDERS 1,500,000·SF
//   LINEITEM ≈ 4 per order   NATION 25   REGION 5
// Values are drawn from a seeded SplitMix64 stream, so the same
// (scale_factor, seed) always produces the same database — benchmarks and
// tests are exactly reproducible.
#ifndef WUW_TPCD_TPCD_GENERATOR_H_
#define WUW_TPCD_TPCD_GENERATOR_H_

#include <cstdint>

#include "storage/table.h"

namespace wuw {
namespace tpcd {

/// Seedable SplitMix64 stream (shared with the change generator).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ull + 1) {}

  uint64_t Next();
  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }
  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

struct GeneratorOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Converts a day offset from 1992-01-01 into a yyyymmdd Value on the
/// synthetic 360-day calendar.
int64_t DateFromDayOffset(int64_t days);

/// Populates `table` (which must have the matching TPC-D schema) with
/// synthetic rows.  `first_key` lets the change generator mint fresh,
/// non-colliding primary keys for insert deltas.
void FillRegion(Table* table);
void FillNation(Table* table);
void FillSupplier(Table* table, const GeneratorOptions& options,
                  int64_t first_key = 1, int64_t count = -1);
void FillCustomer(Table* table, const GeneratorOptions& options,
                  int64_t first_key = 1, int64_t count = -1);
void FillOrders(Table* table, const GeneratorOptions& options,
                int64_t first_key = 1, int64_t count = -1);
void FillLineitem(Table* table, const GeneratorOptions& options,
                  int64_t first_order_key = 1, int64_t order_count = -1);

/// Default row count of a table at the given scale factor.
int64_t DefaultRowCount(const std::string& table,
                        const GeneratorOptions& options);

/// Fills any TPC-D table by name with its default row count.
void FillTable(const std::string& table, Table* out,
               const GeneratorOptions& options);

}  // namespace tpcd
}  // namespace wuw

#endif  // WUW_TPCD_TPCD_GENERATOR_H_
