#include "tpcd/tpcd_schema.h"

#include "common/check.h"

namespace wuw {
namespace tpcd {

Schema RegionSchema() {
  return Schema({{"r_regionkey", TypeId::kInt64}, {"r_name", TypeId::kString}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", TypeId::kInt64},
                 {"n_name", TypeId::kString},
                 {"n_regionkey", TypeId::kInt64}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", TypeId::kInt64},
                 {"s_name", TypeId::kString},
                 {"s_nationkey", TypeId::kInt64},
                 {"s_acctbal", TypeId::kInt64}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", TypeId::kInt64},
                 {"c_name", TypeId::kString},
                 {"c_nationkey", TypeId::kInt64},
                 {"c_mktsegment", TypeId::kString},
                 {"c_acctbal", TypeId::kInt64},
                 {"c_address", TypeId::kString},
                 {"c_phone", TypeId::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", TypeId::kInt64},
                 {"o_custkey", TypeId::kInt64},
                 {"o_orderdate", TypeId::kDate},
                 {"o_shippriority", TypeId::kInt64},
                 {"o_orderstatus", TypeId::kString}});
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", TypeId::kInt64},
                 {"l_linenumber", TypeId::kInt64},
                 {"l_suppkey", TypeId::kInt64},
                 {"l_extendedprice", TypeId::kInt64},
                 {"l_discount", TypeId::kInt64},
                 {"l_shipdate", TypeId::kDate},
                 {"l_returnflag", TypeId::kString}});
}

Schema SchemaFor(const std::string& table) {
  if (table == kRegion) return RegionSchema();
  if (table == kNation) return NationSchema();
  if (table == kSupplier) return SupplierSchema();
  if (table == kCustomer) return CustomerSchema();
  if (table == kOrders) return OrdersSchema();
  if (table == kLineitem) return LineitemSchema();
  WUW_CHECK(false, ("unknown TPC-D table: " + table).c_str());
  return Schema();
}

std::vector<std::string> AllTables() {
  return {kOrders, kLineitem, kCustomer, kSupplier, kNation, kRegion};
}

}  // namespace tpcd
}  // namespace wuw
