// TPC-D table schemas (the columns exercised by queries Q3, Q5, Q10).
//
// Two representation choices keep cross-strategy state comparisons exact:
//  * money is int64 cents and discounts are int64 basis points, so revenue
//    SUM(l_extendedprice * (10000 - l_discount)) accumulates exactly in
//    int64 regardless of evaluation order;
//  * dates are yyyymmdd ordinals on a synthetic 360-day calendar (12 months
//    of 30 days), which preserves chronological comparison semantics.
#ifndef WUW_TPCD_TPCD_SCHEMA_H_
#define WUW_TPCD_TPCD_SCHEMA_H_

#include "storage/schema.h"

namespace wuw {
namespace tpcd {

inline const char* kRegion = "REGION";
inline const char* kNation = "NATION";
inline const char* kSupplier = "SUPPLIER";
inline const char* kCustomer = "CUSTOMER";
inline const char* kOrders = "ORDERS";
inline const char* kLineitem = "LINEITEM";

Schema RegionSchema();
Schema NationSchema();
Schema SupplierSchema();
Schema CustomerSchema();
Schema OrdersSchema();
Schema LineitemSchema();

/// Schema of a TPC-D table by name; aborts on unknown names.
Schema SchemaFor(const std::string& table);

/// All six base-table names in the order of Figure 4.
std::vector<std::string> AllTables();

}  // namespace tpcd
}  // namespace wuw

#endif  // WUW_TPCD_TPCD_SCHEMA_H_
