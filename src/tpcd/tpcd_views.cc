#include "tpcd/tpcd_views.h"

#include "common/check.h"
#include "tpcd/tpcd_schema.h"

namespace wuw {
namespace tpcd {

namespace {

ScalarExpr::Ptr Revenue() {
  // l_extendedprice * (10000 - l_discount): cents x basis points.
  return ScalarExpr::Arith(
      ArithOp::kMul, ScalarExpr::Column("l_extendedprice"),
      ScalarExpr::Arith(ArithOp::kSub,
                        ScalarExpr::Literal(Value::Int64(10000)),
                        ScalarExpr::Column("l_discount")));
}

}  // namespace

std::shared_ptr<const ViewDefinition> Q3Definition() {
  // SELECT l_orderkey, o_orderdate, o_shippriority, SUM(revenue)
  // FROM customer, orders, lineitem
  // WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
  //   AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15'
  //   AND l_shipdate > '1995-03-15'
  // GROUP BY l_orderkey, o_orderdate, o_shippriority
  return ViewDefinitionBuilder("Q3")
      .From(kCustomer)
      .From(kOrders)
      .From(kLineitem)
      .JoinOn("c_custkey", "o_custkey")
      .JoinOn("o_orderkey", "l_orderkey")
      .Where(ScalarExpr::ColEqString("c_mktsegment", "BUILDING"))
      .Where(ScalarExpr::ColLtDate("o_orderdate", 19950315))
      .Where(ScalarExpr::ColGtDate("l_shipdate", 19950315))
      .SelectColumn("l_orderkey")
      .SelectColumn("o_orderdate")
      .SelectColumn("o_shippriority")
      .Sum(Revenue(), "revenue")
      .Build();
}

std::shared_ptr<const ViewDefinition> Q5Definition() {
  // SELECT n_name, SUM(revenue)
  // FROM customer, orders, lineitem, supplier, nation, region
  // WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  //   AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  //   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  //   AND r_name = 'ASIA'
  //   AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01'
  // GROUP BY n_name
  return ViewDefinitionBuilder("Q5")
      .From(kCustomer)
      .From(kOrders)
      .From(kLineitem)
      .From(kSupplier)
      .From(kNation)
      .From(kRegion)
      .JoinOn("c_custkey", "o_custkey")
      .JoinOn("o_orderkey", "l_orderkey")
      .JoinOn("l_suppkey", "s_suppkey")
      .JoinOn("c_nationkey", "s_nationkey")
      .JoinOn("s_nationkey", "n_nationkey")
      .JoinOn("n_regionkey", "r_regionkey")
      .Where(ScalarExpr::ColEqString("r_name", "ASIA"))
      .Where(ScalarExpr::ColGeDate("o_orderdate", 19940101))
      .Where(ScalarExpr::ColLtDate("o_orderdate", 19950101))
      .SelectColumn("n_name")
      .Sum(Revenue(), "revenue")
      .Build();
}

std::shared_ptr<const ViewDefinition> Q10Definition() {
  // SELECT c_custkey, c_name, c_acctbal, n_name, c_address, c_phone,
  //        SUM(revenue)
  // FROM customer, orders, lineitem, nation
  // WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  //   AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01'
  //   AND l_returnflag = 'R' AND c_nationkey = n_nationkey
  // GROUP BY c_custkey, c_name, c_acctbal, n_name, c_address, c_phone
  return ViewDefinitionBuilder("Q10")
      .From(kCustomer)
      .From(kOrders)
      .From(kLineitem)
      .From(kNation)
      .JoinOn("c_custkey", "o_custkey")
      .JoinOn("o_orderkey", "l_orderkey")
      .JoinOn("c_nationkey", "n_nationkey")
      .Where(ScalarExpr::ColGeDate("o_orderdate", 19931001))
      .Where(ScalarExpr::ColLtDate("o_orderdate", 19940101))
      .Where(ScalarExpr::ColEqString("l_returnflag", "R"))
      .SelectColumn("c_custkey")
      .SelectColumn("c_name")
      .SelectColumn("c_acctbal")
      .SelectColumn("n_name")
      .SelectColumn("c_address")
      .SelectColumn("c_phone")
      .Sum(Revenue(), "revenue")
      .Build();
}

Vdag BuildTpcdVdag(const std::vector<std::string>& queries,
                   bool only_referenced_bases) {
  auto wants = [&](const std::string& q) {
    return queries.empty() ||
           std::find(queries.begin(), queries.end(), q) != queries.end();
  };
  std::vector<std::shared_ptr<const ViewDefinition>> defs;
  if (wants("Q3")) defs.push_back(Q3Definition());
  if (wants("Q5")) defs.push_back(Q5Definition());
  if (wants("Q10")) defs.push_back(Q10Definition());

  Vdag vdag;
  for (const std::string& table : AllTables()) {
    if (only_referenced_bases) {
      bool referenced = false;
      for (const auto& def : defs) {
        if (def->SourceIndex(table) >= 0) referenced = true;
      }
      if (!referenced) continue;
    }
    vdag.AddBaseView(table, SchemaFor(table));
  }
  for (const auto& def : defs) vdag.AddDerivedView(def);
  return vdag;
}

Warehouse MakeTpcdWarehouse(const GeneratorOptions& options,
                            const std::vector<std::string>& queries,
                            bool only_referenced_bases) {
  Warehouse warehouse(BuildTpcdVdag(queries, only_referenced_bases));
  for (const std::string& table : warehouse.vdag().BaseViews()) {
    FillTable(table, warehouse.base_table(table), options);
  }
  warehouse.RecomputeDerived();
  return warehouse;
}

std::shared_ptr<const ViewDefinition> Q3ByPriorityDefinition() {
  // SELECT o_shippriority, SUM(revenue) FROM Q3 GROUP BY o_shippriority
  return ViewDefinitionBuilder("Q3_BY_PRIORITY")
      .From("Q3")
      .SelectColumn("o_shippriority")
      .Sum(ScalarExpr::Column("revenue"), "priority_revenue")
      .Build();
}

std::shared_ptr<const ViewDefinition> Q10ByNationDefinition() {
  // SELECT n_name, SUM(revenue) FROM Q10 GROUP BY n_name
  return ViewDefinitionBuilder("Q10_BY_NATION")
      .From("Q10")
      .SelectColumn("n_name")
      .Sum(ScalarExpr::Column("revenue"), "nation_revenue")
      .Build();
}

std::shared_ptr<const ViewDefinition> Q10OrderStatusDefinition() {
  // SELECT o_orderstatus, SUM(revenue) FROM Q10, ORDERS
  // WHERE c_custkey = o_custkey GROUP BY o_orderstatus
  // (returned-item revenue weighted by order activity; its definition
  // spans levels 1 and 0, making the extended VDAG non-uniform)
  return ViewDefinitionBuilder("Q10_ORDER_STATUS")
      .From("Q10")
      .From(kOrders)
      .JoinOn("c_custkey", "o_custkey")
      .SelectColumn("o_orderstatus")
      .Sum(ScalarExpr::Column("revenue"), "status_revenue")
      .Build();
}

Vdag BuildExtendedTpcdVdag() {
  Vdag vdag = BuildTpcdVdag();
  vdag.AddDerivedView(Q3ByPriorityDefinition());
  vdag.AddDerivedView(Q10ByNationDefinition());
  vdag.AddDerivedView(Q10OrderStatusDefinition());
  return vdag;
}

Warehouse MakeExtendedTpcdWarehouse(const GeneratorOptions& options) {
  Warehouse warehouse(BuildExtendedTpcdVdag());
  for (const std::string& table : warehouse.vdag().BaseViews()) {
    FillTable(table, warehouse.base_table(table), options);
  }
  warehouse.RecomputeDerived();
  return warehouse;
}

}  // namespace tpcd
}  // namespace wuw
