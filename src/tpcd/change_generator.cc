#include "tpcd/change_generator.h"

#include <cmath>

#include "common/check.h"
#include "tpcd/tpcd_schema.h"

namespace wuw {
namespace tpcd {

DeltaRelation MakeDeletionDelta(const Table& current, double fraction,
                                uint64_t seed) {
  DeltaRelation delta(current.schema());
  if (fraction <= 0) return delta;
  current.ForEach([&](const Tuple& tuple, int64_t count) {
    // Deterministic per-tuple coin flip: hash the tuple with the seed.
    uint64_t h = tuple.Hash() ^ (seed * 0x9e3779b97f4a7c15ull);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < fraction) delta.Add(tuple, -count);
  });
  return delta;
}

DeltaRelation MakeInsertionDelta(const std::string& table, int64_t count,
                                 int64_t key_floor,
                                 const GeneratorOptions& options) {
  Table fresh(SchemaFor(table));
  GeneratorOptions opts = options;
  opts.seed = options.seed ^ 0xD31ull ^ static_cast<uint64_t>(key_floor);
  int64_t first_key = key_floor + 1;
  if (table == kSupplier) {
    FillSupplier(&fresh, opts, first_key, count);
  } else if (table == kCustomer) {
    FillCustomer(&fresh, opts, first_key, count);
  } else if (table == kOrders) {
    FillOrders(&fresh, opts, first_key, count);
  } else if (table == kLineitem) {
    // Insert lineitems for ~count/4 fresh orders (4 lines per order on
    // average, mirroring the generator's fan-out).
    FillLineitem(&fresh, opts, first_key, std::max<int64_t>(1, count / 4));
  } else if (table == kNation || table == kRegion) {
    WUW_CHECK(false, "NATION/REGION are static dimension tables");
  } else {
    WUW_CHECK(false, ("unknown TPC-D table: " + table).c_str());
  }
  DeltaRelation delta(fresh.schema());
  fresh.ForEach([&](const Tuple& t, int64_t c) { delta.Add(t, c); });
  return delta;
}

void ApplyPaperChangeWorkload(Warehouse* warehouse, double delete_fraction,
                              double insert_fraction, uint64_t seed) {
  GeneratorOptions options;
  options.seed = seed;

  // Shared key floor for new ORDERS/LINEITEM so freshly loaded orders come
  // with their line items (otherwise inserts would never join and no
  // derived view would see them).
  int64_t shared_floor = 1000000;
  for (const std::string table : {kOrders, kLineitem}) {
    if (warehouse->catalog().HasTable(table)) {
      shared_floor = std::max(
          shared_floor,
          warehouse->catalog().MustGetTable(table)->cardinality() * 2 +
              1000000);
    }
  }

  for (const std::string table :
       {kCustomer, kOrders, kLineitem, kSupplier, kNation}) {
    if (!warehouse->catalog().HasTable(table)) continue;
    const Table& current = *warehouse->catalog().MustGetTable(table);
    DeltaRelation delta =
        MakeDeletionDelta(current, delete_fraction, seed ^ table[0]);
    if (insert_fraction > 0 && table != std::string(kNation)) {
      int64_t count = static_cast<int64_t>(
          std::llround(current.cardinality() * insert_fraction));
      if (count > 0) {
        bool shared = table == std::string(kOrders) ||
                      table == std::string(kLineitem);
        // Synthetic keys are dense from 1, so 2x cardinality over-bounds
        // the max key (deleted keys are never reused).
        int64_t floor =
            shared ? shared_floor : current.cardinality() * 2 + 1000000;
        DeltaRelation inserts = MakeInsertionDelta(table, count, floor,
                                                   options);
        inserts.ForEach(
            [&](const Tuple& t, int64_t c) { delta.Add(t, c); });
      }
    }
    warehouse->SetBaseDelta(table, std::move(delta));
  }
}

SourceChangeStream::SourceChangeStream(const Warehouse& warehouse,
                                       const GeneratorOptions& options)
    : options_(options) {
  int64_t max_cardinality = 0;
  for (const std::string& base : warehouse.vdag().BaseViews()) {
    const Table* table = warehouse.catalog().MustGetTable(base);
    Table* mirror = source_.CreateTable(base, table->schema());
    table->ForEach([&](const Tuple& t, int64_t c) { mirror->Add(t, c); });
    bases_.push_back(base);
    max_cardinality = std::max(max_cardinality, table->cardinality());
  }
  // Fresh keys live far above anything loaded or inserted so far.
  next_key_floor_ = max_cardinality * 2 + 1000000;
}

std::unordered_map<std::string, DeltaRelation> SourceChangeStream::NextBatch(
    double delete_fraction, double insert_fraction) {
  ++batch_number_;
  std::unordered_map<std::string, DeltaRelation> batch;
  int64_t floor = next_key_floor_;
  int64_t max_new_keys = 0;
  for (const std::string& base : bases_) {
    Table* mirror = source_.MustGetTable(base);
    DeltaRelation delta(mirror->schema());
    if (base != std::string(kRegion) && base != std::string(kNation)) {
      delta = MakeDeletionDelta(*mirror, delete_fraction,
                                options_.seed * 131 + batch_number_ * 17 +
                                    base[0]);
      if (insert_fraction > 0) {
        int64_t count = static_cast<int64_t>(
            std::llround(mirror->cardinality() * insert_fraction));
        if (count > 0) {
          // ORDERS and LINEITEM share the key floor so new orders arrive
          // with their line items.
          GeneratorOptions opts = options_;
          opts.seed = options_.seed + batch_number_;
          DeltaRelation inserts = MakeInsertionDelta(base, count, floor, opts);
          inserts.ForEach(
              [&](const Tuple& t, int64_t c) { delta.Add(t, c); });
          max_new_keys = std::max(max_new_keys, count * 2);
        }
      }
    }
    // Apply to the mirror: the next batch sees this one's effects.
    delta.ForEach([&](const Tuple& t, int64_t c) { mirror->Add(t, c); });
    batch.emplace(base, std::move(delta));
  }
  next_key_floor_ = floor + std::max<int64_t>(max_new_keys, 1) + 1000;
  return batch;
}

}  // namespace tpcd
}  // namespace wuw
