// Update-strategy expressions: Comp(V, Y) and Inst(V) (Section 2).
#ifndef WUW_CORE_EXPRESSION_H_
#define WUW_CORE_EXPRESSION_H_

#include <string>
#include <vector>

namespace wuw {

/// One step of an update strategy.
///
/// Comp(V, Y) propagates the changes of the views Y into δV using the
/// standard maintenance expression restricted to Y (2^|Y|-1 terms).
/// Inst(V) installs δV into the materialized extent of V.
struct Expression {
  enum class Kind : uint8_t { kComp, kInst };

  Kind kind;
  /// The view being maintained (Comp) or installed into (Inst).
  std::string view;
  /// Y: the views whose changes this Comp propagates (sorted; empty for
  /// Inst).
  std::vector<std::string> over;

  static Expression Comp(std::string view, std::vector<std::string> over);
  static Expression Inst(std::string view);

  bool is_comp() const { return kind == Kind::kComp; }
  bool is_inst() const { return kind == Kind::kInst; }

  /// True if this is a Comp whose Y contains `source`.
  bool CompUses(const std::string& source) const;

  bool operator==(const Expression& other) const;
  bool operator!=(const Expression& other) const { return !(*this == other); }
  bool operator<(const Expression& other) const;  // lexicographic, for sets

  /// "Comp(Q3, {LINEITEM})" / "Inst(ORDERS)".
  std::string ToString() const;
};

}  // namespace wuw

#endif  // WUW_CORE_EXPRESSION_H_
