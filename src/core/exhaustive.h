// Exhaustive enumeration baselines.
//
// These are validation tools, not production algorithms: they enumerate
// (pieces of) the strategy space so tests can verify the optimality
// theorems (4.1, 4.2, 5.2, 6.1) and benchmarks can chart the whole space
// (Experiment 1 charts all 13 Q3 view strategies).
#ifndef WUW_CORE_EXHAUSTIVE_H_
#define WUW_CORE_EXHAUSTIVE_H_

#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

/// A strategy with its linear-metric work.
struct EvaluatedStrategy {
  Strategy strategy;
  double work = 0;
};

/// Evaluates every view strategy of `view` (one per ordered partition of
/// its sources) in the VDAG context.  The VDAG should contain just this
/// view and its sources, or the caller accepts that the work excludes
/// other views' expressions.
std::vector<EvaluatedStrategy> EnumerateAllViewStrategies(
    const Vdag& vdag, const std::string& view, const SizeMap& sizes,
    const WorkParams& params = {});

/// Enumerates every correct VDAG strategy by backtracking over the
/// correctness conditions.  `one_way_only` restricts Comps to singletons.
/// Aborts via WUW_CHECK if more than `limit` strategies exist (guards
/// against accidental factorial blow-ups in tests).
std::vector<Strategy> EnumerateAllCorrectVdagStrategies(const Vdag& vdag,
                                                        bool one_way_only,
                                                        size_t limit);

/// Smallest-work strategy among `strategies` (ties: first).
EvaluatedStrategy BestOf(const Vdag& vdag,
                         const std::vector<Strategy>& strategies,
                         const SizeMap& sizes, const WorkParams& params = {});

}  // namespace wuw

#endif  // WUW_CORE_EXHAUSTIVE_H_
