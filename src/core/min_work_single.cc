#include "core/min_work_single.h"

#include <algorithm>

#include "common/check.h"
#include "core/strategy_space.h"

namespace wuw {

std::vector<std::string> DesiredViewOrdering(std::vector<std::string> views,
                                             const SizeMap& sizes) {
  std::stable_sort(views.begin(), views.end(),
                   [&](const std::string& a, const std::string& b) {
                     return sizes.NetChange(a) < sizes.NetChange(b);
                   });
  return views;
}

Strategy MinWorkSingle(const Vdag& vdag, const std::string& view,
                       const SizeMap& sizes) {
  WUW_CHECK(vdag.IsDerivedView(view),
            "MinWorkSingle applies to derived views");
  std::vector<std::string> ordered =
      DesiredViewOrdering(vdag.sources(view), sizes);
  return MakeOneWayViewStrategy(view, ordered);
}

}  // namespace wuw
