#include "core/size_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace wuw {

SizeMap EstimateSizes(const Vdag& vdag, const EstimatorInputs& inputs) {
  SizeMap out;

  auto extent = [&](const std::string& name) {
    auto it = inputs.extent_sizes.find(name);
    WUW_CHECK(it != inputs.extent_sizes.end(),
              ("no extent size for view: " + name).c_str());
    return it->second;
  };

  // Base views: exact.
  for (const std::string& name : vdag.BaseViews()) {
    auto it = inputs.base_deltas.find(name);
    BaseDeltaStats d = it == inputs.base_deltas.end() ? BaseDeltaStats{}
                                                      : it->second;
    ViewSizes s;
    s.size = extent(name);
    s.delta_abs = d.plus + d.minus;
    s.delta_net = d.plus - d.minus;
    out.Set(name, s);
  }

  // Derived views bottom-up: first-order model under uniformity and
  // cross-source independence.
  for (const std::string& name : vdag.DerivedViewsBottomUp()) {
    const int64_t size = extent(name);
    double churn = 0;        // Σ_i (f+_i + f-_i)
    double minus_total = 0;  // Σ_i f-_i
    double survival = 1;     // Π_i (1 + f+_i - f-_i)
    for (const std::string& src : vdag.sources(name)) {
      const ViewSizes& s = out.Get(src);
      double denom = std::max<int64_t>(s.size, 1);
      double plus = (s.delta_abs + s.delta_net) / 2.0;
      double minus = (s.delta_abs - s.delta_net) / 2.0;
      churn += (plus + minus) / denom;
      minus_total += minus / denom;
      survival *= std::max(0.0, 1.0 + (plus - minus) / denom);
    }
    churn = std::min(churn, 1.0);
    minus_total = std::min(minus_total, 1.0);

    ViewSizes s;
    s.size = size;
    if (!vdag.definition(name)->is_aggregate()) {
      // SPJ: the extent IS the join output; churn and survival apply
      // directly.
      s.delta_net = static_cast<int64_t>(std::llround(size * (survival - 1)));
      s.delta_abs = std::max<int64_t>(
          std::llabs(s.delta_net),
          static_cast<int64_t>(std::llround(size * churn)));
    } else {
      // Aggregate: a group is touched when any of its ~g contributing join
      // rows changes; a touched group yields a {-old,+new} pair.  Groups
      // die when all their rows are deleted.  Insert-created groups are
      // treated as negligible (first-order); use the oracle estimator when
      // that assumption is too coarse.
      auto jit = inputs.join_rows.find(name);
      double join_rows =
          jit != inputs.join_rows.end()
              ? static_cast<double>(std::max<int64_t>(jit->second, size))
              : static_cast<double>(size);
      double g = size > 0 ? join_rows / size : 1.0;
      double affected =
          size * (1.0 - std::pow(1.0 - churn, std::max(1.0, g)));
      double dead = size * std::pow(minus_total, std::max(1.0, g));
      s.delta_abs = static_cast<int64_t>(std::llround(2 * affected - dead));
      s.delta_net = -static_cast<int64_t>(std::llround(dead));
    }
    out.Set(name, s);
  }
  return out;
}

}  // namespace wuw
