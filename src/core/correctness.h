// Correctness of view strategies (Definition 3.1, conditions C1-C6) and
// VDAG strategies (Definition 3.3, conditions C7-C8).
#ifndef WUW_CORE_CORRECTNESS_H_
#define WUW_CORE_CORRECTNESS_H_

#include <set>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "graph/vdag.h"

namespace wuw {

/// Outcome of a correctness check.  `violation` names the failed condition
/// and the offending expressions, e.g.
/// "C3: Inst(ORDERS) precedes Comp(Q3, {ORDERS})".
struct CorrectnessResult {
  bool ok = true;
  std::string violation;

  static CorrectnessResult Ok() { return {}; }
  static CorrectnessResult Fail(std::string message) {
    return {false, std::move(message)};
  }
};

/// Checks Definition 3.1 for a single view `view` defined over `sources`.
/// The strategy must contain only Comp(view, ...) and Inst expressions over
/// sources ∪ {view}.  Views in `known_empty` have provably empty deltas;
/// footnote 5 waives C1/C2 for them (their propagation and installation
/// are no-ops a simplified strategy may omit).
CorrectnessResult CheckViewStrategy(const std::string& view,
                                    const std::vector<std::string>& sources,
                                    const Strategy& strategy,
                                    const std::set<std::string>& known_empty = {});

/// Checks Definition 3.3 (C7 via Definition 3.1 per view, plus C8 and the
/// global single-Inst requirement) for a whole-VDAG strategy.
/// `known_empty` as above (use EmptyDeltaClosure from core/simplify.h).
///
/// Hidden auxiliary views ("__aux_<n>", plan/aux_view.h) the strategy never
/// mentions are waived: strategies built before a promotion are still
/// correct afterwards — the warehouse recomputes any aux view such a
/// strategy left stale before the commit publishes.  A *partial* mention
/// (Comp without Inst, or vice versa) still fails as for any view.
CorrectnessResult CheckVdagStrategy(const Vdag& vdag, const Strategy& strategy,
                                    const std::set<std::string>& known_empty = {});

}  // namespace wuw

#endif  // WUW_CORE_CORRECTNESS_H_
