// Algorithm 6.1 — Prune: the optimal 1-way VDAG strategy for any VDAG.
//
// Prune partitions the 1-way VDAG strategies by the unique view ordering
// each is strongly consistent with (Lemma 6.1); all strategies in a
// partition incur equal work (Theorem 6.1), so examining one topological
// sort of each ordering's strong expression graph covers the whole space.
// The m! optimization permutes only views that have parents — the install
// position of a view nothing is defined over never affects work.
#ifndef WUW_CORE_PRUNE_H_
#define WUW_CORE_PRUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

struct PruneOptions {
  /// Permute only views with parents (Section 6's m! optimization).  When
  /// false, all n! orderings of all views are searched — only useful to
  /// validate the optimization in tests.
  bool permute_only_views_with_parents = true;
  WorkParams work_params;
  /// Promoted auxiliary views the costing may substitute
  /// (AuxViewRegistry::BuildCostInfo).  With aux-aware costing, orderings
  /// that delay installing covered prefix sources keep the cheap aux-scan
  /// alternative alive for more Comps — so the *chosen* strategy changes,
  /// not just its estimated work.  Null = the plain linear metric.
  const AuxCostInfo* aux = nullptr;
};

struct PruneResult {
  Strategy strategy;
  double work = 0;
  /// The view ordering the winning strategy is strongly consistent with.
  std::vector<std::string> ordering;
  /// Orderings examined / rejected because their SEG was cyclic.
  int64_t orderings_examined = 0;
  int64_t orderings_infeasible = 0;
};

/// Runs Prune.  The VDAG must have at least one derived view.
PruneResult Prune(const Vdag& vdag, const SizeMap& sizes,
                  const PruneOptions& options = {});

}  // namespace wuw

#endif  // WUW_CORE_PRUNE_H_
