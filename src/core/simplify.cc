#include "core/simplify.h"

namespace wuw {

std::set<std::string> EmptyDeltaClosure(
    const Vdag& vdag, const std::set<std::string>& empty_base_deltas) {
  std::set<std::string> empty = empty_base_deltas;
  // Registration order is bottom-up, so one pass suffices.
  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    bool all_sources_empty = true;
    for (const std::string& src : vdag.sources(view)) {
      if (empty.count(src) == 0) {
        all_sources_empty = false;
        break;
      }
    }
    if (all_sources_empty) empty.insert(view);
  }
  return empty;
}

Strategy SimplifyForEmptyDeltas(const Strategy& strategy,
                                const std::set<std::string>& empty_views) {
  Strategy out;
  for (const Expression& e : strategy.expressions()) {
    if (e.is_inst()) {
      if (empty_views.count(e.view) == 0) out.Append(e);
      continue;
    }
    std::vector<std::string> over;
    for (const std::string& y : e.over) {
      if (empty_views.count(y) == 0) over.push_back(y);
    }
    if (!over.empty()) out.Append(Expression::Comp(e.view, std::move(over)));
  }
  return out;
}

}  // namespace wuw
