#include "core/work_metric.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace wuw {

const ViewSizes& SizeMap::Get(const std::string& view) const {
  auto it = map_.find(view);
  WUW_CHECK(it != map_.end(), ("no size stats for view: " + view).c_str());
  return it->second;
}

std::string SizeMap::ToString() const {
  std::string out;
  for (const auto& [view, s] : map_) {
    out += view + ": |V|=" + std::to_string(s.size) +
           " |dV|=" + std::to_string(s.delta_abs) +
           " net=" + std::to_string(s.delta_net) + "\n";
  }
  return out;
}

namespace {

/// Shared replay loop; `comp_work` computes one Comp expression's work
/// from (delta sizes of Y, current extents).
template <typename CompWorkFn>
WorkBreakdown Replay(const Vdag& vdag, const Strategy& strategy,
                     const SizeMap& sizes, const WorkParams& params,
                     const CompWorkFn& comp_work) {
  std::unordered_map<std::string, int64_t> current;
  for (const std::string& name : vdag.view_names()) {
    current[name] = sizes.Get(name).size;
  }

  WorkBreakdown out;
  for (const Expression& e : strategy.expressions()) {
    double work = 0;
    if (e.is_comp()) {
      work = params.comp_per_row * comp_work(e, current);
    } else {
      work = params.inst_per_row *
             static_cast<double>(sizes.Get(e.view).delta_abs);
      current[e.view] += sizes.Get(e.view).delta_net;
    }
    out.per_expression.push_back(ExpressionWork{e, work});
    out.total += work;
  }
  return out;
}

}  // namespace

WorkBreakdown EstimateStrategyWork(const Vdag& vdag, const Strategy& strategy,
                                   const SizeMap& sizes,
                                   const WorkParams& params) {
  auto comp_work = [&](const Expression& e,
                       const std::unordered_map<std::string, int64_t>&
                           current) -> double {
    const std::vector<std::string>& all_sources = vdag.sources(e.view);
    const std::vector<std::string>& y = e.over;
    const size_t m = y.size();
    WUW_CHECK(m < 63, "Comp set too large for subset enumeration");

    // Extents of sources outside Y are read by every one of the 2^m-1
    // terms.
    double other_extents = 0;
    for (const std::string& src : all_sources) {
      if (std::find(y.begin(), y.end(), src) == y.end()) {
        other_extents += static_cast<double>(current.at(src));
      }
    }

    double total = 0;
    for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
      double term = other_extents;
      for (size_t k = 0; k < m; ++k) {
        term += (mask >> k & 1)
                    ? static_cast<double>(sizes.Get(y[k]).delta_abs)
                    : static_cast<double>(current.at(y[k]));
      }
      total += term;
    }
    return total;
  };
  return Replay(vdag, strategy, sizes, params, comp_work);
}

WorkBreakdown EstimateStrategyWork(const Vdag& vdag, const Strategy& strategy,
                                   const SizeMap& sizes,
                                   const WorkParams& params,
                                   const AuxCostInfo* aux) {
  if (aux == nullptr || aux->empty()) {
    return EstimateStrategyWork(vdag, strategy, sizes, params);
  }
  std::unordered_map<std::string, int64_t> current;
  for (const std::string& name : vdag.view_names()) {
    current[name] = sizes.Get(name).size;
  }
  // Views Inst'ed so far in the replay: their extents are post-install, so
  // any aux view covering them (or installed itself) stops substituting —
  // the same rule FindAuxBinding enforces at runtime via version stamps.
  std::unordered_set<std::string> installed;

  auto comp_work = [&](const Expression& e) -> double {
    const std::vector<std::string>& all_sources = vdag.sources(e.view);
    const std::vector<std::string>& y = e.over;
    const size_t m = y.size();
    WUW_CHECK(m < 63, "Comp set too large for subset enumeration");

    // Longest still-applicable alternative for this view, if any.
    const AuxCostAlternative* best = nullptr;
    for (const AuxCostAlternative& alt : aux->alternatives) {
      if (alt.view != e.view) continue;
      if (alt.prefix_len < 2 || alt.prefix_len >= all_sources.size() ||
          alt.prefix_sources.size() != alt.prefix_len) {
        continue;
      }
      if (!sizes.Has(alt.aux_view) || installed.count(alt.aux_view) > 0) {
        continue;
      }
      bool applicable = true;
      double prefix_rows = 0;
      for (size_t i = 0; i < alt.prefix_len; ++i) {
        if (alt.prefix_sources[i] != all_sources[i] ||
            installed.count(all_sources[i]) > 0) {
          applicable = false;
          break;
        }
        prefix_rows += static_cast<double>(current.at(all_sources[i]));
      }
      if (!applicable) continue;
      // Strict benefit: never substitute a scan that reads no fewer rows.
      if (static_cast<double>(current.at(alt.aux_view)) >= prefix_rows) {
        continue;
      }
      if (best == nullptr || alt.prefix_len > best->prefix_len) best = &alt;
    }

    // Split the non-Y extents by prefix membership, and record which Y
    // positions sit inside the prefix: a term substitutes only when all of
    // those read extents (mask bits zero).
    double other_in_prefix = 0;
    double other_outside = 0;
    uint64_t y_in_prefix = 0;
    for (size_t s = 0; s < all_sources.size(); ++s) {
      const bool in_prefix = best != nullptr && s < best->prefix_len;
      auto it = std::find(y.begin(), y.end(), all_sources[s]);
      if (it == y.end()) {
        double rows = static_cast<double>(current.at(all_sources[s]));
        (in_prefix ? other_in_prefix : other_outside) += rows;
      } else if (in_prefix) {
        y_in_prefix |= uint64_t{1} << (it - y.begin());
      }
    }
    const double aux_rows =
        best != nullptr ? static_cast<double>(current.at(best->aux_view)) : 0;

    double total = 0;
    for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
      const bool substituted = best != nullptr && (mask & y_in_prefix) == 0;
      double term = substituted ? aux_rows + other_outside
                                : other_in_prefix + other_outside;
      for (size_t k = 0; k < m; ++k) {
        const bool k_in_prefix = (y_in_prefix >> k & 1) != 0;
        if (mask >> k & 1) {
          term += static_cast<double>(sizes.Get(y[k]).delta_abs);
        } else if (!(substituted && k_in_prefix)) {
          term += static_cast<double>(current.at(y[k]));
        }
      }
      total += term;
    }
    return total;
  };

  WorkBreakdown out;
  for (const Expression& e : strategy.expressions()) {
    double work = 0;
    if (e.is_comp()) {
      work = params.comp_per_row * comp_work(e);
    } else {
      work = params.inst_per_row *
             static_cast<double>(sizes.Get(e.view).delta_abs);
      current[e.view] += sizes.Get(e.view).delta_net;
      installed.insert(e.view);
    }
    out.per_expression.push_back(ExpressionWork{e, work});
    out.total += work;
  }
  return out;
}

WorkBreakdown EstimateStrategyWorkOperandsOnce(const Vdag& vdag,
                                               const Strategy& strategy,
                                               const SizeMap& sizes,
                                               const WorkParams& params) {
  auto comp_work = [&](const Expression& e,
                       const std::unordered_map<std::string, int64_t>&
                           current) -> double {
    double total = 0;
    for (const std::string& src : vdag.sources(e.view)) {
      bool in_y = std::find(e.over.begin(), e.over.end(), src) != e.over.end();
      if (in_y) {
        total += static_cast<double>(sizes.Get(src).delta_abs);
        // Extent of a Y view is also an operand (of the mixed terms) unless
        // Y is a singleton, whose single term reads only the delta.
        if (e.over.size() > 1) total += static_cast<double>(current.at(src));
      } else {
        total += static_cast<double>(current.at(src));
      }
    }
    return total;
  };
  return Replay(vdag, strategy, sizes, params, comp_work);
}

}  // namespace wuw
