#include "core/min_work.h"

#include "common/check.h"
#include "core/expression_graph.h"
#include "core/min_work_single.h"

namespace wuw {

std::vector<std::string> ModifyOrdering(
    const Vdag& vdag, const std::vector<std::string>& ordering) {
  std::vector<std::string> out;
  for (int level = 0; level <= vdag.MaxLevel(); ++level) {
    for (const std::string& view : ordering) {
      if (vdag.Level(view) == level) out.push_back(view);
    }
  }
  return out;
}

MinWorkResult MinWork(const Vdag& vdag, const SizeMap& sizes) {
  MinWorkResult result;
  result.ordering = DesiredViewOrdering(vdag.view_names(), sizes);

  ExpressionGraph eg = ExpressionGraph::ConstructEG(vdag, result.ordering);
  auto strategy = eg.TopologicalStrategy();
  if (!strategy.has_value()) {
    result.ordering = ModifyOrdering(vdag, result.ordering);
    result.used_modified_ordering = true;
    ExpressionGraph eg2 = ExpressionGraph::ConstructEG(vdag, result.ordering);
    strategy = eg2.TopologicalStrategy();
    WUW_CHECK(strategy.has_value(),
              "ModifyOrdering must yield an acyclic expression graph "
              "(Theorem 5.5)");
  }
  result.strategy = std::move(*strategy);
  return result;
}

}  // namespace wuw
