// The warehouse administrator's strategy advisor.
//
// The paper's motivation: "the WHA can easily pick an inefficient update
// strategy, or even worse an update strategy that incorrectly updates the
// warehouse... the WHA may have to change the script frequently, since
// what strategy is best depends on the current size of the warehouse views
// and the current set of changes."  Advise() packages the paper's answer:
// for tonight's batch it evaluates the candidate strategies under the
// linear work metric and returns them ranked, each validated against
// C1-C8.
#ifndef WUW_CORE_ADVISOR_H_
#define WUW_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

/// One ranked candidate.
struct StrategyAdvice {
  std::string name;        // "MinWork", "Prune", "dual-stage", ...
  Strategy strategy;
  double estimated_work = 0;
  /// Ratio vs the best candidate (1.0 for the winner).
  double relative_work = 1.0;
  std::string note;  // e.g. "optimal (uniform VDAG)", "fallback ordering"
};

struct AdvisorOptions {
  /// Run Prune when at most this many views have parents (the m! search).
  size_t prune_max_permutable = 8;
  WorkParams work_params;
};

/// Evaluates the standard candidates (MinWork, Prune when feasible,
/// dual-stage, and the reverse-ordering strawman) for the given batch
/// statistics.  Result is sorted by estimated work, best first.
std::vector<StrategyAdvice> Advise(const Vdag& vdag, const SizeMap& sizes,
                                   const AdvisorOptions& options = {});

/// Renders the advice as an aligned report for logs/CLIs.
std::string AdviceToText(const std::vector<StrategyAdvice>& advice);

}  // namespace wuw

#endif  // WUW_CORE_ADVISOR_H_
