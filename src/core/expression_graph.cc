#include "core/expression_graph.h"

#include <unordered_map>

#include "common/check.h"

namespace wuw {

namespace {

/// Rank of each view in the ordering; views absent from the ordering are
/// unconstrained.
std::unordered_map<std::string, size_t> Ranks(
    const std::vector<std::string>& ordering) {
  std::unordered_map<std::string, size_t> ranks;
  for (size_t i = 0; i < ordering.size(); ++i) ranks[ordering[i]] = i;
  return ranks;
}

}  // namespace

ExpressionGraph::ExpressionGraph(const Vdag& vdag,
                                 const std::vector<std::string>& ordering,
                                 bool strong) {
  // Nodes: Comps grouped per derived view (bottom-up), then all Insts.
  std::unordered_map<std::string, int> inst_id;
  std::unordered_map<std::string, std::vector<int>> comps_of;  // by view
  auto add_node = [&](Expression e) {
    nodes_.push_back(std::move(e));
    return static_cast<int>(nodes_.size() - 1);
  };
  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    for (const std::string& src : vdag.sources(view)) {
      comps_of[view].push_back(add_node(Expression::Comp(view, {src})));
    }
  }
  for (const std::string& view : vdag.view_names()) {
    inst_id[view] = add_node(Expression::Inst(view));
  }
  graph_ = Digraph(nodes_.size());

  const auto ranks = Ranks(ordering);
  auto rank_of = [&](const std::string& v) -> std::optional<size_t> {
    auto it = ranks.find(v);
    if (it == ranks.end()) return std::nullopt;
    return it->second;
  };

  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    const auto& comp_ids = comps_of[view];
    const auto& sources = vdag.sources(view);
    for (size_t a = 0; a < sources.size(); ++a) {
      // C3: Inst(Vi) follows Comp(V, {Vi}).
      graph_.AddEdge(inst_id[sources[a]], comp_ids[a]);
      // C5: Inst(V) follows Comp(V, {Vi}).
      graph_.AddEdge(inst_id[view], comp_ids[a]);
      // C8: Comp(V, {Vi}) follows every Comp(Vi, ...).
      if (vdag.IsDerivedView(sources[a])) {
        for (int down : comps_of[sources[a]]) {
          graph_.AddEdge(comp_ids[a], down);
        }
      }
      // Ordering dependencies between Comps of the same view, with the C4
      // edges they induce.
      for (size_t b = 0; b < sources.size(); ++b) {
        if (a == b) continue;
        auto ra = rank_of(sources[a]), rb = rank_of(sources[b]);
        if (ra && rb && *ra < *rb) {
          // Vi=sources[a] precedes Vj=sources[b]: Comp(V,{Vj}) follows
          // Comp(V,{Vi}) and follows Inst(Vi) (C4).
          graph_.AddEdge(comp_ids[b], comp_ids[a]);
          graph_.AddEdge(comp_ids[b], inst_id[sources[a]]);
        }
      }
    }
  }

  if (strong) {
    // Inst sequence must follow the ordering: chain consecutive ranks.
    for (size_t i = 0; i + 1 < ordering.size(); ++i) {
      graph_.AddEdge(inst_id.at(ordering[i + 1]), inst_id.at(ordering[i]));
    }
  }
}

ExpressionGraph ExpressionGraph::ConstructEG(
    const Vdag& vdag, const std::vector<std::string>& ordering) {
  return ExpressionGraph(vdag, ordering, /*strong=*/false);
}

ExpressionGraph ExpressionGraph::ConstructSEG(
    const Vdag& vdag, const std::vector<std::string>& ordering) {
  return ExpressionGraph(vdag, ordering, /*strong=*/true);
}

std::optional<Strategy> ExpressionGraph::TopologicalStrategy() const {
  auto order = graph_.TopologicalSort();
  if (!order.has_value()) return std::nullopt;
  Strategy s;
  for (size_t id : *order) s.Append(nodes_[id]);
  return s;
}

std::vector<Expression> ExpressionGraph::FindCycle() const {
  std::vector<Expression> out;
  for (size_t id : graph_.FindCycle()) out.push_back(nodes_[id]);
  return out;
}

}  // namespace wuw
