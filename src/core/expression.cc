#include "core/expression.h"

#include <algorithm>

namespace wuw {

Expression Expression::Comp(std::string view, std::vector<std::string> over) {
  std::sort(over.begin(), over.end());
  return Expression{Kind::kComp, std::move(view), std::move(over)};
}

Expression Expression::Inst(std::string view) {
  return Expression{Kind::kInst, std::move(view), {}};
}

bool Expression::CompUses(const std::string& source) const {
  if (!is_comp()) return false;
  return std::find(over.begin(), over.end(), source) != over.end();
}

bool Expression::operator==(const Expression& other) const {
  return kind == other.kind && view == other.view && over == other.over;
}

bool Expression::operator<(const Expression& other) const {
  if (kind != other.kind) return kind < other.kind;
  if (view != other.view) return view < other.view;
  return over < other.over;
}

std::string Expression::ToString() const {
  if (is_inst()) return "Inst(" + view + ")";
  std::string out = "Comp(" + view + ", {";
  for (size_t i = 0; i < over.size(); ++i) {
    if (i > 0) out += ", ";
    out += over[i];
  }
  out += "})";
  return out;
}

}  // namespace wuw
