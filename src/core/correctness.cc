#include "core/correctness.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace wuw {

namespace {

bool InList(const std::vector<std::string>& list, const std::string& s) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

/// Hidden auxiliary view names (literal duplicated from plan/aux_view.h's
/// kAuxViewPrefix — core must not include plan headers).
bool IsHiddenAuxView(const std::string& name) {
  return name.rfind("__aux_", 0) == 0;
}

}  // namespace

CorrectnessResult CheckViewStrategy(const std::string& view,
                                    const std::vector<std::string>& sources,
                                    const Strategy& strategy,
                                    const std::set<std::string>& known_empty) {
  const auto& exprs = strategy.expressions();

  // Structural sanity: only expressions a view strategy may contain.
  for (const Expression& e : exprs) {
    if (e.is_comp()) {
      if (e.view != view) {
        return CorrectnessResult::Fail("view strategy for " + view +
                                       " contains " + e.ToString());
      }
      if (e.over.empty()) {
        return CorrectnessResult::Fail("empty Comp set in " + e.ToString());
      }
      for (const std::string& y : e.over) {
        if (!InList(sources, y)) {
          return CorrectnessResult::Fail("Comp over non-source: " +
                                         e.ToString());
        }
      }
    } else if (e.view != view && !InList(sources, e.view)) {
      return CorrectnessResult::Fail("Inst of unrelated view: " +
                                     e.ToString());
    }
  }

  // C6: no duplicate expressions.
  for (size_t i = 0; i < exprs.size(); ++i) {
    for (size_t j = i + 1; j < exprs.size(); ++j) {
      if (exprs[i] == exprs[j]) {
        return CorrectnessResult::Fail("C6: duplicate " + exprs[i].ToString());
      }
    }
  }

  // C1: every source's changes are propagated by some Comp (waived for
  // empty deltas, footnote 5).
  for (const std::string& src : sources) {
    if (known_empty.count(src) > 0) continue;
    bool found = false;
    for (const Expression& e : exprs) {
      if (e.CompUses(src)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return CorrectnessResult::Fail("C1: no Comp propagates delta of " + src);
    }
  }

  // C2: every source and the view itself is installed.
  auto inst_pos = [&](const std::string& v) {
    return strategy.IndexOf(Expression::Inst(v));
  };
  for (const std::string& src : sources) {
    if (inst_pos(src) < 0 && known_empty.count(src) == 0) {
      return CorrectnessResult::Fail("C2: missing Inst(" + src + ")");
    }
  }
  if (inst_pos(view) < 0 && known_empty.count(view) == 0) {
    return CorrectnessResult::Fail("C2: missing Inst(" + view + ")");
  }

  for (size_t i = 0; i < exprs.size(); ++i) {
    if (!exprs[i].is_comp()) continue;
    // C3: Comp(V, {...Vi...}) < Inst(Vi).
    for (const std::string& y : exprs[i].over) {
      if (inst_pos(y) < static_cast<int>(i)) {
        return CorrectnessResult::Fail("C3: Inst(" + y + ") precedes " +
                                       exprs[i].ToString());
      }
    }
    // C5: Comp(V, ...) < Inst(V).
    if (inst_pos(view) < static_cast<int>(i)) {
      return CorrectnessResult::Fail("C5: Inst(" + view + ") precedes " +
                                     exprs[i].ToString());
    }
    // C4: for each later Comp, all of this Comp's views are installed
    // before it.
    for (size_t j = i + 1; j < exprs.size(); ++j) {
      if (!exprs[j].is_comp()) continue;
      for (const std::string& y : exprs[i].over) {
        int pos = inst_pos(y);
        if (pos < 0 && known_empty.count(y) > 0) continue;
        if (pos < 0 || pos > static_cast<int>(j)) {
          return CorrectnessResult::Fail(
              "C4: Inst(" + y + ") does not precede " + exprs[j].ToString());
        }
      }
    }
  }
  return CorrectnessResult::Ok();
}

CorrectnessResult CheckVdagStrategy(const Vdag& vdag,
                                    const Strategy& strategy,
                                    const std::set<std::string>& known_empty) {
  const auto& exprs = strategy.expressions();

  // Structural sanity against the VDAG.
  std::unordered_map<std::string, int> inst_count;
  std::set<std::string> mentioned;
  for (const Expression& e : exprs) {
    mentioned.insert(e.view);
    if (!vdag.HasView(e.view)) {
      return CorrectnessResult::Fail("unknown view in " + e.ToString());
    }
    if (e.is_comp()) {
      if (vdag.IsBaseView(e.view)) {
        return CorrectnessResult::Fail("Comp for base view: " + e.ToString());
      }
      const auto& sources = vdag.sources(e.view);
      if (e.over.empty()) {
        return CorrectnessResult::Fail("empty Comp set in " + e.ToString());
      }
      for (const std::string& y : e.over) {
        if (!InList(sources, y)) {
          return CorrectnessResult::Fail("Comp over non-source: " +
                                         e.ToString());
        }
      }
    } else {
      ++inst_count[e.view];
    }
  }

  // One Inst per view (C2 across all used view strategies + C6); views
  // with empty deltas may omit theirs.
  for (const std::string& name : vdag.view_names()) {
    auto it = inst_count.find(name);
    int count = it == inst_count.end() ? 0 : it->second;
    if (count == 0 && known_empty.count(name) > 0) continue;
    // Unmentioned hidden aux views are waived (see header): pre-promotion
    // strategies stay correct, the commit-time refresh covers the drift.
    if (count == 0 && mentioned.count(name) == 0 && IsHiddenAuxView(name)) {
      continue;
    }
    if (count != 1) {
      return CorrectnessResult::Fail("C2/C6: Inst(" + name + ") appears " +
                                     std::to_string(count) + " times");
    }
  }

  // C6 over the full sequence.
  for (size_t i = 0; i < exprs.size(); ++i) {
    for (size_t j = i + 1; j < exprs.size(); ++j) {
      if (exprs[i] == exprs[j]) {
        return CorrectnessResult::Fail("C6: duplicate " + exprs[i].ToString());
      }
    }
  }

  // C7: every derived view is updated by a correct view strategy.
  for (const std::string& name : vdag.DerivedViewsBottomUp()) {
    if (mentioned.count(name) == 0 && IsHiddenAuxView(name)) continue;
    Strategy used = strategy.UsedViewStrategy(name, vdag.sources(name));
    CorrectnessResult r =
        CheckViewStrategy(name, vdag.sources(name), used, known_empty);
    if (!r.ok) {
      return CorrectnessResult::Fail("C7 (view " + name + "): " + r.violation);
    }
  }

  // C8: all Comp(Vj, ...) precede any Comp(Vk, {...Vj...}).
  for (size_t k = 0; k < exprs.size(); ++k) {
    if (!exprs[k].is_comp()) continue;
    for (const std::string& vj : exprs[k].over) {
      if (vdag.IsBaseView(vj)) continue;
      for (size_t j = k + 1; j < exprs.size(); ++j) {
        if (exprs[j].is_comp() && exprs[j].view == vj) {
          return CorrectnessResult::Fail("C8: " + exprs[j].ToString() +
                                         " follows " + exprs[k].ToString());
        }
      }
    }
  }
  return CorrectnessResult::Ok();
}

}  // namespace wuw
