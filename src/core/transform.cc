#include "core/transform.h"

#include "common/check.h"

namespace wuw {

bool ApplySeparator(const Strategy& strategy, size_t from_index,
                    Strategy* out) {
  const auto& exprs = strategy.expressions();
  for (size_t i = from_index; i < exprs.size(); ++i) {
    const Expression& e = exprs[i];
    if (!e.is_comp() || e.over.size() < 2) continue;

    const std::string y1 = e.over.front();
    std::vector<std::string> rest(e.over.begin() + 1, e.over.end());

    *out = Strategy();
    for (size_t j = 0; j < i; ++j) out->Append(exprs[j]);
    out->Append(Expression::Comp(e.view, {y1}));
    out->Append(Expression::Inst(y1));
    out->Append(Expression::Comp(e.view, std::move(rest)));
    bool removed_inst = false;
    for (size_t j = i + 1; j < exprs.size(); ++j) {
      if (!removed_inst && exprs[j] == Expression::Inst(y1)) {
        removed_inst = true;  // moved to right after the separated Comp
        continue;
      }
      out->Append(exprs[j]);
    }
    WUW_CHECK(removed_inst,
              "separator: no later Inst for the separated view (is the "
              "input a correct view strategy?)");
    return true;
  }
  return false;
}

Strategy SeparateToOneWay(const Strategy& strategy) {
  Strategy current = strategy;
  Strategy next;
  // Each application removes one view from some multi-view Comp, so the
  // loop terminates after at most Σ|Y| steps.
  while (ApplySeparator(current, 0, &next)) {
    current = std::move(next);
  }
  return current;
}

}  // namespace wuw
