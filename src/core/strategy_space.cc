#include "core/strategy_space.h"

#include "common/check.h"

namespace wuw {

namespace {

// Recursively assigns element `i` to every block of every ordered partition
// of elements 0..i-1, or to a new block in every gap position.
void Extend(size_t i, size_t n, OrderedPartition* current,
            std::vector<OrderedPartition>* out) {
  if (i == n) {
    out->push_back(*current);
    return;
  }
  // Add to an existing block.
  for (size_t b = 0; b < current->size(); ++b) {
    (*current)[b].push_back(i);
    Extend(i + 1, n, current, out);
    (*current)[b].pop_back();
  }
  // Or open a new singleton block at every position.
  for (size_t pos = 0; pos <= current->size(); ++pos) {
    current->insert(current->begin() + pos, {i});
    Extend(i + 1, n, current, out);
    current->erase(current->begin() + pos);
  }
}

uint64_t Factorial(uint64_t k) {
  uint64_t f = 1;
  for (uint64_t i = 2; i <= k; ++i) f *= i;
  return f;
}

uint64_t Binomial(uint64_t n, uint64_t k) {
  return Factorial(n) / (Factorial(k) * Factorial(n - k));
}

uint64_t Power(uint64_t base, uint64_t exp) {
  uint64_t p = 1;
  for (uint64_t i = 0; i < exp; ++i) p *= base;
  return p;
}

}  // namespace

std::vector<OrderedPartition> EnumerateOrderedPartitions(size_t n) {
  std::vector<OrderedPartition> out;
  OrderedPartition current;
  Extend(0, n, &current, &out);
  return out;
}

uint64_t CountViewStrategies(size_t n) {
  // Equation (5), with the inner sign on i (the paper's typeset formula
  // reads (-1)^k but only the (-1)^i inclusion-exclusion form produces the
  // published Table 1 values).
  int64_t total = 0;
  for (uint64_t k = 1; k <= n; ++k) {
    for (uint64_t i = 0; i < k; ++i) {
      int64_t sign = (i % 2 == 0) ? 1 : -1;
      total += sign *
               static_cast<int64_t>(Factorial(k) /
                                    (Factorial(i) * Factorial(k - i)) *
                                    Power(k - i, n));
    }
  }
  return static_cast<uint64_t>(total);
}

uint64_t CountViewStrategiesRecurrence(size_t n) {
  // a(0)=1; a(n) = Σ_{k=1..n} C(n,k) a(n-k): choose the first block.
  std::vector<uint64_t> a(n + 1, 0);
  a[0] = 1;
  for (size_t m = 1; m <= n; ++m) {
    for (size_t k = 1; k <= m; ++k) {
      a[m] += Binomial(m, k) * a[m - k];
    }
  }
  return a[n];
}

Strategy MakeViewStrategy(const std::string& view,
                          const std::vector<std::string>& sources,
                          const OrderedPartition& partition) {
  Strategy s;
  for (const std::vector<size_t>& block : partition) {
    std::vector<std::string> over;
    for (size_t i : block) {
      WUW_CHECK(i < sources.size(), "partition index out of range");
      over.push_back(sources[i]);
    }
    s.Append(Expression::Comp(view, over));
    for (size_t i : block) s.Append(Expression::Inst(sources[i]));
  }
  s.Append(Expression::Inst(view));
  return s;
}

Strategy MakeOneWayViewStrategy(
    const std::string& view, const std::vector<std::string>& ordered_sources) {
  Strategy s;
  for (const std::string& src : ordered_sources) {
    s.Append(Expression::Comp(view, {src}));
    s.Append(Expression::Inst(src));
  }
  s.Append(Expression::Inst(view));
  return s;
}

Strategy MakeDualStageViewStrategy(const std::string& view,
                                   const std::vector<std::string>& sources) {
  Strategy s;
  s.Append(Expression::Comp(view, sources));
  for (const std::string& src : sources) s.Append(Expression::Inst(src));
  s.Append(Expression::Inst(view));
  return s;
}

std::vector<Strategy> AllViewStrategies(
    const std::string& view, const std::vector<std::string>& sources) {
  std::vector<Strategy> out;
  for (const OrderedPartition& partition :
       EnumerateOrderedPartitions(sources.size())) {
    out.push_back(MakeViewStrategy(view, sources, partition));
  }
  return out;
}

Strategy MakeDualStageVdagStrategy(const Vdag& vdag) {
  Strategy s;
  // Propagate stage: one Comp per derived view over all its sources,
  // bottom-up so that C8 holds.
  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    s.Append(Expression::Comp(view, vdag.sources(view)));
  }
  // Install stage: all views.  All dual-stage install orders incur the
  // same work (footnote 3), so registration order is as good as any.
  for (const std::string& view : vdag.view_names()) {
    s.Append(Expression::Inst(view));
  }
  return s;
}

}  // namespace wuw
