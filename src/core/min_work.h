// Algorithm 5.1 — MinWork: near-optimal VDAG strategies in O(n^3).
//
// MinWork computes the desired view ordering (increasing |V'|-|V|), builds
// the expression graph, and topologically sorts it.  If the graph is
// cyclic it falls back to ModifyOrdering (Algorithm 5.2) — a level-major
// refinement of the desired ordering that always yields an acyclic graph
// (Theorem 5.5).  For tree and uniform VDAGs the first attempt always
// succeeds (Lemmas 5.1/5.2), making MinWork optimal there (Theorem 5.4).
#ifndef WUW_CORE_MIN_WORK_H_
#define WUW_CORE_MIN_WORK_H_

#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

/// Output of MinWork.
struct MinWorkResult {
  Strategy strategy;
  /// The view ordering the strategy is consistent with.
  std::vector<std::string> ordering;
  /// True if the desired ordering's expression graph was cyclic and
  /// ModifyOrdering had to be applied (the strategy may then be
  /// sub-optimal, though still 1-way and correct).
  bool used_modified_ordering = false;
};

/// Algorithm 5.2 — ModifyOrdering: reorders `ordering` level-major (lower
/// Level first), preserving the given order within a level.
std::vector<std::string> ModifyOrdering(const Vdag& vdag,
                                        const std::vector<std::string>& ordering);

/// Algorithm 5.1 — MinWork.
MinWorkResult MinWork(const Vdag& vdag, const SizeMap& sizes);

}  // namespace wuw

#endif  // WUW_CORE_MIN_WORK_H_
