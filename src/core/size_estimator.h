// Analytic size estimation: builds the SizeMap the algorithms consume.
//
// "Estimates of |δV| for derived views can be obtained using standard
// query result size estimation methods; we proceed bottom-up" (Section
// 5.5).  Base views are exact (their deltas arrived with the batch);
// derived views use a first-order uniform-independence model over their
// sources' change fractions.  When precision matters (multi-level VDAGs
// with aggregate intermediates), exec/Warehouse also offers an oracle that
// measures delta sizes on a cloned database.
#ifndef WUW_CORE_SIZE_ESTIMATOR_H_
#define WUW_CORE_SIZE_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

/// Plus/minus tuple counts of one base view's incoming delta.
struct BaseDeltaStats {
  int64_t plus = 0;
  int64_t minus = 0;
};

/// Inputs to analytic estimation.
struct EstimatorInputs {
  /// |V| for every view (base and derived), from the catalog.
  std::unordered_map<std::string, int64_t> extent_sizes;
  /// Incoming delta stats per base view.
  std::unordered_map<std::string, BaseDeltaStats> base_deltas;
  /// For aggregate views: cardinality of the pre-aggregation join when the
  /// view was last (re)computed.  Used to derive the average group size.
  /// SPJ views do not need it (their extent equals the join).
  std::unordered_map<std::string, int64_t> join_rows;
};

/// Builds a complete SizeMap bottom-up.
SizeMap EstimateSizes(const Vdag& vdag, const EstimatorInputs& inputs);

}  // namespace wuw

#endif  // WUW_CORE_SIZE_ESTIMATOR_H_
