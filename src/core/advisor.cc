#include "core/advisor.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "core/correctness.h"
#include "core/expression_graph.h"
#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"

namespace wuw {

std::vector<StrategyAdvice> Advise(const Vdag& vdag, const SizeMap& sizes,
                                   const AdvisorOptions& options) {
  std::vector<StrategyAdvice> advice;
  auto add = [&](std::string name, Strategy strategy, std::string note) {
    CorrectnessResult r = CheckVdagStrategy(vdag, strategy);
    WUW_CHECK(r.ok, ("advisor produced incorrect strategy: " + r.violation)
                        .c_str());
    StrategyAdvice a;
    a.name = std::move(name);
    a.estimated_work =
        EstimateStrategyWork(vdag, strategy, sizes, options.work_params)
            .total;
    a.strategy = std::move(strategy);
    a.note = std::move(note);
    advice.push_back(std::move(a));
  };

  MinWorkResult mw = MinWork(vdag, sizes);
  std::string mw_note;
  if (mw.used_modified_ordering) {
    mw_note = "level-major fallback ordering (cyclic expression graph)";
  } else if (vdag.IsTree()) {
    mw_note = "optimal: tree VDAG (Lemma 5.1)";
  } else if (vdag.IsUniform()) {
    mw_note = "optimal: uniform VDAG (Lemma 5.2)";
  } else {
    mw_note = "optimal for this batch (acyclic expression graph)";
  }
  add("MinWork", mw.strategy, mw_note);

  if (vdag.ViewsWithParents().size() <= options.prune_max_permutable) {
    PruneOptions prune_options;
    prune_options.work_params = options.work_params;
    PruneResult pr = Prune(vdag, sizes, prune_options);
    add("Prune", pr.strategy,
        "best 1-way strategy (searched " +
            std::to_string(pr.orderings_examined) + " orderings)");
  }

  add("dual-stage", MakeDualStageVdagStrategy(vdag),
      "conventional propagate-then-install script [CGL+96]");

  // The strawman: 1-way against the reversed desired ordering — what a
  // plausible-but-wrong hand-written script costs.
  std::vector<std::string> reversed(mw.ordering.rbegin(), mw.ordering.rend());
  ExpressionGraph eg = ExpressionGraph::ConstructEG(vdag, reversed);
  auto strategy = eg.TopologicalStrategy();
  if (strategy.has_value()) {
    add("reverse-order 1-way", std::move(*strategy),
        "worst-case propagation order, for contrast");
  }

  std::sort(advice.begin(), advice.end(),
            [](const StrategyAdvice& a, const StrategyAdvice& b) {
              return a.estimated_work < b.estimated_work;
            });
  double best = advice.empty() ? 1.0 : advice.front().estimated_work;
  for (StrategyAdvice& a : advice) {
    a.relative_work = best > 0 ? a.estimated_work / best : 1.0;
  }
  return advice;
}

std::string AdviceToText(const std::vector<StrategyAdvice>& advice) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s %14s %8s  %s\n", "strategy",
                "est. work", "vs best", "note");
  out += line;
  for (const StrategyAdvice& a : advice) {
    std::snprintf(line, sizeof(line), "%-22s %14.0f %7.2fx  %s\n",
                  a.name.c_str(), a.estimated_work, a.relative_work,
                  a.note.c_str());
    out += line;
  }
  return out;
}

}  // namespace wuw
