#include "core/prune.h"

#include <algorithm>

#include "common/check.h"
#include "core/expression_graph.h"

namespace wuw {

PruneResult Prune(const Vdag& vdag, const SizeMap& sizes,
                  const PruneOptions& options) {
  std::vector<std::string> permutable =
      options.permute_only_views_with_parents
          ? vdag.ViewsWithParents()
          : vdag.view_names();
  std::sort(permutable.begin(), permutable.end());

  PruneResult best;
  bool found = false;
  std::vector<std::string> ordering = permutable;
  do {
    ++best.orderings_examined;
    ExpressionGraph seg = ExpressionGraph::ConstructSEG(vdag, ordering);
    auto strategy = seg.TopologicalStrategy();
    if (!strategy.has_value()) {
      ++best.orderings_infeasible;
      continue;
    }
    WorkBreakdown work = EstimateStrategyWork(vdag, *strategy, sizes,
                                              options.work_params, options.aux);
    if (!found || work.total < best.work) {
      found = true;
      best.work = work.total;
      best.strategy = std::move(*strategy);
      best.ordering = ordering;
    }
  } while (std::next_permutation(ordering.begin(), ordering.end()));

  WUW_CHECK(found, "Prune found no feasible ordering (identity ordering is "
                   "always feasible for a valid VDAG)");
  return best;
}

}  // namespace wuw
