// Expression graphs (Section 5.2) and strong expression graphs (Section 6).
//
// Nodes are the 1-way expressions of a VDAG: Comp(Vj, {Vi}) per VDAG edge
// and Inst(Vi) per view.  Edges encode "must follow" dependencies from the
// correctness conditions (C3, C4, C5, C8) plus the dependencies a given
// view ordering imposes.  A topological sort of an acyclic (strong)
// expression graph yields a 1-way VDAG strategy (strongly) consistent with
// the ordering (Theorem 5.3 / Lemma A.1).
#ifndef WUW_CORE_EXPRESSION_GRAPH_H_
#define WUW_CORE_EXPRESSION_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "graph/digraph.h"
#include "graph/vdag.h"

namespace wuw {

/// An expression graph over a VDAG, with the dependency edges of
/// ConstructEG (Algorithm A.1) or ConstructSEG.
class ExpressionGraph {
 public:
  /// ConstructEG(G, ordering): ordering-consistency edges bind only Comps
  /// of the same derived view.
  static ExpressionGraph ConstructEG(const Vdag& vdag,
                                     const std::vector<std::string>& ordering);

  /// ConstructSEG(G, ordering): additionally forces the Inst sequence to
  /// follow `ordering` (Inst(Vj) after Inst(Vi) when Vi precedes Vj), so a
  /// topological sort is *strongly* consistent with the ordering.  Views
  /// absent from `ordering` are unconstrained — Prune exploits this for its
  /// m! optimization over views that have parents.
  static ExpressionGraph ConstructSEG(const Vdag& vdag,
                                      const std::vector<std::string>& ordering);

  bool IsAcyclic() const { return graph_.TopologicalSort().has_value(); }

  /// The 1-way VDAG strategy from a deterministic topological sort, or
  /// nullopt if the graph is cyclic.
  std::optional<Strategy> TopologicalStrategy() const;

  const std::vector<Expression>& nodes() const { return nodes_; }

  /// Dependency edges (node -> prerequisites), for rendering/analysis.
  const Digraph& graph() const { return graph_; }

  /// Expressions forming one cycle (diagnostics); empty if acyclic.
  std::vector<Expression> FindCycle() const;

 private:
  ExpressionGraph(const Vdag& vdag, const std::vector<std::string>& ordering,
                  bool strong);

  int NodeId(const Expression& e) const;

  std::vector<Expression> nodes_;
  Digraph graph_{0};
};

}  // namespace wuw

#endif  // WUW_CORE_EXPRESSION_GRAPH_H_
