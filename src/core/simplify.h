// Footnote 5: "Conditions C1 and C2, and our algorithms can be extended to
// avoid using expressions that propagate and install δVi when δVi is
// empty."
//
// Given the set of base views whose incoming deltas are empty, the
// emptiness closure follows the VDAG upward (a derived view's delta is
// empty when all its sources' deltas are).  SimplifyForEmptyDeltas then
// rewrites a correct strategy:
//   * Comp(V, Y) loses the empty members of Y (their terms contribute
//     nothing); the Comp disappears when Y empties entirely;
//   * Inst(X) disappears for views with empty deltas.
// The result satisfies C1-C8 relative to the changed views (pass the
// closure to CheckVdagStrategy's `known_empty`).
#ifndef WUW_CORE_SIMPLIFY_H_
#define WUW_CORE_SIMPLIFY_H_

#include <set>
#include <string>

#include "core/strategy.h"
#include "graph/vdag.h"

namespace wuw {

/// The set of views with provably empty deltas, given the base views whose
/// incoming batches are empty.
std::set<std::string> EmptyDeltaClosure(
    const Vdag& vdag, const std::set<std::string>& empty_base_deltas);

/// Rewrites `strategy` to skip work on views in `empty_views` (use
/// EmptyDeltaClosure).  Correctness and final state are preserved; the
/// skipped expressions were all no-ops.
Strategy SimplifyForEmptyDeltas(const Strategy& strategy,
                                const std::set<std::string>& empty_views);

}  // namespace wuw

#endif  // WUW_CORE_SIMPLIFY_H_
