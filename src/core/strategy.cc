#include "core/strategy.h"

#include <algorithm>

namespace wuw {

void Strategy::AppendAll(const Strategy& other) {
  expressions_.insert(expressions_.end(), other.expressions_.begin(),
                      other.expressions_.end());
}

int Strategy::IndexOf(const Expression& e) const {
  for (size_t i = 0; i < expressions_.size(); ++i) {
    if (expressions_[i] == e) return static_cast<int>(i);
  }
  return -1;
}

Strategy Strategy::UsedViewStrategy(
    const std::string& view, const std::vector<std::string>& sources) const {
  Strategy out;
  for (const Expression& e : expressions_) {
    bool relevant = false;
    if (e.is_comp()) {
      relevant = e.view == view;
    } else {
      relevant = e.view == view ||
                 std::find(sources.begin(), sources.end(), e.view) !=
                     sources.end();
    }
    if (relevant) out.Append(e);
  }
  return out;
}

std::vector<std::string> Strategy::InstOrder() const {
  std::vector<std::string> out;
  for (const Expression& e : expressions_) {
    if (e.is_inst()) out.push_back(e.view);
  }
  return out;
}

std::string Strategy::ToString() const {
  std::string out = "< ";
  for (size_t i = 0; i < expressions_.size(); ++i) {
    if (i > 0) out += "; ";
    out += expressions_[i].ToString();
  }
  out += " >";
  return out;
}

}  // namespace wuw
