#include "core/exhaustive.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "core/strategy_space.h"

namespace wuw {

std::vector<EvaluatedStrategy> EnumerateAllViewStrategies(
    const Vdag& vdag, const std::string& view, const SizeMap& sizes,
    const WorkParams& params) {
  std::vector<EvaluatedStrategy> out;
  for (const Strategy& s : AllViewStrategies(view, vdag.sources(view))) {
    WorkBreakdown w = EstimateStrategyWork(vdag, s, sizes, params);
    out.push_back(EvaluatedStrategy{s, w.total});
  }
  return out;
}

namespace {

/// Backtracking enumerator: a prefix is extended with every expression that
/// keeps all correctness conditions satisfiable.
class VdagStrategyEnumerator {
 public:
  VdagStrategyEnumerator(const Vdag& vdag, bool one_way_only, size_t limit)
      : vdag_(vdag), one_way_only_(one_way_only), limit_(limit) {}

  std::vector<Strategy> Run() {
    // Choose a Comp partition per derived view, then interleave.
    std::vector<std::string> derived = vdag_.DerivedViewsBottomUp();
    ChoosePartitions(derived, 0);
    return std::move(results_);
  }

 private:
  void ChoosePartitions(const std::vector<std::string>& derived, size_t i) {
    if (i == derived.size()) {
      Interleave();
      return;
    }
    const std::string& view = derived[i];
    const auto& sources = vdag_.sources(view);
    std::unordered_set<std::string> seen_blocks;
    for (const OrderedPartition& partition :
         EnumerateOrderedPartitions(sources.size())) {
      if (one_way_only_) {
        bool singleton = true;
        for (const auto& block : partition) {
          if (block.size() != 1) {
            singleton = false;
            break;
          }
        }
        if (!singleton) continue;
      }
      // Record the Comp expressions this partition contributes.  Blocks of
      // one partition are unordered *as a set choice*; their relative order
      // in the strategy is decided during interleaving, so only the block
      // contents matter here — enumerating ordered partitions would
      // duplicate strategies.  Skip permuted duplicates of the same block
      // multiset.
      std::vector<std::vector<size_t>> blocks_sorted = partition;
      std::sort(blocks_sorted.begin(), blocks_sorted.end());
      if (!seen_blocks.insert(Key(blocks_sorted)).second) continue;

      std::vector<Expression> comps;
      for (const auto& block : partition) {
        std::vector<std::string> over;
        for (size_t s : block) over.push_back(sources[s]);
        comps.push_back(Expression::Comp(view, over));
      }
      comps_of_[view] = comps;
      ChoosePartitions(derived, i + 1);
      comps_of_.erase(view);
    }
  }

  static std::string Key(const std::vector<std::vector<size_t>>& blocks) {
    std::string key;
    for (const auto& b : blocks) {
      for (size_t s : b) key += std::to_string(s) + ",";
      key += "|";
    }
    return key;
  }

  void Interleave() {
    std::vector<Expression> pool;
    for (const auto& [view, comps] : comps_of_) {
      pool.insert(pool.end(), comps.begin(), comps.end());
    }
    for (const std::string& view : vdag_.view_names()) {
      pool.push_back(Expression::Inst(view));
    }
    std::sort(pool.begin(), pool.end());
    std::vector<bool> used(pool.size(), false);
    std::vector<Expression> prefix;
    Extend(pool, used, &prefix);
  }

  void Extend(const std::vector<Expression>& pool, std::vector<bool>& used,
              std::vector<Expression>* prefix) {
    if (prefix->size() == pool.size()) {
      WUW_CHECK(results_.size() < limit_,
                "strategy enumeration exceeded the requested limit");
      results_.push_back(Strategy(*prefix));
      return;
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i] || !CanPlace(pool, used, *prefix, pool[i])) continue;
      used[i] = true;
      prefix->push_back(pool[i]);
      Extend(pool, used, prefix);
      prefix->pop_back();
      used[i] = false;
    }
  }

  bool CanPlace(const std::vector<Expression>& pool,
                const std::vector<bool>& used,
                const std::vector<Expression>& prefix,
                const Expression& next) const {
    auto placed = [&](const Expression& e) {
      return std::find(prefix.begin(), prefix.end(), e) != prefix.end();
    };
    if (next.is_inst()) {
      const std::string& x = next.view;
      // C3: every pool Comp using δX must already be placed.
      // C5: every pool Comp for X must already be placed.
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool[i].is_comp()) continue;
        if ((pool[i].CompUses(x) || pool[i].view == x) && !used[i]) {
          return false;
        }
      }
      return true;
    }
    // Comp(V, B):
    // C3: no member of B is installed yet.
    for (const std::string& y : next.over) {
      if (placed(Expression::Inst(y))) return false;
    }
    // C4: for every earlier Comp of V, its views are already installed.
    for (const Expression& e : prefix) {
      if (!e.is_comp() || e.view != next.view) continue;
      for (const std::string& y : e.over) {
        if (!placed(Expression::Inst(y))) return false;
      }
    }
    // C5: Inst(V) not yet placed.
    if (placed(Expression::Inst(next.view))) return false;
    // C8: every Comp of a derived member of B is already placed.
    for (const std::string& y : next.over) {
      if (!vdag_.IsDerivedView(y)) continue;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (pool[i].is_comp() && pool[i].view == y && !used[i]) return false;
      }
    }
    return true;
  }

  const Vdag& vdag_;
  bool one_way_only_;
  size_t limit_;
  std::unordered_map<std::string, std::vector<Expression>> comps_of_;
  std::vector<Strategy> results_;
};

}  // namespace

std::vector<Strategy> EnumerateAllCorrectVdagStrategies(const Vdag& vdag,
                                                        bool one_way_only,
                                                        size_t limit) {
  return VdagStrategyEnumerator(vdag, one_way_only, limit).Run();
}

EvaluatedStrategy BestOf(const Vdag& vdag,
                         const std::vector<Strategy>& strategies,
                         const SizeMap& sizes, const WorkParams& params) {
  WUW_CHECK(!strategies.empty(), "BestOf over an empty strategy list");
  EvaluatedStrategy best;
  bool first = true;
  for (const Strategy& s : strategies) {
    double work = EstimateStrategyWork(vdag, s, sizes, params).total;
    if (first || work < best.work) {
      first = false;
      best = EvaluatedStrategy{s, work};
    }
  }
  return best;
}

}  // namespace wuw
