// Strategy transformations from the optimality proofs.
//
// The proof of Theorem 4.1 (Appendix A) rewrites any non-1-way view
// strategy into a 1-way one via the "separator" mapping:
//
//   < E_prec, Comp(W, Y), E_inst, E_succ >
//     ==>  < E_prec, Comp(W,{Y1}), Inst(Y1), Comp(W, Y-{Y1}), E'_inst,
//           E_succ >
//
// and shows each application never increases linear-metric work.  Having
// the transformation as code lets tests verify the proof's inequality
// mechanically over random strategies — and gives a constructive path
// from any correct strategy to a 1-way strategy at most as expensive.
#ifndef WUW_CORE_TRANSFORM_H_
#define WUW_CORE_TRANSFORM_H_

#include <string>

#include "core/strategy.h"
#include "graph/vdag.h"

namespace wuw {

/// Applies one "separator" step: splits the first Comp with |Y| > 1 found
/// at or after `from_index`, separating its first Y member.  Returns true
/// and fills *out if a split happened; false if the strategy is already
/// 1-way past that point.
bool ApplySeparator(const Strategy& strategy, size_t from_index,
                    Strategy* out);

/// Exhaustively applies the separator until the strategy is 1-way.  The
/// result is correct whenever the input is (Theorem A.1), and under the
/// linear metric never costs more.
Strategy SeparateToOneWay(const Strategy& strategy);

}  // namespace wuw

#endif  // WUW_CORE_TRANSFORM_H_
