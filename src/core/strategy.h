// Update strategies: sequences of Comp/Inst expressions (Section 3).
#ifndef WUW_CORE_STRATEGY_H_
#define WUW_CORE_STRATEGY_H_

#include <string>
#include <vector>

#include "core/expression.h"

namespace wuw {

/// A (view or VDAG) update strategy.  Whether it is *correct* for a given
/// VDAG is checked by CheckVdagStrategy (core/correctness.h).
class Strategy {
 public:
  Strategy() = default;
  explicit Strategy(std::vector<Expression> expressions)
      : expressions_(std::move(expressions)) {}

  void Append(Expression e) { expressions_.push_back(std::move(e)); }
  void AppendAll(const Strategy& other);

  size_t size() const { return expressions_.size(); }
  bool empty() const { return expressions_.empty(); }
  const Expression& operator[](size_t i) const { return expressions_[i]; }
  const std::vector<Expression>& expressions() const { return expressions_; }

  /// Position of `e`, or -1 if absent.
  int IndexOf(const Expression& e) const;

  bool Contains(const Expression& e) const { return IndexOf(e) >= 0; }

  /// The view strategy used by this VDAG strategy for `view` (Def 3.2):
  /// the subsequence of Comp(view, ...), Inst(view), and Inst(Vi) for Vi a
  /// source of `view`.
  Strategy UsedViewStrategy(const std::string& view,
                            const std::vector<std::string>& sources) const;

  /// Order of views by their Inst positions — the unique view ordering a
  /// 1-way VDAG strategy is strongly consistent with (Lemma 6.1).
  std::vector<std::string> InstOrder() const;

  bool operator==(const Strategy& other) const {
    return expressions_ == other.expressions_;
  }

  std::string ToString() const;

 private:
  std::vector<Expression> expressions_;
};

}  // namespace wuw

#endif  // WUW_CORE_STRATEGY_H_
