// Algorithm 4.1 — MinWorkSingle: the optimal single-view update strategy.
//
// By Theorem 4.1 only 1-way strategies need be considered, and by Theorem
// 4.2 the optimal one propagates and installs source changes in increasing
// |V'i| - |Vi| order.  O(n log n) (Theorem 4.3).
#ifndef WUW_CORE_MIN_WORK_SINGLE_H_
#define WUW_CORE_MIN_WORK_SINGLE_H_

#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

/// Orders `views` by increasing net change |V'| - |V| (the "desired view
/// ordering" of Section 4/5).  Ties break by the views' given order, making
/// results deterministic.
std::vector<std::string> DesiredViewOrdering(std::vector<std::string> views,
                                             const SizeMap& sizes);

/// MinWorkSingle (Algorithm 4.1): the optimal view strategy for `view`
/// under the linear work metric, given the batch's size statistics.
Strategy MinWorkSingle(const Vdag& vdag, const std::string& view,
                       const SizeMap& sizes);

}  // namespace wuw

#endif  // WUW_CORE_MIN_WORK_SINGLE_H_
