// The space of update strategies for a single view (Section 3.1).
//
// A view strategy is determined by an ordered set partition of the view's
// sources: each block becomes one Comp over the block's deltas, followed by
// the block members' Inst expressions; Inst(V) closes the strategy.
// Singleton blocks give 1-way strategies, the single full block gives the
// dual-stage strategy, and the count of ordered set partitions is the
// paper's Equation (5) (the Fubini numbers of Table 1).
#ifndef WUW_CORE_STRATEGY_SPACE_H_
#define WUW_CORE_STRATEGY_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "graph/vdag.h"

namespace wuw {

/// An ordered set partition: blocks in processing order, each a set of
/// element indices.
using OrderedPartition = std::vector<std::vector<size_t>>;

/// All ordered set partitions of {0..n-1}, deterministic order.
std::vector<OrderedPartition> EnumerateOrderedPartitions(size_t n);

/// Equation (5): the number of view strategies (with distinct work) for a
/// view over n views.  Matches Table 1: 1, 3, 13, 75, 541, 4683, ...
uint64_t CountViewStrategies(size_t n);

/// Same count via the recurrence a(n) = Σ_{k=1..n} C(n,k)·a(n-k); used to
/// cross-check the closed form.
uint64_t CountViewStrategiesRecurrence(size_t n);

/// Builds the canonical view strategy for one ordered partition of the
/// sources: for each block B in order, Comp(view, B) then Inst of each
/// member; finally Inst(view).
Strategy MakeViewStrategy(const std::string& view,
                          const std::vector<std::string>& sources,
                          const OrderedPartition& partition);

/// The 1-way view strategy propagating source changes in `ordered_sources`
/// order (view strategy (3)/(4) of Section 3.1).
Strategy MakeOneWayViewStrategy(const std::string& view,
                                const std::vector<std::string>& ordered_sources);

/// The dual-stage view strategy (view strategy (2); CGL+96): one Comp over
/// all sources, then all installs.
Strategy MakeDualStageViewStrategy(const std::string& view,
                                   const std::vector<std::string>& sources);

/// One representative strategy per ordered partition — the full space of
/// distinct-work view strategies (Experiment 1 enumerates these for Q3).
std::vector<Strategy> AllViewStrategies(const std::string& view,
                                        const std::vector<std::string>& sources);

/// The dual-stage VDAG strategy used as the conventional baseline in
/// Experiment 4: every derived view uses its dual-stage view strategy,
/// Comps ordered bottom-up (satisfying C8), all installs at the end.
Strategy MakeDualStageVdagStrategy(const Vdag& vdag);

}  // namespace wuw

#endif  // WUW_CORE_STRATEGY_SPACE_H_
