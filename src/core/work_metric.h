// The linear work metric (Definition 3.5) and analytic strategy-work
// evaluation.
//
// Work(Inst(V))    = i * |δV|
// Work(Comp(V,Y))  = c * Σ_terms Σ_operands |operand|, where each of the
//                    2^|Y|-1 terms reads the delta/extent mix of Y it
//                    selects plus the current extents of all other sources
//                    of Def(V).
//
// "Current" is what makes strategies differ: Inst expressions executed
// earlier in the strategy change the extents later Comps read.  The
// evaluator below replays that evolution symbolically from a SizeMap.
#ifndef WUW_CORE_WORK_METRIC_H_
#define WUW_CORE_WORK_METRIC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/strategy.h"
#include "graph/vdag.h"

namespace wuw {

/// Proportionality constants c (compute) and i (install) of Def 3.5.
struct WorkParams {
  double comp_per_row = 1.0;
  double inst_per_row = 1.0;
};

/// Size statistics for one view, as of the start of the update window.
struct ViewSizes {
  /// |V|: current extent cardinality.
  int64_t size = 0;
  /// |δV|: plus tuples + minus tuples of the batch's delta.
  int64_t delta_abs = 0;
  /// |V'| - |V|: net cardinality change once δV installs.
  int64_t delta_net = 0;
};

/// Per-view size statistics; the single input the paper's algorithms read.
class SizeMap {
 public:
  void Set(const std::string& view, ViewSizes sizes) { map_[view] = sizes; }
  const ViewSizes& Get(const std::string& view) const;
  bool Has(const std::string& view) const { return map_.count(view) > 0; }

  /// |V'| - |V| of `view` — the sort key of the desired view ordering
  /// (Theorem 4.2).
  int64_t NetChange(const std::string& view) const {
    return Get(view).delta_net;
  }

  std::string ToString() const;

 private:
  std::unordered_map<std::string, ViewSizes> map_;
};

/// Work attributed to one expression of a strategy.
struct ExpressionWork {
  Expression expression;
  double work = 0;
};

/// Total and per-expression work of a strategy under a metric.
struct WorkBreakdown {
  double total = 0;
  std::vector<ExpressionWork> per_expression;
};

/// Evaluates Work(strategy) under the linear metric, replaying install
/// effects on extent sizes.  The strategy should be correct; the evaluator
/// itself only requires that referenced views exist.
WorkBreakdown EstimateStrategyWork(const Vdag& vdag, const Strategy& strategy,
                                   const SizeMap& sizes,
                                   const WorkParams& params);

/// One promoted auxiliary view as the cost model sees it: scanning
/// `aux_view` can replace the leading `prefix_len` source operands of any
/// maintenance term of `view` whose prefix operands all read
/// un-reinstalled extents (the runtime substitution rule lives in
/// plan/aux_view.h; this struct mirrors it analytically).
struct AuxCostAlternative {
  /// The parent derived view whose terms may substitute.
  std::string view;
  /// The hidden materialized prefix ("__aux_<n>").
  std::string aux_view;
  /// How many leading sources of Def(view) the materialization covers.
  size_t prefix_len = 0;
  /// sources(view)[0 .. prefix_len): recorded for defensive matching.
  std::vector<std::string> prefix_sources;
};

/// The advisor's promoted-view catalog in optimizer form
/// (AuxViewRegistry::BuildCostInfo).
struct AuxCostInfo {
  std::vector<AuxCostAlternative> alternatives;
  bool empty() const { return alternatives.empty(); }
};

/// Aux-aware overload: a term whose leading operands are covered by a
/// promoted auxiliary view is charged |aux| plus its suffix operands —
/// matching what EvalComp executes under the substitution.  A substitution
/// is only available while neither the aux view nor any covered prefix
/// source has been Inst'ed earlier in the strategy (an earlier install
/// desynchronizes the materialization from the extents for the rest of the
/// window), which is exactly why aux-aware costing changes strategy
/// *choice*: orderings that delay prefix-source installs keep the cheap
/// alternative alive for more Comps.  `aux == nullptr` or empty reproduces
/// the 4-argument overload bit for bit.
WorkBreakdown EstimateStrategyWork(const Vdag& vdag, const Strategy& strategy,
                                   const SizeMap& sizes,
                                   const WorkParams& params,
                                   const AuxCostInfo* aux);

/// The Section-7 "Discussion" variant metric that charges each distinct
/// operand once per Comp instead of once per term.  Under this (flawed)
/// metric the dual-stage strategy looks best; the ablation bench
/// demonstrates why the term-aware metric is the right one.
WorkBreakdown EstimateStrategyWorkOperandsOnce(const Vdag& vdag,
                                               const Strategy& strategy,
                                               const SizeMap& sizes,
                                               const WorkParams& params);

}  // namespace wuw

#endif  // WUW_CORE_WORK_METRIC_H_
