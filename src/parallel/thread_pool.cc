#include "parallel/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "exec/window_budget.h"
#include "obs/metrics.h"

namespace wuw {

/// One fork-join region.  Lives on the caller's stack: RunRegion does not
/// return until every submitted runner finished, so the pointer the tasks
/// capture stays valid.
struct ThreadPool::Region {
  /// Next unclaimed chunk index — the work-stealing cursor.
  std::atomic<size_t> next{0};
  /// Flipped by the first chunk that throws; drains the other runners.
  std::atomic<bool> stop{false};
  /// Submitted runner tasks not yet finished.
  std::atomic<int> pending{0};
  size_t chunks = 0;
  const std::function<void(size_t)>* chunk_body = nullptr;
  /// Optional cancellation token, checked before each chunk claim.  A
  /// throw lands in the catch below like any chunk failure: siblings see
  /// `stop`, in-flight chunks finish, and the error resurfaces at the
  /// region barrier — which is exactly "in-flight morsels drain cleanly".
  const CancelToken* cancel = nullptr;
  std::mutex error_mu;
  std::exception_ptr error;

  /// Claims chunks until the cursor runs dry (or a sibling failed).
  void Drain() {
    while (!stop.load(std::memory_order_relaxed)) {
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      try {
        if (cancel != nullptr) cancel->Check();
        (*chunk_body)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (error == nullptr) error = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
    }
  }
};

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(std::max(1, parallelism)) {
  threads_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int t = 0; t < parallelism_ - 1; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(EnvParallelism());  // leaked
  return *pool;
}

int ThreadPool::EnvParallelism() {
  if (const char* env = std::getenv("WUW_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return std::min(v, 512);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.parallel_regions = parallel_regions_.load(std::memory_order_relaxed);
  s.inline_regions = inline_regions_.load(std::memory_order_relaxed);
  s.pool_tasks = pool_tasks_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::RunRegion(Region* region, int max_workers) {
  size_t cap = static_cast<size_t>(parallelism_);
  if (max_workers > 0) cap = std::min(cap, static_cast<size_t>(max_workers));
  size_t runners = std::min(region->chunks, cap);

  if (runners <= 1) {
    inline_regions_.fetch_add(1, std::memory_order_relaxed);
    WUW_METRIC_ADD("pool.inline_regions", obs::MetricClass::kSched, 1);
    region->Drain();
  } else {
    parallel_regions_.fetch_add(1, std::memory_order_relaxed);
    WUW_METRIC_ADD("pool.parallel_regions", obs::MetricClass::kSched, 1);
    WUW_METRIC_ADD("pool.fanned_out_tasks", obs::MetricClass::kSched,
                   static_cast<int64_t>(runners) - 1);
    region->pending.store(static_cast<int>(runners) - 1,
                          std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t r = 1; r < runners; ++r) {
        queue_.emplace_back([this, region] {
          region->Drain();
          pool_tasks_.fetch_add(1, std::memory_order_relaxed);
          region->pending.fetch_sub(1, std::memory_order_acq_rel);
          // Empty critical section before notify: a waiter that read a
          // stale pending is guaranteed to be inside cv_.wait by now.
          { std::lock_guard<std::mutex> relock(mu_); }
          cv_.notify_all();
        });
      }
    }
    cv_.notify_all();

    region->Drain();

    // Helping wait: run other queued tasks (possibly from regions nested
    // inside this one) instead of blocking a pool slot.
    std::unique_lock<std::mutex> lock(mu_);
    while (region->pending.load(std::memory_order_acquire) > 0) {
      if (!queue_.empty()) {
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        task();
        lock.lock();
      } else {
        cv_.wait(lock);
      }
    }
  }

  if (region->error != nullptr) std::rethrow_exception(region->error);
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body,
                             const CancelToken* cancel) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::function<void(size_t)> chunk_body = [n, grain, &body](size_t c) {
    size_t begin = c * grain;
    body(begin, std::min(n, begin + grain));
  };
  Region region;
  region.chunks = (n + grain - 1) / grain;
  region.chunk_body = &chunk_body;
  region.cancel = cancel;
  RunRegion(&region, /*max_workers=*/0);
}

void ThreadPool::ParallelTasks(size_t count, int max_workers,
                               const std::function<void(size_t)>& body,
                               const CancelToken* cancel) {
  if (count == 0) return;
  Region region;
  region.chunks = count;
  region.chunk_body = &body;
  region.cancel = cancel;
  RunRegion(&region, max_workers);
}

}  // namespace wuw
