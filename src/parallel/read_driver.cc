#include "parallel/read_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "common/check.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "query/ad_hoc.h"

namespace wuw {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared mutable tallies for one workload run; every field is commutative
/// so totals are scheduling-independent.
struct SessionTallies {
  std::atomic<int64_t> sessions{0};
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> rows_read{0};
  std::atomic<int64_t> torn_reads{0};
  std::atomic<int64_t> epoch_regressions{0};
  std::atomic<int64_t> query_errors{0};
  std::atomic<int64_t> min_seq{INT64_MAX};
  std::atomic<int64_t> max_seq{INT64_MIN};

  void NoteSeq(int64_t seq) {
    int64_t cur = min_seq.load(std::memory_order_relaxed);
    while (seq < cur &&
           !min_seq.compare_exchange_weak(cur, seq,
                                          std::memory_order_relaxed)) {
    }
    cur = max_seq.load(std::memory_order_relaxed);
    while (seq > cur &&
           !max_seq.compare_exchange_weak(cur, seq,
                                          std::memory_order_relaxed)) {
    }
  }
};

/// One reader session: pin a snapshot, prove it holds still under repeated
/// scans, answer this session's queries from it, and verify a re-opened
/// snapshot never went backwards in commit time.
void RunOneSession(const Warehouse& warehouse,
                   const ReadSessionOptions& options, size_t session_index,
                   SessionTallies* tallies) {
  obs::ServeScope serve;  // reader work must not touch kWork/kEngine
  WUW_METRIC_ADD("serve.sessions", obs::MetricClass::kServe, 1);
  ReadSnapshot snapshot = warehouse.OpenSnapshot();
  tallies->NoteSeq(snapshot.commit_seq());

  const uint64_t first =
      SnapshotFingerprint(snapshot, options.fingerprint_rows);
  for (int scan = 1; scan < options.scans_per_session; ++scan) {
    if (SnapshotFingerprint(snapshot, options.fingerprint_rows) != first) {
      tallies->torn_reads.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!options.queries.empty()) {
    const std::string& sql =
        options.queries[session_index % options.queries.size()];
    QueryResult result = ExecuteQuery(snapshot, sql);
    tallies->queries.fetch_add(1, std::memory_order_relaxed);
    WUW_METRIC_ADD("serve.queries", obs::MetricClass::kServe, 1);
    if (!result.ok()) {
      tallies->query_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      int64_t rows = static_cast<int64_t>(result.rows.rows.size());
      tallies->rows_read.fetch_add(rows, std::memory_order_relaxed);
      WUW_METRIC_ADD("serve.rows_read", obs::MetricClass::kServe, rows);
    }
    // The pinned snapshot must be unmoved by everything the query did.
    if (SnapshotFingerprint(snapshot, options.fingerprint_rows) != first) {
      tallies->torn_reads.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // A fresh handle may see a newer commit, never an older one.
  ReadSnapshot reopened = warehouse.OpenSnapshot();
  if (reopened.commit_seq() < snapshot.commit_seq()) {
    tallies->epoch_regressions.fetch_add(1, std::memory_order_relaxed);
  }
  tallies->sessions.fetch_add(1, std::memory_order_relaxed);
}

ReadSessionReport RunReadSessionsImpl(const Warehouse& warehouse,
                                      const ReadSessionOptions& options,
                                      const std::atomic<bool>* stop) {
  WUW_CHECK(options.sessions >= 0, "negative session count");
  WUW_CHECK(options.scans_per_session >= 1, "need at least one scan");
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : &ThreadPool::Global();
  SessionTallies tallies;
  double start = Now();
  pool->ParallelTasks(
      static_cast<size_t>(options.sessions), /*max_workers=*/0,
      [&](size_t i) {
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
        RunOneSession(warehouse, options, i, &tallies);
      });
  ReadSessionReport report;
  report.sessions = tallies.sessions.load();
  report.queries = tallies.queries.load();
  report.rows_read = tallies.rows_read.load();
  report.torn_reads = tallies.torn_reads.load();
  report.epoch_regressions = tallies.epoch_regressions.load();
  report.query_errors = tallies.query_errors.load();
  int64_t min_seq = tallies.min_seq.load();
  int64_t max_seq = tallies.max_seq.load();
  report.min_commit_seq = min_seq == INT64_MAX ? 0 : min_seq;
  report.max_commit_seq = max_seq == INT64_MIN ? 0 : max_seq;
  report.seconds = Now() - start;
  return report;
}

}  // namespace

ReadSessionReport& ReadSessionReport::operator+=(
    const ReadSessionReport& other) {
  // An empty report (no sessions) is the identity; otherwise widen the
  // commit-seq range.
  if (other.sessions == 0 && other.queries == 0) {
    seconds += other.seconds;
    return *this;
  }
  if (sessions == 0 && queries == 0) {
    double kept = seconds;
    *this = other;
    seconds += kept;
    return *this;
  }
  sessions += other.sessions;
  queries += other.queries;
  rows_read += other.rows_read;
  torn_reads += other.torn_reads;
  epoch_regressions += other.epoch_regressions;
  query_errors += other.query_errors;
  min_commit_seq = std::min(min_commit_seq, other.min_commit_seq);
  max_commit_seq = std::max(max_commit_seq, other.max_commit_seq);
  seconds += other.seconds;
  return *this;
}

ReadSessionReport RunReadSessions(const Warehouse& warehouse,
                                  const ReadSessionOptions& options) {
  return RunReadSessionsImpl(warehouse, options, /*stop=*/nullptr);
}

uint64_t SnapshotFingerprint(const ReadSnapshot& snapshot,
                             size_t max_rows_per_table) {
  // FNV-1a over per-table digests; order-sensitive within the dense-row
  // prefix, which is exactly what "the pinned rows did not move" needs.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const std::string& name : snapshot.table_names()) {
    const Table* table = snapshot.table(name);
    mix(std::hash<std::string>{}(name));
    mix(static_cast<uint64_t>(table->cardinality()));
    mix(static_cast<uint64_t>(table->distinct_size()));
    const auto& rows = table->dense_rows();
    const size_t n = std::min(rows.size(), max_rows_per_table);
    for (size_t i = 0; i < n; ++i) {
      mix(rows[i].first.Hash());
      mix(static_cast<uint64_t>(rows[i].second));
    }
  }
  return h;
}

struct ReadDriver::Impl {
  std::thread thread;
  std::atomic<bool> stop{false};
  ReadSessionReport report;  // written by thread, read after join
};

ReadDriver::ReadDriver() = default;

ReadDriver::~ReadDriver() {
  if (running()) Stop();
}

void ReadDriver::Start(const Warehouse& warehouse,
                       ReadSessionOptions options) {
  WUW_CHECK(impl_ == nullptr, "ReadDriver already started");
  impl_ = std::make_unique<Impl>();
  Impl* impl = impl_.get();
  impl->thread = std::thread([&warehouse, options, impl] {
    // The first batch ignores the stop flag so a Start/Stop pair always
    // measures at least one complete session batch, however short the
    // maintenance window between them.
    impl->report += RunReadSessionsImpl(warehouse, options, /*stop=*/nullptr);
    while (!impl->stop.load(std::memory_order_relaxed)) {
      impl->report +=
          RunReadSessionsImpl(warehouse, options, &impl->stop);
    }
  });
}

ReadSessionReport ReadDriver::Stop() {
  WUW_CHECK(impl_ != nullptr, "ReadDriver not started");
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->thread.join();
  ReadSessionReport report = impl_->report;
  impl_.reset();
  return report;
}

bool ReadDriver::running() const { return impl_ != nullptr; }

namespace {

/// Depth guard: only the outermost strategy run spawns probes (OracleSizes
/// runs a nested Execute on a clone; probing it would probe recursively).
thread_local int g_probe_depth = 0;

}  // namespace

struct ReaderProbeScope::Impl {
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> violations{0};
  std::atomic<int64_t> probes{0};
};

ReaderProbeScope::ReaderProbeScope(const Warehouse* warehouse) {
  const int readers = EnvReaders();
  if (readers <= 0 || warehouse == nullptr ||
      !warehouse->snapshot_reads_armed() || g_probe_depth > 0) {
    ++g_probe_depth;
    return;
  }
  ++g_probe_depth;
  impl_ = std::make_unique<Impl>();
  Impl* impl = impl_.get();
  impl->threads.reserve(static_cast<size_t>(readers));
  for (int i = 0; i < readers; ++i) {
    impl->threads.emplace_back([warehouse, impl] {
      obs::ServeScope serve;
      int64_t last_seq = -1;
      while (!impl->stop.load(std::memory_order_relaxed)) {
        ReadSnapshot snapshot = warehouse->OpenSnapshot();
        if (snapshot.commit_seq() < last_seq) {
          impl->violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_seq = snapshot.commit_seq();
        const uint64_t a = SnapshotFingerprint(snapshot, /*max rows=*/64);
        const uint64_t b = SnapshotFingerprint(snapshot, /*max rows=*/64);
        if (a != b) {
          impl->violations.fetch_add(1, std::memory_order_relaxed);
        }
        impl->probes.fetch_add(1, std::memory_order_relaxed);
        // Keep probes continuous but cheap — the strategy under test owns
        // the machine; probes only need to overlap every install window.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
}

ReaderProbeScope::~ReaderProbeScope() {
  --g_probe_depth;
  if (impl_ == nullptr) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : impl_->threads) t.join();
  WUW_METRIC_ADD("serve.probe_snapshots", obs::MetricClass::kServe,
                 impl_->probes.load());
  WUW_CHECK(impl_->violations.load() == 0,
            "reader probe observed a torn or time-travelling snapshot");
}

}  // namespace wuw
