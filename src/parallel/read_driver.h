// Multi-session synthetic read workload — the serving side of
// zero-downtime reads (storage/read_snapshot.h).
//
// Three entry points, all built on snapshot handles and the shared
// work-stealing pool:
//
//   RunReadSessions   — runs N reader sessions to completion on the pool
//                       (each opens a snapshot, checks read stability,
//                       optionally executes ad-hoc SQL) and reports
//                       violations.  The bench/throughput primitive.
//   ReadDriver        — runs RunReadSessions batches on a background
//                       thread until Stop(), so tests race thousands of
//                       readers against a live MaintenancePolicy.
//   ReaderProbeScope  — the WUW_READERS tier-1 hook: both executors wrap
//                       strategy runs in one, attaching EnvReaders() probe
//                       threads that continuously verify snapshot
//                       stability while the strategy installs deltas.
//                       Unset knob = no threads, no work, no allocation.
//
// Every session body runs under obs::ServeScope, so reader-side work never
// perturbs the deterministic kWork|kEngine counter snapshot; reader
// telemetry lands in the kServe class (serve.*).
#ifndef WUW_PARALLEL_READ_DRIVER_H_
#define WUW_PARALLEL_READ_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/warehouse.h"
#include "storage/read_snapshot.h"

namespace wuw {

class ThreadPool;

/// Shape of one synthetic read workload.
struct ReadSessionOptions {
  /// Reader sessions to run (each is one pool task; thousands are fine —
  /// the pool caps concurrency at its parallelism).
  int sessions = 256;
  /// Ad-hoc SELECTs cycled across sessions; empty = fingerprint scans only.
  std::vector<std::string> queries;
  /// Stability probes per session: the pinned snapshot is fingerprinted
  /// this many times and every repeat must match the first (>= 2 to detect
  /// torn reads).
  int scans_per_session = 2;
  /// Rows per table folded into each fingerprint (caps session cost).
  size_t fingerprint_rows = 256;
  /// Pool to schedule on; null = ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

/// Outcome of a read workload.  ok() is the invariant the concurrency
/// battery asserts: no torn read, no time travel, no failed query.
struct ReadSessionReport {
  int64_t sessions = 0;
  int64_t queries = 0;
  int64_t rows_read = 0;
  /// Fingerprint changed between two scans of one pinned snapshot.
  int64_t torn_reads = 0;
  /// A later-opened snapshot carried a smaller commit_seq (readers must
  /// never travel backwards in time).
  int64_t epoch_regressions = 0;
  int64_t query_errors = 0;
  /// Commit-seq range observed across all sessions.
  int64_t min_commit_seq = 0;
  int64_t max_commit_seq = 0;
  double seconds = 0;

  bool ok() const {
    return torn_reads == 0 && epoch_regressions == 0 && query_errors == 0;
  }
  ReadSessionReport& operator+=(const ReadSessionReport& other);
};

/// Runs `options.sessions` reader sessions to completion on the pool and
/// returns the aggregate report.  Safe concurrent with maintenance when
/// the warehouse has snapshot reads armed; on a disarmed warehouse it is
/// the quiesced baseline (live catalog, no maintenance may run).
ReadSessionReport RunReadSessions(const Warehouse& warehouse,
                                  const ReadSessionOptions& options);

/// Order-insensitive digest of a snapshot's visible contents (first
/// `max_rows_per_table` rows per table + cardinalities).  Two fingerprints
/// of one pinned snapshot must always match — the torn-read detector.
uint64_t SnapshotFingerprint(const ReadSnapshot& snapshot,
                             size_t max_rows_per_table);

/// Runs read-session batches on a background thread until Stop(), for
/// racing readers against a live maintenance loop.  The warehouse must
/// outlive the driver and have snapshot reads armed.
class ReadDriver {
 public:
  ReadDriver();
  ~ReadDriver();  // stops and joins if still running
  ReadDriver(const ReadDriver&) = delete;
  ReadDriver& operator=(const ReadDriver&) = delete;

  void Start(const Warehouse& warehouse, ReadSessionOptions options);
  /// Stops, joins, and returns the accumulated report.  The report always
  /// covers at least one complete session batch: the first batch ignores
  /// the stop flag, so even an immediate Stop() measures real sessions.
  ReadSessionReport Stop();
  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII probe attached by both executors around every strategy run: when
/// WUW_READERS=N is set (and the warehouse is armed), N plain threads loop
/// {open snapshot, fingerprint twice, compare, check commit_seq monotone}
/// until the run finishes; the destructor joins them and aborts on any
/// violation.  Disarmed (unset knob, nested run, disarmed warehouse) the
/// scope is empty — one integer compare, no threads.
class ReaderProbeScope {
 public:
  explicit ReaderProbeScope(const Warehouse* warehouse);
  ~ReaderProbeScope();
  ReaderProbeScope(const ReaderProbeScope&) = delete;
  ReaderProbeScope& operator=(const ReaderProbeScope&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wuw

#endif  // WUW_PARALLEL_READ_DRIVER_H_
