// Shared work-stealing thread pool: the single source of threads for both
// parallelism levels the executors expose.
//
// Stage-level parallelism (exec/parallel_executor.h), term-level
// parallelism (CompEvalOptions::term_workers), and the morsel-driven
// operator kernels (algebra/) all schedule onto one pool instead of each
// spawning their own threads, so nesting them cannot oversubscribe the
// machine.  The pool is sized by the WUW_THREADS env knob (default:
// hardware_concurrency).
//
// Scheduling model: a parallel "region" (ParallelFor / ParallelTasks)
// splits its iteration space into chunks claimed from a shared atomic
// cursor — idle workers steal the next unclaimed chunk, which is what
// load-balances skewed morsels.  The calling thread always participates
// inline, and while waiting for its region it helps execute other queued
// regions, so nested regions (a stage worker running a Comp whose join
// kernels fan out morsels) can never deadlock on pool capacity.
//
// Determinism contract: the pool schedules WHERE work runs, never WHAT it
// computes.  Every kernel built on top buffers per-chunk output and merges
// it in chunk order, so results are byte-identical at every pool size
// including 1 (see the threading-model section of DESIGN.md).
#ifndef WUW_PARALLEL_THREAD_POOL_H_
#define WUW_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wuw {

class CancelToken;

/// Cumulative scheduling counters (process lifetime for Global()).
struct ThreadPoolStats {
  /// Regions that fanned out to pool workers.
  int64_t parallel_regions = 0;
  /// Regions run entirely on the calling thread (pool size 1, or fewer
  /// chunks than it takes to be worth fanning out).
  int64_t inline_regions = 0;
  /// Worker-loop tasks executed off the calling thread (pool workers plus
  /// helping waiters).
  int64_t pool_tasks = 0;
};

class ThreadPool {
 public:
  /// Spawns `parallelism - 1` background workers (the caller of every
  /// region is the remaining worker).  parallelism <= 1 spawns nothing and
  /// every region runs inline on the calling thread — bit-for-bit the
  /// sequential execution.
  explicit ThreadPool(int parallelism);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int parallelism() const { return parallelism_; }

  /// The process-wide pool, sized by EnvParallelism() on first use and
  /// never destroyed (safe at any exit order).
  static ThreadPool& Global();

  /// WUW_THREADS when set to a positive integer, else
  /// hardware_concurrency() (minimum 1).
  static int EnvParallelism();

  /// Runs body(begin, end) over [0, n) in chunks of `grain`, claimed by up
  /// to parallelism() workers (caller included).  Blocks until every chunk
  /// ran.  The first exception thrown by any chunk stops the remaining
  /// unclaimed chunks and is rethrown here.  A non-null `cancel` token is
  /// checked before each chunk claim (one relaxed load while disarmed —
  /// see exec/window_budget.h); a fired token cancels the region through
  /// the same first-exception path, so in-flight chunks drain cleanly
  /// before WindowCancelledError is rethrown at the barrier.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body,
                   const CancelToken* cancel = nullptr);

  /// Runs body(i) for i in [0, count) on at most `max_workers` workers
  /// (0 = no extra cap beyond parallelism()).  Same blocking / exception /
  /// cancellation contract as ParallelFor.
  void ParallelTasks(size_t count, int max_workers,
                     const std::function<void(size_t)>& body,
                     const CancelToken* cancel = nullptr);

  ThreadPoolStats stats() const;

 private:
  struct Region;

  /// Shared implementation: submits runner tasks, participates inline,
  /// helps on other queued tasks while waiting, rethrows the region's
  /// first exception.
  void RunRegion(Region* region, int max_workers);
  void WorkerLoop();

  int parallelism_;
  mutable std::mutex mu_;
  /// Signalled on task submission AND task completion: workers wait for
  /// the former, region callers for either (completion ends their wait,
  /// submission gives them something to help with).
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> parallel_regions_{0};
  std::atomic<int64_t> inline_regions_{0};
  std::atomic<int64_t> pool_tasks_{0};
};

/// Rows per claimed chunk in the morsel-driven kernel loops: small enough
/// to steal-balance skew, large enough that the claim (one fetch_add) is
/// noise.
inline constexpr size_t kMorselRows = 2048;

/// Inputs below this many rows take the sequential kernel path even on a
/// wide pool — fan-out overhead beats the win on tiny inputs, and the
/// sequential path is the reference implementation.
inline constexpr size_t kMinParallelRows = 8192;

/// The kernels' gate for taking their morsel path.
inline bool ShouldParallelize(const ThreadPool* pool, size_t rows) {
  return pool != nullptr && pool->parallelism() > 1 && rows >= kMinParallelRows;
}

}  // namespace wuw

#endif  // WUW_PARALLEL_THREAD_POOL_H_
