#include "parallel/flatten.h"

#include <unordered_map>

#include "common/check.h"

namespace wuw {

namespace {

using ReplacementMap =
    std::unordered_map<std::string, ScalarExpr::Ptr>;

/// Rewrites column references through `repl` (identity for unknown names).
ScalarExpr::Ptr Substitute(const ScalarExpr::Ptr& e,
                           const ReplacementMap& repl) {
  switch (e->kind()) {
    case ExprKind::kColumn: {
      auto it = repl.find(e->column_name());
      return it == repl.end() ? e : it->second;
    }
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kArith:
      return ScalarExpr::Arith(e->arith_op(), Substitute(e->lhs(), repl),
                               Substitute(e->rhs(), repl));
    case ExprKind::kCompare:
      return ScalarExpr::Compare(e->compare_op(), Substitute(e->lhs(), repl),
                                 Substitute(e->rhs(), repl));
    case ExprKind::kLogical:
      return ScalarExpr::Logical(e->logical_op(), Substitute(e->lhs(), repl),
                                 Substitute(e->rhs(), repl));
    case ExprKind::kNot:
      return ScalarExpr::Not(Substitute(e->lhs(), repl));
  }
  return e;
}

/// Name a replacement resolves to if it is a plain column; empty otherwise.
std::string AsPlainColumn(const ReplacementMap& repl,
                          const std::string& name) {
  auto it = repl.find(name);
  if (it == repl.end()) return name;
  if (it->second->kind() == ExprKind::kColumn) {
    return it->second->column_name();
  }
  return "";
}

}  // namespace

std::shared_ptr<const ViewDefinition> FlattenDefinition(
    const Vdag& vdag, const std::string& view) {
  const auto original = vdag.definition(view);

  // Which sources can be inlined?
  bool any = false;
  for (const std::string& src : original->sources()) {
    if (vdag.IsDerivedView(src) && !vdag.definition(src)->is_aggregate()) {
      any = true;
    }
  }
  if (!any) return original;

  std::vector<std::string> sources;
  std::vector<JoinCondition> joins;
  std::vector<ScalarExpr::Ptr> filters;
  ReplacementMap repl;

  for (const std::string& src : original->sources()) {
    if (!vdag.IsDerivedView(src) || vdag.definition(src)->is_aggregate()) {
      sources.push_back(src);
      continue;
    }
    // Recursively flattened child definition.
    auto child = FlattenDefinition(vdag, src);
    for (const std::string& cs : child->sources()) {
      // Duplicate base usage would create column collisions; bail out to
      // the unflattened definition.
      for (const std::string& existing : sources) {
        if (existing == cs) return original;
      }
      sources.push_back(cs);
    }
    joins.insert(joins.end(), child->joins().begin(), child->joins().end());
    filters.insert(filters.end(), child->filters().begin(),
                   child->filters().end());
    for (const ProjectItem& item : child->projections()) {
      repl[item.name] = item.expr;
    }
  }

  // Parent join conditions must land on plain columns after substitution.
  for (const JoinCondition& jc : original->joins()) {
    std::string l = AsPlainColumn(repl, jc.left_column);
    std::string r = AsPlainColumn(repl, jc.right_column);
    if (l.empty() || r.empty()) return original;
    joins.push_back(JoinCondition{l, r});
  }
  for (const ScalarExpr::Ptr& f : original->filters()) {
    filters.push_back(Substitute(f, repl));
  }

  ViewDefinitionBuilder builder(original->name());
  for (const std::string& src : sources) builder.From(src);
  for (const JoinCondition& jc : joins) {
    builder.JoinOn(jc.left_column, jc.right_column);
  }
  for (const ScalarExpr::Ptr& f : filters) builder.Where(f);
  for (const ProjectItem& item : original->projections()) {
    builder.Select(Substitute(item.expr, repl), item.name);
  }
  for (const AggSpec& agg : original->aggregates()) {
    if (agg.fn == AggFn::kCount) {
      builder.Count(agg.name);
    } else {
      builder.Sum(Substitute(agg.arg, repl), agg.name);
    }
  }
  return builder.Build();
}

Vdag FlattenVdag(const Vdag& vdag) {
  Vdag out;
  for (const std::string& name : vdag.view_names()) {
    if (vdag.IsBaseView(name)) {
      out.AddBaseView(name, vdag.OutputSchema(name));
    } else {
      out.AddDerivedView(FlattenDefinition(vdag, name));
    }
  }
  return out;
}

}  // namespace wuw
