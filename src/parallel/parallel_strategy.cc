#include "parallel/parallel_strategy.h"

#include <algorithm>

#include "common/check.h"
#include "plan/aux_view.h"

namespace wuw {

size_t ParallelStrategy::num_expressions() const {
  size_t n = 0;
  for (const auto& stage : stages) n += stage.size();
  return n;
}

Strategy ParallelStrategy::Linearize() const {
  Strategy out;
  for (const auto& stage : stages) {
    for (const Expression& e : stage) out.Append(e);
  }
  return out;
}

std::string ParallelStrategy::ToString() const {
  std::string out;
  for (size_t i = 0; i < stages.size(); ++i) {
    out += "stage " + std::to_string(i) + ": { ";
    for (size_t j = 0; j < stages[i].size(); ++j) {
      if (j > 0) out += "; ";
      out += stages[i][j].ToString();
    }
    out += " }\n";
  }
  return out;
}

namespace {

/// True if `a` (earlier in the sequential strategy) and `b` (later) must
/// stay ordered: one writes state the other touches.
bool Conflicts(const Vdag& vdag, const Expression& a, const Expression& b) {
  auto reads_extent = [&](const Expression& e, const std::string& view) {
    if (!e.is_comp()) return false;  // Inst reads only its own delta
    const auto& sources = vdag.sources(e.view);
    if (std::find(sources.begin(), sources.end(), view) == sources.end()) {
      return false;
    }
    // Extents of Y views are only read by the mixed terms of multi-view
    // Comps; a 1-way Comp reads just the delta of its single Y view.
    bool in_y = e.CompUses(view);
    return !in_y || e.over.size() >= 2;
  };
  auto reads_delta = [&](const Expression& e, const std::string& view) {
    return (e.is_comp() && e.CompUses(view)) ||
           (e.is_inst() && e.view == view);
  };

  // A hidden aux extent may be scanned by ANY Comp whose term prefix its
  // binding covers — a read invisible to the source lists above, so every
  // aux Inst orders conservatively against every Comp (either direction).
  if (a.is_inst() && b.is_comp() && IsAuxViewName(a.view)) return true;
  if (b.is_inst() && a.is_comp() && IsAuxViewName(b.view)) return true;

  // Inst(X) writes extent X; Comp(V, ...) writes delta V.
  if (a.is_inst()) {
    if (b.is_inst()) return false;  // distinct views, no shared state
    return reads_extent(b, a.view);
  }
  if (b.is_inst()) {
    return reads_extent(a, b.view) || reads_delta(b, a.view);
  }
  // Both Comp: ordered iff one consumes the other's delta (C8-style).
  return reads_delta(b, a.view) || reads_delta(a, b.view);
}

}  // namespace

ParallelStrategy ParallelizeStrategy(const Vdag& vdag,
                                     const Strategy& sequential) {
  const auto& exprs = sequential.expressions();
  const size_t n = exprs.size();

  // predecessors[j] = earlier expressions j must wait for.
  std::vector<std::vector<size_t>> preds(n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (Conflicts(vdag, exprs[i], exprs[j])) preds[j].push_back(i);
    }
  }

  ParallelStrategy out;
  std::vector<bool> done(n, false);
  size_t remaining = n;
  while (remaining > 0) {
    std::vector<Expression> stage;
    std::vector<size_t> chosen;
    for (size_t j = 0; j < n; ++j) {
      if (done[j]) continue;
      bool ready = true;
      for (size_t p : preds[j]) {
        if (!done[p]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        chosen.push_back(j);
        stage.push_back(exprs[j]);
      }
    }
    WUW_CHECK(!stage.empty(), "parallelization deadlock (conflict cycle?)");
    for (size_t j : chosen) done[j] = true;
    remaining -= chosen.size();
    out.stages.push_back(std::move(stage));
  }
  return out;
}

MakespanReport EstimateMakespan(const Vdag& vdag,
                                const ParallelStrategy& parallel,
                                const SizeMap& sizes, const WorkParams& params,
                                int workers) {
  WUW_CHECK(workers >= 1, "need at least one worker");
  WorkBreakdown breakdown =
      EstimateStrategyWork(vdag, parallel.Linearize(), sizes, params);

  MakespanReport report;
  report.num_stages = parallel.stages.size();
  report.total_work = breakdown.total;

  size_t cursor = 0;
  for (const auto& stage : parallel.stages) {
    // LPT: sort stage works descending, assign each to the least-loaded
    // worker.
    std::vector<double> works;
    for (size_t i = 0; i < stage.size(); ++i) {
      works.push_back(breakdown.per_expression[cursor + i].work);
    }
    cursor += stage.size();
    std::sort(works.rbegin(), works.rend());
    std::vector<double> load(static_cast<size_t>(workers), 0.0);
    for (double w : works) {
      *std::min_element(load.begin(), load.end()) += w;
    }
    report.makespan += *std::max_element(load.begin(), load.end());
  }
  return report;
}

}  // namespace wuw
