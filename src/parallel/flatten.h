// VDAG flattening (Section 9, technique 2).
//
// "If we only use dual-stage view strategies, we can remove any remaining
// dependencies among the expressions by flattening the VDAG: when updating
// V5 it may be possible to treat V5 as if it was defined on V1, V2 and V3
// instead of V4" — then the compute expressions of V5 and V4 can run in
// parallel.
//
// Flattening composes view definitions: a derived source that is an SPJ
// view is inlined (its sources, joins and filters merged; its output
// columns substituted by their defining expressions).  Aggregate sources
// cannot be inlined — SUM/COUNT does not compose with a further join —
// and stay as-is.
#ifndef WUW_PARALLEL_FLATTEN_H_
#define WUW_PARALLEL_FLATTEN_H_

#include <memory>

#include "graph/vdag.h"

namespace wuw {

/// Definition of `view` with every SPJ derived source inlined
/// (recursively).  Returns the original definition when nothing can be
/// inlined.  Requires that any inlined view's columns used in the parent's
/// join conditions are plain column projections (true for natural
/// key-preserving SPJ views).
std::shared_ptr<const ViewDefinition> FlattenDefinition(
    const Vdag& vdag, const std::string& view);

/// A new VDAG where every derived view's definition is flattened as far as
/// possible.  View extents are unchanged; only maintenance structure
/// differs.
Vdag FlattenVdag(const Vdag& vdag);

}  // namespace wuw

#endif  // WUW_PARALLEL_FLATTEN_H_
