// Parallel VDAG strategies (Section 9).
//
// "An alternative model of a VDAG strategy is a sequence of expression
// sets, wherein each set can be answered by the database in parallel."
// ParallelizeStrategy derives that form from a sequential strategy by
// conflict analysis: two expressions may share a stage iff neither reads
// state the other writes (extents written by Inst, deltas written by
// Comp).  EstimateMakespan then prices the staged plan on k workers under
// the linear work metric — exposing the paper's observation that the extra
// parallelism of dual-stage/flattened strategies can be offset by their
// extra total work.
#ifndef WUW_PARALLEL_PARALLEL_STRATEGY_H_
#define WUW_PARALLEL_PARALLEL_STRATEGY_H_

#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/work_metric.h"
#include "graph/vdag.h"

namespace wuw {

/// A strategy as a sequence of concurrently-executable expression sets.
struct ParallelStrategy {
  std::vector<std::vector<Expression>> stages;

  size_t num_expressions() const;
  /// The sequential strategy obtained by concatenating stages (used for
  /// correctness checking and work evaluation).
  Strategy Linearize() const;
  std::string ToString() const;
};

/// Stages `sequential` greedily: each stage takes every not-yet-scheduled
/// expression whose conflicting predecessors are all scheduled.  The
/// result preserves the sequential strategy's semantics (same final state,
/// same per-expression work).
ParallelStrategy ParallelizeStrategy(const Vdag& vdag,
                                     const Strategy& sequential);

struct MakespanReport {
  double makespan = 0;
  double total_work = 0;
  size_t num_stages = 0;
};

/// Prices a staged plan on `workers` workers: per stage, expressions are
/// LPT-packed; the stage costs its maximum worker load; stages run in
/// sequence.
MakespanReport EstimateMakespan(const Vdag& vdag,
                                const ParallelStrategy& parallel,
                                const SizeMap& sizes, const WorkParams& params,
                                int workers);

}  // namespace wuw

#endif  // WUW_PARALLEL_PARALLEL_STRATEGY_H_
