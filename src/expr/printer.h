// SQL-flavoured pretty printing of scalar expressions, used by the stored-
// procedure script generator (sqlgen/) and debug output.
#ifndef WUW_EXPR_PRINTER_H_
#define WUW_EXPR_PRINTER_H_

#include <string>

#include "expr/scalar_expr.h"

namespace wuw {

/// Renders `expr` as SQL text, e.g.
/// "(l_extendedprice * (1 - l_discount))".
std::string ExprToSql(const ScalarExpr& expr);
std::string ExprToSql(const ScalarExpr::Ptr& expr);

}  // namespace wuw

#endif  // WUW_EXPR_PRINTER_H_
