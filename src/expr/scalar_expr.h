// Scalar expression trees over tuple columns.
//
// These expressions appear in three places: selection filters of view
// definitions, projection items, and aggregate arguments (e.g. the TPC-D
// revenue term l_extendedprice * (1 - l_discount)).  Expressions reference
// columns by name and are bound to a concrete Schema before evaluation
// (see evaluator.h).
#ifndef WUW_EXPR_SCALAR_EXPR_H_
#define WUW_EXPR_SCALAR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace wuw {

enum class ExprKind : uint8_t {
  kColumn,
  kLiteral,
  kArith,
  kCompare,
  kLogical,
  kNot,
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp : uint8_t { kAnd, kOr };

/// Immutable expression node.  Shared subtrees are allowed (the tree is
/// read-only after construction).
class ScalarExpr {
 public:
  using Ptr = std::shared_ptr<const ScalarExpr>;

  /// Column reference by name.
  static Ptr Column(std::string name);
  /// Constant.
  static Ptr Literal(Value v);
  static Ptr Arith(ArithOp op, Ptr lhs, Ptr rhs);
  static Ptr Compare(CompareOp op, Ptr lhs, Ptr rhs);
  static Ptr Logical(LogicalOp op, Ptr lhs, Ptr rhs);
  static Ptr Not(Ptr operand);

  // Convenience factories for the common filter shapes.
  static Ptr ColEqString(const std::string& col, const std::string& s) {
    return Compare(CompareOp::kEq, Column(col), Literal(Value::String(s)));
  }
  static Ptr ColLtDate(const std::string& col, int64_t yyyymmdd) {
    return Compare(CompareOp::kLt, Column(col), Literal(Value::Date(yyyymmdd)));
  }
  static Ptr ColGtDate(const std::string& col, int64_t yyyymmdd) {
    return Compare(CompareOp::kGt, Column(col), Literal(Value::Date(yyyymmdd)));
  }
  static Ptr ColGeDate(const std::string& col, int64_t yyyymmdd) {
    return Compare(CompareOp::kGe, Column(col), Literal(Value::Date(yyyymmdd)));
  }
  static Ptr And(Ptr a, Ptr b) { return Logical(LogicalOp::kAnd, a, b); }
  /// Conjunction of a list; empty list yields literal TRUE.
  static Ptr AndAll(const std::vector<Ptr>& terms);
  static Ptr True() { return Literal(Value::Int64(1)); }

  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  ArithOp arith_op() const { return arith_op_; }
  CompareOp compare_op() const { return compare_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  const Ptr& lhs() const { return lhs_; }
  const Ptr& rhs() const { return rhs_; }

  /// All column names referenced by this subtree (with duplicates removed).
  std::vector<std::string> ReferencedColumns() const;

 private:
  ScalarExpr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string column_name_;
  Value literal_;
  ArithOp arith_op_ = ArithOp::kAdd;
  CompareOp compare_op_ = CompareOp::kEq;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  Ptr lhs_;
  Ptr rhs_;
};

}  // namespace wuw

#endif  // WUW_EXPR_SCALAR_EXPR_H_
