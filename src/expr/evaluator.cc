#include "expr/evaluator.h"

#include "common/check.h"

namespace wuw {

struct BoundExpr::Node {
  ExprKind kind;
  // kColumn
  size_t column_index = 0;
  // kLiteral
  Value literal;
  // binary / unary
  ArithOp arith_op = ArithOp::kAdd;
  CompareOp compare_op = CompareOp::kEq;
  LogicalOp logical_op = LogicalOp::kAnd;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
  TypeId type = TypeId::kNull;
};

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kDate;
}

std::shared_ptr<const BoundExpr::Node> BindNode(const ScalarExpr& e,
                                                const Schema& schema);

std::shared_ptr<BoundExpr::Node> MakeNode(ExprKind k) {
  auto n = std::make_shared<BoundExpr::Node>();
  n->kind = k;
  return n;
}

std::shared_ptr<const BoundExpr::Node> BindNode(const ScalarExpr& e,
                                                const Schema& schema) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      auto n = MakeNode(ExprKind::kColumn);
      n->column_index = schema.MustIndexOf(e.column_name());
      n->type = schema.column(n->column_index).type;
      return n;
    }
    case ExprKind::kLiteral: {
      auto n = MakeNode(ExprKind::kLiteral);
      n->literal = e.literal();
      n->type = e.literal().type();
      return n;
    }
    case ExprKind::kArith: {
      auto n = MakeNode(ExprKind::kArith);
      n->arith_op = e.arith_op();
      n->lhs = BindNode(*e.lhs(), schema);
      n->rhs = BindNode(*e.rhs(), schema);
      WUW_CHECK(IsNumeric(n->lhs->type) && IsNumeric(n->rhs->type),
                "arithmetic requires numeric operands");
      // int64 op int64 stays int64 except division; anything else → double.
      n->type = (n->lhs->type == TypeId::kInt64 &&
                 n->rhs->type == TypeId::kInt64 &&
                 e.arith_op() != ArithOp::kDiv)
                    ? TypeId::kInt64
                    : TypeId::kDouble;
      return n;
    }
    case ExprKind::kCompare: {
      auto n = MakeNode(ExprKind::kCompare);
      n->compare_op = e.compare_op();
      n->lhs = BindNode(*e.lhs(), schema);
      n->rhs = BindNode(*e.rhs(), schema);
      n->type = TypeId::kInt64;
      return n;
    }
    case ExprKind::kLogical: {
      auto n = MakeNode(ExprKind::kLogical);
      n->logical_op = e.logical_op();
      n->lhs = BindNode(*e.lhs(), schema);
      n->rhs = BindNode(*e.rhs(), schema);
      n->type = TypeId::kInt64;
      return n;
    }
    case ExprKind::kNot: {
      auto n = MakeNode(ExprKind::kNot);
      n->lhs = BindNode(*e.lhs(), schema);
      n->type = TypeId::kInt64;
      return n;
    }
  }
  WUW_CHECK(false, "unreachable expression kind");
  return nullptr;
}

Value EvalNode(const BoundExpr::Node& n, const Tuple& tuple);

bool ToBool(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == TypeId::kString) return !v.AsString().empty();
  return v.NumericValue() != 0.0;
}

Value EvalNode(const BoundExpr::Node& n, const Tuple& tuple) {
  switch (n.kind) {
    case ExprKind::kColumn:
      return tuple.value(n.column_index);
    case ExprKind::kLiteral:
      return n.literal;
    case ExprKind::kArith: {
      Value l = EvalNode(*n.lhs, tuple);
      Value r = EvalNode(*n.rhs, tuple);
      if (l.is_null() || r.is_null()) return Value::Null();
      if (n.type == TypeId::kInt64) {
        int64_t a = l.AsInt64(), b = r.AsInt64();
        switch (n.arith_op) {
          case ArithOp::kAdd:
            return Value::Int64(a + b);
          case ArithOp::kSub:
            return Value::Int64(a - b);
          case ArithOp::kMul:
            return Value::Int64(a * b);
          case ArithOp::kDiv:
            break;  // handled as double below
        }
      }
      double a = l.NumericValue(), b = r.NumericValue();
      switch (n.arith_op) {
        case ArithOp::kAdd:
          return Value::Double(a + b);
        case ArithOp::kSub:
          return Value::Double(a - b);
        case ArithOp::kMul:
          return Value::Double(a * b);
        case ArithOp::kDiv:
          return b == 0.0 ? Value::Null() : Value::Double(a / b);
      }
      return Value::Null();
    }
    case ExprKind::kCompare: {
      Value l = EvalNode(*n.lhs, tuple);
      Value r = EvalNode(*n.rhs, tuple);
      if (l.is_null() || r.is_null()) return Value::Int64(0);
      bool result = false;
      switch (n.compare_op) {
        case CompareOp::kEq:
          result = l == r;
          break;
        case CompareOp::kNe:
          result = l != r;
          break;
        case CompareOp::kLt:
          result = l < r;
          break;
        case CompareOp::kLe:
          result = !(r < l);
          break;
        case CompareOp::kGt:
          result = r < l;
          break;
        case CompareOp::kGe:
          result = !(l < r);
          break;
      }
      return Value::Int64(result ? 1 : 0);
    }
    case ExprKind::kLogical: {
      bool l = ToBool(EvalNode(*n.lhs, tuple));
      if (n.logical_op == LogicalOp::kAnd && !l) return Value::Int64(0);
      if (n.logical_op == LogicalOp::kOr && l) return Value::Int64(1);
      return Value::Int64(ToBool(EvalNode(*n.rhs, tuple)) ? 1 : 0);
    }
    case ExprKind::kNot:
      return Value::Int64(ToBool(EvalNode(*n.lhs, tuple)) ? 0 : 1);
  }
  return Value::Null();
}

}  // namespace

BoundExpr BoundExpr::Bind(const ScalarExpr::Ptr& expr, const Schema& schema) {
  WUW_CHECK(expr != nullptr, "cannot bind a null expression");
  BoundExpr out;
  out.root_ = BindNode(*expr, schema);
  out.result_type_ = out.root_->type;
  return out;
}

Value BoundExpr::Eval(const Tuple& tuple) const {
  return EvalNode(*root_, tuple);
}

bool BoundExpr::EvalBool(const Tuple& tuple) const {
  return ToBool(EvalNode(*root_, tuple));
}

}  // namespace wuw
