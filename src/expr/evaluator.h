// Binding and evaluation of scalar expressions against a schema.
//
// A BoundExpr is compiled once per (expression, schema) pair; evaluation is
// then index-based, which matters because filters run once per joined row.
#ifndef WUW_EXPR_EVALUATOR_H_
#define WUW_EXPR_EVALUATOR_H_

#include <memory>
#include <vector>

#include "expr/scalar_expr.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace wuw {

/// An expression whose column references have been resolved to positions in
/// a fixed schema.
class BoundExpr {
 public:
  /// An unbound placeholder; evaluating it is undefined.  Exists so
  /// containers can hold slots for expressions bound later.
  BoundExpr() = default;

  /// Binds `expr` to `schema`; aborts if a referenced column is absent or a
  /// subexpression is not type-compatible.
  static BoundExpr Bind(const ScalarExpr::Ptr& expr, const Schema& schema);

  /// Result type of the bound expression.
  TypeId result_type() const { return result_type_; }

  /// Evaluates over `tuple` (which must match the bound schema).
  Value Eval(const Tuple& tuple) const;

  /// Evaluates as a boolean predicate: non-null, non-zero numerics are true.
  bool EvalBool(const Tuple& tuple) const;

  /// Implementation node; public so the out-of-line binder/evaluator in
  /// evaluator.cc can build trees, but not part of the supported API.
  struct Node;

 private:
  std::shared_ptr<const Node> root_;
  TypeId result_type_ = TypeId::kNull;
};

}  // namespace wuw

#endif  // WUW_EXPR_EVALUATOR_H_
