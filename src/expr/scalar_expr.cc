#include "expr/scalar_expr.h"

#include <set>

namespace wuw {

ScalarExpr::Ptr ScalarExpr::Column(std::string name) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ExprKind::kColumn;
  e->column_name_ = std::move(name);
  return e;
}

ScalarExpr::Ptr ScalarExpr::Literal(Value v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ScalarExpr::Ptr ScalarExpr::Arith(ArithOp op, Ptr lhs, Ptr rhs) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ScalarExpr::Ptr ScalarExpr::Compare(CompareOp op, Ptr lhs, Ptr rhs) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ScalarExpr::Ptr ScalarExpr::Logical(LogicalOp op, Ptr lhs, Ptr rhs) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ScalarExpr::Ptr ScalarExpr::Not(Ptr operand) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ExprKind::kNot;
  e->lhs_ = std::move(operand);
  return e;
}

ScalarExpr::Ptr ScalarExpr::AndAll(const std::vector<Ptr>& terms) {
  if (terms.empty()) return True();
  Ptr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) acc = And(acc, terms[i]);
  return acc;
}

namespace {
void Collect(const ScalarExpr& e, std::set<std::string>* out) {
  switch (e.kind()) {
    case ExprKind::kColumn:
      out->insert(e.column_name());
      break;
    case ExprKind::kLiteral:
      break;
    default:
      if (e.lhs()) Collect(*e.lhs(), out);
      if (e.rhs()) Collect(*e.rhs(), out);
  }
}
}  // namespace

std::vector<std::string> ScalarExpr::ReferencedColumns() const {
  std::set<std::string> set;
  Collect(*this, &set);
  return {set.begin(), set.end()};
}

}  // namespace wuw
