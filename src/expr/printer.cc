#include "expr/printer.h"

namespace wuw {

namespace {

const char* ArithSymbol(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

const char* CompareSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string LiteralToSql(const Value& v) {
  switch (v.type()) {
    case TypeId::kString: {
      // SQL string literal with embedded quotes doubled.
      std::string out = "'";
      for (char c : v.AsString()) {
        if (c == '\'') out += '\'';
        out += c;
      }
      out += "'";
      return out;
    }
    case TypeId::kDate:
      return "DATE '" + v.ToString() + "'";
    default:
      return v.ToString();
  }
}

}  // namespace

std::string ExprToSql(const ScalarExpr& e) {
  switch (e.kind()) {
    case ExprKind::kColumn:
      return e.column_name();
    case ExprKind::kLiteral:
      return LiteralToSql(e.literal());
    case ExprKind::kArith:
      return "(" + ExprToSql(*e.lhs()) + " " + ArithSymbol(e.arith_op()) +
             " " + ExprToSql(*e.rhs()) + ")";
    case ExprKind::kCompare:
      return ExprToSql(*e.lhs()) + " " + CompareSymbol(e.compare_op()) + " " +
             ExprToSql(*e.rhs());
    case ExprKind::kLogical:
      return "(" + ExprToSql(*e.lhs()) +
             (e.logical_op() == LogicalOp::kAnd ? " AND " : " OR ") +
             ExprToSql(*e.rhs()) + ")";
    case ExprKind::kNot:
      return "NOT (" + ExprToSql(*e.lhs()) + ")";
  }
  return "?";
}

std::string ExprToSql(const ScalarExpr::Ptr& expr) {
  return expr ? ExprToSql(*expr) : std::string("TRUE");
}

}  // namespace wuw
