// Central counter registry — the deterministic half of the observability
// layer (src/obs).
//
// The engine's measurements were historically scattered across ad-hoc
// structs (OperatorStats in the kernels, SubplanCacheStats, ThreadPoolStats,
// fault hit totals, journal sizes).  This registry absorbs them behind one
// snapshot API: every instrumented site increments a named process-wide
// Counter, and SnapshotMetrics() returns a sorted, comparable view.
//
// Determinism contract (property-tested by obs_invariance_property_test):
// each counter declares a MetricClass stating which knobs its value is
// invariant to.  kWork counters are bit-identical for a given (warehouse
// state, strategy, executor) at every WUW_THREADS value and every subplan
// cache budget — the same discipline as the pool-size-independence
// invariant in DESIGN.md.  Only kTime gauges may carry wall time.
//
// Disarmed cost follows the fault-point pattern (fault/fault_injection.h):
// the WUW_METRIC_ADD macro is one relaxed atomic load and a predictable
// branch when metrics are disarmed, and compiles out entirely under
// WUW_DISABLE_OBS, so the paper-fidelity benches are unaffected.
//
// The `WUW_METRICS=<path>` environment knob arms the registry at startup
// and writes the deterministic snapshot (kWork|kEngine) to <path> at
// process exit; a path ending in '/' writes <dir>metrics-<pid>.txt so
// parallel test runners do not collide.  CI diffs two consecutive runs'
// files for equality.
#ifndef WUW_OBS_METRICS_H_
#define WUW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wuw {
namespace obs {

/// Determinism class of a counter: which knobs the value is invariant to.
enum class MetricClass : uint8_t {
  /// Analytic work accounting and step/term/plan-shape counts.
  /// Bit-identical for a given (state, strategy, executor) at every
  /// WUW_THREADS value and every cache budget (including no cache).
  kWork = 1 << 0,
  /// Measured operator volumes (rows scanned/produced, probes, cache
  /// hits/misses).  Bit-identical at every WUW_THREADS value for a fixed
  /// cache configuration under the sequential executor; legitimately
  /// depends on the cache budget (a hit short-circuits operator work) and
  /// may vary with scheduling under stage-parallel execution.
  kEngine = 1 << 1,
  /// Scheduling shape (pool fan-out, worker tasks, fault hits): may vary
  /// with thread count and run-to-run interleaving.
  kSched = 1 << 2,
  /// Wall-time gauges (microseconds): always free to vary.
  kTime = 1 << 3,
  /// Serving-side volumes (snapshots opened, reader sessions/queries/rows).
  /// Reader traffic is asynchronous to maintenance, so these are never
  /// deterministic — and, symmetrically, reader threads must not pollute
  /// the deterministic classes: a ServeScope on the reader thread redirects
  /// every non-kServe WUW_METRIC_ADD to a no-op (see below), which is what
  /// keeps kWork|kEngine snapshots bit-identical with readers attached.
  kServe = 1 << 4,
};

/// Bitmask over MetricClass values for snapshot filtering.
using MetricMask = uint8_t;

inline constexpr MetricMask Mask(MetricClass c) {
  return static_cast<MetricMask>(c);
}
inline constexpr MetricMask operator|(MetricClass a, MetricClass b) {
  return static_cast<MetricMask>(Mask(a) | Mask(b));
}

/// The classes whose snapshot must be bit-identical between two runs of
/// the same workload under the same configuration (what WUW_METRICS dumps
/// and what CI diffs).
inline constexpr MetricMask kDeterministicMask =
    MetricClass::kWork | MetricClass::kEngine;
inline constexpr MetricMask kAllMetricsMask = 0x1F;

/// A named, monotonically-written process counter.  Obtained once via
/// GetCounter (interned by name; never destroyed) and incremented with
/// relaxed atomics — concurrent writers only ever produce commutative
/// sums, so totals are scheduling-independent.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  MetricClass metric_class() const { return class_; }

 private:
  friend class RegistryAccess;
  Counter(std::string name, MetricClass c)
      : name_(std::move(name)), class_(c) {}

  std::string name_;
  MetricClass class_;
  std::atomic<int64_t> value_{0};
};

/// Returns the process-wide counter registered under `name`, creating it
/// on first use.  The class is fixed at first registration; re-registering
/// the same name with a different class aborts (contract violation).
Counter* GetCounter(const std::string& name, MetricClass c);

/// Arms / disarms counter collection.  Disarmed, every WUW_METRIC_ADD is
/// one relaxed load; values freeze at whatever they held.
void ArmMetrics();
void DisarmMetrics();
bool MetricsArmed();

/// Zeroes every registered counter (registrations survive).  Tests call
/// this between compared runs so snapshots cover exactly one run.
void ResetMetrics();

/// A comparable view of the registry: (name, value) sorted by name,
/// zero-valued counters excluded so registration order never shows.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;

  bool operator==(const MetricsSnapshot& other) const {
    return counters == other.counters;
  }
  bool operator!=(const MetricsSnapshot& other) const {
    return !(*this == other);
  }
  /// One "name value" line per counter, aligned; stable across runs for
  /// identical snapshots (what WUW_METRICS writes).
  std::string ToString() const;
};

/// Snapshot of every non-zero counter whose class is in `classes`.
MetricsSnapshot SnapshotMetrics(MetricMask classes = kDeterministicMask);

/// If WUW_METRICS is set: arms metrics and registers an exit hook that
/// writes SnapshotMetrics(kDeterministicMask) to the named file.  Called
/// automatically at static-init time (every binary honors the knob); safe
/// to call again.
void ArmMetricsFromEnv();

namespace internal {

/// Fast disarmed gate, read relaxed by WUW_METRIC_ADD.
extern std::atomic<int> g_metrics_armed;

/// True while the current thread executes reader-session work (ServeScope
/// below); checked only on the armed path of WUW_METRIC_ADD.
extern thread_local bool g_in_serve_scope;

}  // namespace internal

/// RAII marker wrapped around reader-session bodies (parallel/read_driver):
/// inside the scope, counters of every class except kServe are dropped on
/// this thread, so concurrent readers cannot perturb the deterministic
/// kWork|kEngine snapshot the maintenance run produces.  kServe counters
/// (serve.*) keep counting — they are the reader-side telemetry.
class ServeScope {
 public:
  ServeScope() : prev_(internal::g_in_serve_scope) {
    internal::g_in_serve_scope = true;
  }
  ~ServeScope() { internal::g_in_serve_scope = prev_; }
  ServeScope(const ServeScope&) = delete;
  ServeScope& operator=(const ServeScope&) = delete;

 private:
  bool prev_;
};

/// True on a thread currently inside a ServeScope.
inline bool InServeScope() { return internal::g_in_serve_scope; }

}  // namespace obs
}  // namespace wuw

/// Increments the counter registered under `name` (a string literal) by
/// `delta` when metrics are armed.  The counter is resolved once per call
/// site, and only on the first armed pass — the disarmed path never takes
/// the registry lock.  Disarmed cost: one relaxed atomic load and a
/// predictable branch.
#if defined(WUW_DISABLE_OBS)
#define WUW_METRIC_ADD(name, cls, delta) ((void)0)
#else
#define WUW_METRIC_ADD(name, cls, delta)                                  \
  do {                                                                    \
    if (::wuw::obs::internal::g_metrics_armed.load(                       \
            std::memory_order_relaxed) != 0) {                            \
      /* Reader threads drop non-serve counters (class is a literal, so   \
         the comparison folds away at compile time per call site). */     \
      if ((cls) == ::wuw::obs::MetricClass::kServe ||                     \
          !::wuw::obs::internal::g_in_serve_scope) {                      \
        static ::wuw::obs::Counter* const wuw_metric_counter =            \
            ::wuw::obs::GetCounter(name, cls);                            \
        wuw_metric_counter->Add(delta);                                   \
      }                                                                   \
    }                                                                     \
  } while (0)
#endif

#endif  // WUW_OBS_METRICS_H_
