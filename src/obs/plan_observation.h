// Per-plan-node observations for the EXPLAIN strategy report.
//
// EvalComp lowers a Comp expression's terms into one interned PlanDag; when
// a PlanObserver is attached (CompEvalOptions::observer), it receives — per
// expression — a snapshot of every DAG node with its estimated output rows
// (stats/plan_cardinality.h) alongside the rows the executor actually
// produced for it.  obs/explain.h assembles these into the EXPLAIN report;
// nothing here depends on the plan layer, so leaf modules can include it
// freely.
//
// Measured rows are only meaningful when evaluation is sequential (the
// parallel executor's stage workers would interleave observations):
// ExplainStrategy runs on a cloned warehouse with a single-thread pool,
// which is the only supported producer.
#ifndef WUW_OBS_PLAN_OBSERVATION_H_
#define WUW_OBS_PLAN_OBSERVATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wuw {
namespace obs {

/// One plan node's estimate-vs-measurement record.
struct PlanNodeObservation {
  /// Node id within its DAG (ids are a topological order).
  int32_t id = 0;
  /// Ids of the node's children within the same DAG.
  std::vector<int32_t> children;
  /// Operator label, e.g. "HashJoin", "ScanDelta(Orders)".
  std::string label;
  /// Parent-edge count across the whole DAG; >= 2 marks a shared subplan
  /// (the memoization payoff EXPLAIN annotates).
  int num_uses = 0;
  /// False iff the subtree reads caller-owned rows (never cached).
  bool cacheable = true;
  /// Estimated output cardinality (System-R composition); < 0 when the DAG
  /// was not annotated (no cache attached and estimates not requested).
  double est_rows = -1;
  /// Rows actually produced, or -1 if the node never ran this evaluation
  /// (skipped term, or short-circuited by a subplan-cache hit).
  int64_t measured_rows = -1;
  /// True when the result came from the cross-expression SubplanCache
  /// rather than being computed.
  bool from_cache = false;
};

/// All observations for one evaluated Comp expression.
struct CompPlanObservation {
  /// The expression as rendered by the strategy ("Comp(V, {A,B})").
  std::string expression;
  /// 1-based strategy step the expression belongs to (0 = unknown).
  int64_t step = 0;
  /// Number of maintenance terms the DAG covers (2^|Y|-1 before skipping).
  int64_t num_terms = 0;
  /// Every DAG node in id (topological) order.
  std::vector<PlanNodeObservation> nodes;
  /// Root node id per term slot, in term-mask order.
  std::vector<int32_t> term_roots;
};

/// Sink for per-expression plan observations.  The callback runs on the
/// evaluating thread, once per EvalComp, after the expression finishes.
struct PlanObserver {
  std::function<void(CompPlanObservation)> on_comp;
};

}  // namespace obs
}  // namespace wuw

#endif  // WUW_OBS_PLAN_OBSERVATION_H_
