// Structured tracing — the timeline half of the observability layer.
//
// Executors, the plan layer, and the recovery path open nested TraceSpans
// (strategy → stage → expression → comp → term → plan preparation); each
// span records its category, name, owning thread, nesting depth, and
// steady-clock start/duration.  Completed spans land in one process-wide
// buffer and can be rendered two ways:
//
//   * ChromeTraceJson(): Chrome trace-event JSON ("ph":"X" complete
//     events) loadable in about:tracing / Perfetto.  The WUW_TRACE=<path>
//     environment knob arms tracing at startup and writes this file at
//     process exit; a path ending in '/' writes <dir>trace-<pid>.json so
//     parallel test runners do not collide.
//   * HumanTimeline(): an indented per-thread text timeline, printed by
//     `wuw_shell update`.
//
// Spans carry wall time, so traces are diagnostic — never compared for
// determinism (that is the metrics registry's job, obs/metrics.h).  The
// disarmed cost follows the fault-point pattern: constructing a TraceSpan
// with tracing disarmed is one relaxed atomic load and a predictable
// branch (lazy name callables are not invoked), and WUW_DISABLE_OBS
// compiles spans out entirely.
#ifndef WUW_OBS_TRACE_H_
#define WUW_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace wuw {
namespace obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  /// Category literal ("exec", "view", "plan", ...); string literals only,
  /// so events never own it.
  const char* category = "";
  /// Stable small index of the recording thread (assigned at the thread's
  /// first span; scheduling-dependent, like everything here).
  int tid = 0;
  /// Nesting depth on the recording thread when the span began.
  int depth = 0;
  int64_t start_us = 0;
  int64_t duration_us = 0;
};

void ArmTracing();
/// Stops recording; already-buffered events survive until DrainTrace.
void DisarmTracing();
bool TracingArmed();

/// Number of completed events currently buffered (monotone between
/// drains).  Pair with TraceSince to render just one region of interest
/// without disturbing an env-armed whole-process trace.
size_t TraceEventCount();

/// Copies the events recorded at index >= `since` (by completion order),
/// sorted by (tid, start, depth).  Does not clear the buffer.
std::vector<TraceEvent> TraceSince(size_t since);

/// Returns all buffered events (sorted like TraceSince) and clears the
/// buffer.  Also resets the dropped-events counter.
std::vector<TraceEvent> DrainTrace();

/// Events dropped after the buffer cap (kMaxTraceEvents) was reached since
/// the last drain.
int64_t DroppedTraceEvents();

/// Chrome trace-event JSON for about:tracing / Perfetto.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Indented per-thread timeline for console output.
std::string HumanTimeline(const std::vector<TraceEvent>& events);

/// If WUW_TRACE is set: arms tracing and registers an exit hook writing
/// ChromeTraceJson of everything buffered to the named file.  Called
/// automatically at static-init time; safe to call again.
void ArmTracingFromEnv();

namespace internal {
extern std::atomic<int> g_tracing_armed;
}  // namespace internal

/// RAII span.  Cheap to construct disarmed; armed cost is one timestamp at
/// each end plus a mutex-guarded append on completion (spans mark coarse
/// scopes — strategies, expressions, terms — never per-row work).
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
#if !defined(WUW_DISABLE_OBS)
    if (internal::g_tracing_armed.load(std::memory_order_relaxed) != 0) {
      Begin(category, name);
    }
#else
    (void)category;
    (void)name;
#endif
  }

  /// Lazy-name overload: `fn` is only invoked when tracing is armed, so
  /// disarmed call sites never build the name string.
  template <typename NameFn,
            std::enable_if_t<std::is_invocable_v<NameFn>>* = nullptr>
  TraceSpan(const char* category, NameFn&& fn) {
#if !defined(WUW_DISABLE_OBS)
    if (internal::g_tracing_armed.load(std::memory_order_relaxed) != 0) {
      Begin(category, fn());
    }
#else
    (void)category;
    (void)fn;
#endif
  }

  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* category, std::string name);
  void End();

  bool active_ = false;
  const char* category_ = "";
  std::string name_;
  int tid_ = 0;
  int depth_ = 0;
  int64_t start_us_ = 0;
};

/// Buffer cap: beyond this many undrained events new completions are
/// counted as dropped instead of stored (a whole armed tier-1 run stays
/// well under it; the cap only guards runaway loops).
inline constexpr size_t kMaxTraceEvents = 1u << 20;

}  // namespace obs
}  // namespace wuw

#endif  // WUW_OBS_TRACE_H_
