#include "obs/explain.h"

#include <cstdio>

#include "exec/executor.h"
#include "exec/warehouse.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"

namespace wuw {
namespace obs {

namespace {

std::string FormatEstRows(double est) {
  if (est < 0) return "est=?";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "est=%.0f", est);
  return buf;
}

std::string FormatMeasuredRows(const PlanNodeObservation& node) {
  if (node.measured_rows < 0) return "rows=-";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "rows=%lld",
                static_cast<long long>(node.measured_rows));
  std::string out = buf;
  if (node.from_cache) out += " (cached)";
  return out;
}

/// Prints `id`'s subtree.  A shared node (num_uses >= 2) renders its
/// subtree only on first visit; later parents print a back-reference so
/// the sharing is visible without duplicating whole trees.
void PrintSubtree(const CompPlanObservation& comp, int32_t id, int indent,
                  std::vector<char>* printed, std::string* out) {
  const PlanNodeObservation& node = comp.nodes[id];
  out->append(static_cast<size_t>(indent) * 2, ' ');
  char buf[32];
  std::snprintf(buf, sizeof(buf), "#%d ", node.id);
  *out += buf;
  *out += node.label;
  *out += "  " + FormatEstRows(node.est_rows);
  *out += " " + FormatMeasuredRows(node);
  if (node.num_uses >= 2) {
    std::snprintf(buf, sizeof(buf), "  [shared x%d]", node.num_uses);
    *out += buf;
  }
  if (!node.cacheable) *out += "  [volatile]";
  if ((*printed)[id]) {
    *out += "  (see above)\n";
    return;
  }
  (*printed)[id] = 1;
  *out += "\n";
  for (int32_t child : node.children) {
    PrintSubtree(comp, child, indent + 1, printed, out);
  }
}

}  // namespace

std::string ExplainReport::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "EXPLAIN strategy: %zu steps\n",
                steps.size());
  out += line;
  for (size_t i = 0; i < steps.size(); ++i) {
    std::snprintf(line, sizeof(line), "  step %2zu: %-44s work=%lld\n", i + 1,
                  steps[i].expression.c_str(),
                  static_cast<long long>(steps[i].linear_work));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  total linear work: %lld\n",
                static_cast<long long>(total_linear_work));
  out += line;

  for (const CompPlanObservation& comp : comps) {
    std::snprintf(line, sizeof(line), "\nstep %lld: %s  [%lld terms]\n",
                  static_cast<long long>(comp.step), comp.expression.c_str(),
                  static_cast<long long>(comp.num_terms));
    out += line;
    std::vector<char> printed(comp.nodes.size(), 0);
    for (size_t t = 0; t < comp.term_roots.size(); ++t) {
      std::snprintf(line, sizeof(line), "  term %zu:\n", t + 1);
      out += line;
      PrintSubtree(comp, comp.term_roots[t], /*indent=*/2, &printed, &out);
    }
  }
  return out;
}

ExplainReport ExplainStrategy(const Warehouse& warehouse,
                              const Strategy& strategy,
                              const ExplainOptions& options) {
  ExplainReport report;

  // Private, fully sequential replay: one-thread pool, cloned state, and —
  // when requested — a scratch cache, so nothing the caller owns changes
  // and the observations are deterministic.
  Warehouse clone = warehouse.Clone();
  ThreadPool sequential(1);
  SubplanCache scratch(SubplanCacheOptions{options.cache_budget});

  PlanObserver observer;
  observer.on_comp = [&report](CompPlanObservation observation) {
    report.comps.push_back(std::move(observation));
  };

  ExecutorOptions exec_options;
  // The caller's real run already validated (or will); a diagnostic replay
  // must not abort the process on a strategy the caller chose to inspect.
  exec_options.validate = false;
  exec_options.skip_empty_delta_terms = options.skip_empty_delta_terms;
  exec_options.simplify_empty_deltas = options.simplify_empty_deltas;
  exec_options.pool = &sequential;
  if (options.with_subplan_cache) exec_options.subplan_cache = &scratch;
  exec_options.plan_observer = &observer;

  ExecutionReport run = Executor(&clone, exec_options).Execute(strategy);
  report.steps.reserve(run.per_expression.size());
  for (const ExpressionReport& er : run.per_expression) {
    report.steps.push_back(
        ExplainStep{er.expression.ToString(), er.linear_work});
  }
  report.total_linear_work = run.total_linear_work;
  return report;
}

}  // namespace obs
}  // namespace wuw
