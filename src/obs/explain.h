// EXPLAIN for update strategies: chosen ordering + per-term plan DAGs with
// shared-subplan annotations and estimated vs measured row counts.
//
// ExplainStrategy replays the strategy against a clone of the warehouse
// (the caller's state and pending batch are untouched) on a private
// single-thread pool, with a PlanObserver attached so every Comp reports
// its interned PlanDag.  Because execution is deterministic and
// pool-size-invariant, the measured row counts are exactly what the real
// run will produce; the estimates come from the System-R annotations
// (stats/plan_cardinality.h), which is the estimated-vs-actual feedback
// signal of Mistry et al.'s multi-query-optimization maintenance work.
//
// `wuw_shell update` prints the report before executing; explain_golden_test
// pins the exact rendering for the exp1/exp4 fixtures.
#ifndef WUW_OBS_EXPLAIN_H_
#define WUW_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "obs/plan_observation.h"

namespace wuw {

class Warehouse;

namespace obs {

struct ExplainOptions {
  /// Mirror of ExecutorOptions::skip_empty_delta_terms for the replay.
  bool skip_empty_delta_terms = false;
  /// Mirror of ExecutorOptions::simplify_empty_deltas for the replay.
  bool simplify_empty_deltas = false;
  /// Attach a scratch SubplanCache of this budget to the replay so
  /// cross-term reuse shows up as "(cached)" nodes.  The scratch cache is
  /// private to the EXPLAIN run — never the caller's cache, whose contents
  /// would otherwise leak hits into (or out of) the diagnostic replay.
  bool with_subplan_cache = false;
  /// Byte budget of the scratch cache (<0 unbounded, 0 admits nothing).
  int64_t cache_budget = -1;
};

/// One strategy step as EXPLAIN reports it.
struct ExplainStep {
  std::string expression;
  /// Def 3.5 linear work the step performed (analytic, budget-invariant).
  int64_t linear_work = 0;
};

struct ExplainReport {
  /// The executed ordering (post-simplification when enabled).
  std::vector<ExplainStep> steps;
  /// Per-Comp plan DAGs with estimates and measurements, in step order.
  std::vector<CompPlanObservation> comps;
  int64_t total_linear_work = 0;

  /// The full human-readable report (what wuw_shell prints and
  /// explain_golden_test pins).  Deterministic for a given (state,
  /// strategy, options): no wall times, no addresses.
  std::string ToString() const;
};

/// Replays `strategy` on warehouse.Clone() with a fresh ThreadPool(1) and
/// collects the report.  The strategy must be executable against the
/// pending batch (the real run's validation result applies — EXPLAIN does
/// not re-validate).
ExplainReport ExplainStrategy(const Warehouse& warehouse,
                              const Strategy& strategy,
                              const ExplainOptions& options = {});

}  // namespace obs
}  // namespace wuw

#endif  // WUW_OBS_EXPLAIN_H_
