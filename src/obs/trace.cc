#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wuw {
namespace obs {

namespace internal {
std::atomic<int> g_tracing_armed{0};
}  // namespace internal

namespace {

/// Global completed-span buffer, never destroyed (safe at any exit order;
/// the WUW_TRACE atexit hook still reads it).
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int64_t dropped = 0;
};

TraceBuffer& TheBuffer() {
  static TraceBuffer* b = new TraceBuffer;
  return *b;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Small stable per-thread index for timeline attribution: assigned on the
/// thread's first span, in arming-era arrival order.
std::atomic<int> g_next_tid{0};
thread_local int tls_tid = -1;
thread_local int tls_depth = 0;

int ThisThreadTid() {
  if (tls_tid < 0) tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tls_tid;
}

void SortForDisplay(std::vector<TraceEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.depth < b.depth;
                   });
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Resolves the WUW_TRACE path: trailing '/' means "directory", and the
/// file name gains the pid so parallel test runners never collide.
std::string TraceEnvPath() {
  const char* env = std::getenv("WUW_TRACE");
  if (env == nullptr || *env == '\0') return "";
  std::string path = env;
  if (path.back() == '/') {
    path += "trace-" + std::to_string(static_cast<long long>(getpid())) +
            ".json";
  }
  return path;
}

void WriteTraceAtExit() {
  std::string path = TraceEnvPath();
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // exit hook: nothing sane to report to
  std::string json = ChromeTraceJson(DrainTrace());
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

/// Static-init arming so every binary (tests under ctest included) honors
/// WUW_TRACE without per-main plumbing.
struct EnvArmer {
  EnvArmer() { ArmTracingFromEnv(); }
};
EnvArmer g_env_armer;

}  // namespace

void ArmTracing() {
  internal::g_tracing_armed.store(1, std::memory_order_relaxed);
}

void DisarmTracing() {
  internal::g_tracing_armed.store(0, std::memory_order_relaxed);
}

bool TracingArmed() {
  return internal::g_tracing_armed.load(std::memory_order_relaxed) != 0;
}

size_t TraceEventCount() {
  TraceBuffer& b = TheBuffer();
  std::lock_guard<std::mutex> lock(b.mu);
  return b.events.size();
}

std::vector<TraceEvent> TraceSince(size_t since) {
  TraceBuffer& b = TheBuffer();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    if (since < b.events.size()) {
      out.assign(b.events.begin() + static_cast<ptrdiff_t>(since),
                 b.events.end());
    }
  }
  SortForDisplay(&out);
  return out;
}

std::vector<TraceEvent> DrainTrace() {
  TraceBuffer& b = TheBuffer();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    out.swap(b.events);
    b.dropped = 0;
  }
  SortForDisplay(&out);
  return out;
}

int64_t DroppedTraceEvents() {
  TraceBuffer& b = TheBuffer();
  std::lock_guard<std::mutex> lock(b.mu);
  return b.dropped;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"ph\":\"X\",\"pid\":1,";
    std::snprintf(buf, sizeof(buf), "\"tid\":%d,\"ts\":%lld,\"dur\":%lld,",
                  e.tid, static_cast<long long>(e.start_us),
                  static_cast<long long>(e.duration_us));
    out += buf;
    out += "\"cat\":\"";
    AppendJsonEscaped(e.category, &out);
    out += "\",\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += "\"}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string HumanTimeline(const std::vector<TraceEvent>& events) {
  if (events.empty()) return "";
  // Relative timestamps read better than steady-clock epochs.
  int64_t t0 = events.front().start_us;
  for (const TraceEvent& e : events) t0 = std::min(t0, e.start_us);
  std::string out;
  char buf[96];
  int last_tid = -1;
  for (const TraceEvent& e : events) {
    if (e.tid != last_tid) {
      std::snprintf(buf, sizeof(buf), "thread %d\n", e.tid);
      out += buf;
      last_tid = e.tid;
    }
    std::snprintf(buf, sizeof(buf), "  %8.3fms %8.3fms ",
                  static_cast<double>(e.start_us - t0) / 1000.0,
                  static_cast<double>(e.duration_us) / 1000.0);
    out += buf;
    out.append(static_cast<size_t>(e.depth) * 2, ' ');
    out += e.category;
    out += ": ";
    out += e.name;
    out += "\n";
  }
  return out;
}

void ArmTracingFromEnv() {
  static bool registered = [] {
    if (TraceEnvPath().empty()) return false;
    ArmTracing();
    std::atexit(WriteTraceAtExit);
    return true;
  }();
  (void)registered;
}

void TraceSpan::Begin(const char* category, std::string name) {
  active_ = true;
  category_ = category;
  name_ = std::move(name);
  tid_ = ThisThreadTid();
  depth_ = tls_depth++;
  start_us_ = NowMicros();
}

void TraceSpan::End() {
  int64_t end_us = NowMicros();
  --tls_depth;
  TraceBuffer& b = TheBuffer();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= kMaxTraceEvents) {
    ++b.dropped;
    return;
  }
  TraceEvent e;
  e.name = std::move(name_);
  e.category = category_;
  e.tid = tid_;
  e.depth = depth_;
  e.start_us = start_us_;
  e.duration_us = end_us - start_us_;
  b.events.push_back(std::move(e));
}

}  // namespace obs
}  // namespace wuw
