#include "obs/metrics.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/check.h"

namespace wuw {
namespace obs {

namespace internal {
std::atomic<int> g_metrics_armed{0};
thread_local bool g_in_serve_scope = false;
}  // namespace internal

/// Private constructor access + registry state, never destroyed (safe at
/// any exit order, like ThreadPool::Global).
class RegistryAccess {
 public:
  static Counter* Make(std::string name, MetricClass c) {
    return new Counter(std::move(name), c);
  }
  static void Reset(Counter* counter) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
};

namespace {

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Counter*> by_name;
};

Registry& TheRegistry() {
  static Registry* r = new Registry;
  return *r;
}

/// Resolves the WUW_METRICS path: a trailing '/' means "directory", and
/// the file name gains the pid so parallel test runners never collide.
std::string MetricsEnvPath() {
  const char* env = std::getenv("WUW_METRICS");
  if (env == nullptr || *env == '\0') return "";
  std::string path = env;
  if (path.back() == '/') {
    path += "metrics-" + std::to_string(static_cast<long long>(getpid())) +
            ".txt";
  }
  return path;
}

void WriteMetricsAtExit() {
  std::string path = MetricsEnvPath();
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // exit hook: nothing sane to report to
  std::string text = SnapshotMetrics(kDeterministicMask).ToString();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

/// Static-init arming so every binary (tests under ctest included) honors
/// WUW_METRICS without per-main plumbing.
struct EnvArmer {
  EnvArmer() { ArmMetricsFromEnv(); }
};
EnvArmer g_env_armer;

}  // namespace

Counter* GetCounter(const std::string& name, MetricClass c) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) {
    WUW_CHECK(it->second->metric_class() == c,
              ("metric re-registered with a different class: " + name)
                  .c_str());
    return it->second;
  }
  Counter* counter = RegistryAccess::Make(name, c);
  r.by_name.emplace(name, counter);
  return counter;
}

void ArmMetrics() {
  internal::g_metrics_armed.store(1, std::memory_order_relaxed);
}

void DisarmMetrics() {
  internal::g_metrics_armed.store(0, std::memory_order_relaxed);
}

bool MetricsArmed() {
  return internal::g_metrics_armed.load(std::memory_order_relaxed) != 0;
}

void ResetMetrics() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, counter] : r.by_name) RegistryAccess::Reset(counter);
}

MetricsSnapshot SnapshotMetrics(MetricMask classes) {
  Registry& r = TheRegistry();
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& [name, counter] : r.by_name) {
      if ((Mask(counter->metric_class()) & classes) == 0) continue;
      int64_t v = counter->value();
      if (v == 0) continue;
      snapshot.counters.emplace_back(name, v);
    }
  }
  std::sort(snapshot.counters.begin(), snapshot.counters.end());
  return snapshot;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  char line[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "%-40s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  return out;
}

void ArmMetricsFromEnv() {
  static bool registered = [] {
    if (MetricsEnvPath().empty()) return false;
    ArmMetrics();
    std::atexit(WriteMetricsAtExit);
    return true;
  }();
  (void)registered;
}

}  // namespace obs
}  // namespace wuw
