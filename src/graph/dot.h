// Graphviz DOT rendering for VDAGs and expression graphs — documentation
// and debugging aids (the paper's Figures 3, 4, 7 and 16 are exactly these
// drawings).
#ifndef WUW_GRAPH_DOT_H_
#define WUW_GRAPH_DOT_H_

#include <string>
#include <vector>

#include "core/expression_graph.h"
#include "graph/vdag.h"

namespace wuw {

/// DOT digraph of the VDAG: edges point from each derived view to the
/// views it is defined over (as in Figures 1-4).
std::string VdagToDot(const Vdag& vdag);

/// DOT digraph of an expression graph: an edge E_j -> E_i means E_j must
/// follow E_i (as in Figures 7 and 16).  Cyclic graphs render fine — the
/// cycle is the interesting part.
std::string ExpressionGraphToDot(const Vdag& vdag,
                                 const std::vector<std::string>& ordering,
                                 bool strong = false);

}  // namespace wuw

#endif  // WUW_GRAPH_DOT_H_
