// The view DAG (VDAG) of Section 2: the warehouse's views and their
// defined-over relationships.
//
// Base views (dimension/fact tables derived from remote sources) carry a
// schema; derived views (summary tables) carry a ViewDefinition over other
// views.  An edge Vj -> Vi means Vj is defined over Vi.
#ifndef WUW_GRAPH_VDAG_H_
#define WUW_GRAPH_VDAG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "view/view_definition.h"

namespace wuw {

/// A warehouse's view graph.  Immutable once built (views are appended in
/// dependency order: every source must already be registered).
class Vdag {
 public:
  Vdag() = default;

  /// Registers a base view with its schema.
  void AddBaseView(const std::string& name, Schema schema);

  /// Registers a derived view; all its sources must already exist.
  void AddDerivedView(std::shared_ptr<const ViewDefinition> def);

  size_t num_views() const { return names_.size(); }
  /// View names in registration order (a valid bottom-up order).
  const std::vector<std::string>& view_names() const { return names_; }

  bool HasView(const std::string& name) const;
  bool IsBaseView(const std::string& name) const;
  bool IsDerivedView(const std::string& name) const {
    return HasView(name) && !IsBaseView(name);
  }

  /// Definition of a derived view (aborts for base views).
  const std::shared_ptr<const ViewDefinition>& definition(
      const std::string& name) const;

  /// Views `name` is defined over (empty for base views).
  const std::vector<std::string>& sources(const std::string& name) const;

  /// Views defined over `name` ("parents": the consumers of δname).
  const std::vector<std::string>& parents(const std::string& name) const;

  /// Output schema of any view (base schema or definition output schema),
  /// resolved recursively and cached.
  const Schema& OutputSchema(const std::string& name) const;

  /// Level(V): maximum distance to a base view (Section 2).
  int Level(const std::string& name) const;
  int MaxLevel() const;

  /// Tree VDAG (Def 5.1): no view is used in the definition of more than
  /// one other view.
  bool IsTree() const;

  /// Uniform VDAG (Def 5.2): every derived view at level i is defined only
  /// over views at level i-1.
  bool IsUniform() const;

  /// Derived views in bottom-up (source-before-consumer) order.
  std::vector<std::string> DerivedViewsBottomUp() const;

  /// Base view names in registration order.
  std::vector<std::string> BaseViews() const;

  /// Views with at least one parent — the m views whose install position
  /// matters (Section 6's m! optimization of Prune).
  std::vector<std::string> ViewsWithParents() const;

  std::string ToString() const;

 private:
  struct Node {
    std::string name;
    bool is_base;
    Schema base_schema;  // base views only
    std::shared_ptr<const ViewDefinition> def;  // derived views only
    std::vector<std::string> sources;
    std::vector<std::string> parents;
    int level = 0;
  };

  const Node& node(const std::string& name) const;
  Node& node(const std::string& name);

  std::vector<std::string> names_;
  std::unordered_map<std::string, Node> nodes_;
  mutable std::unordered_map<std::string, Schema> schema_cache_;
};

}  // namespace wuw

#endif  // WUW_GRAPH_VDAG_H_
