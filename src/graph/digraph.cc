#include "graph/digraph.h"

#include <algorithm>
#include <cstdint>
#include <queue>

namespace wuw {

Digraph::Digraph(size_t num_nodes) : deps_(num_nodes) {}

void Digraph::AddEdge(size_t node, size_t prerequisite) {
  deps_[node].push_back(prerequisite);
}

std::optional<std::vector<size_t>> Digraph::TopologicalSort() const {
  const size_t n = deps_.size();
  // dependents[v] = nodes that depend on v; indegree = #prerequisites.
  std::vector<std::vector<size_t>> dependents(n);
  std::vector<size_t> indegree(n, 0);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v : deps_[u]) {
      dependents[v].push_back(u);
      ++indegree[u];
    }
  }
  std::priority_queue<size_t, std::vector<size_t>, std::greater<>> ready;
  for (size_t u = 0; u < n; ++u) {
    if (indegree[u] == 0) ready.push(u);
  }
  std::vector<size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    size_t u = ready.top();
    ready.pop();
    order.push_back(u);
    for (size_t w : dependents[u]) {
      if (--indegree[w] == 0) ready.push(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool Digraph::HasCycle() const { return !TopologicalSort().has_value(); }

std::vector<size_t> Digraph::FindCycle() const {
  const size_t n = deps_.size();
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(n, kWhite);
  std::vector<size_t> parent(n, SIZE_MAX);

  // Iterative DFS over prerequisite edges.
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<size_t, size_t>> stack;  // (node, next child idx)
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [u, child] = stack.back();
      if (child < deps_[u].size()) {
        size_t v = deps_[u][child++];
        if (color[v] == kWhite) {
          color[v] = kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == kGray) {
          // Found a cycle v -> ... -> u -> v (u depends on v).
          std::vector<size_t> cycle;
          size_t w = u;
          cycle.push_back(v);
          while (w != v && w != SIZE_MAX) {
            cycle.push_back(w);
            w = parent[w];
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace wuw
