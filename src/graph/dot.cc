#include "graph/dot.h"

namespace wuw {

namespace {

std::string Quote(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

std::string VdagToDot(const Vdag& vdag) {
  std::string out = "digraph vdag {\n  rankdir=BT;\n";
  for (const std::string& name : vdag.view_names()) {
    out += "  " + Quote(name);
    if (vdag.IsBaseView(name)) {
      out += " [shape=box]";
    } else {
      out += " [shape=ellipse, label=" +
             Quote(name + "\\nlevel " + std::to_string(vdag.Level(name))) +
             "]";
    }
    out += ";\n";
  }
  for (const std::string& name : vdag.DerivedViewsBottomUp()) {
    for (const std::string& src : vdag.sources(name)) {
      out += "  " + Quote(name) + " -> " + Quote(src) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string ExpressionGraphToDot(const Vdag& vdag,
                                 const std::vector<std::string>& ordering,
                                 bool strong) {
  ExpressionGraph eg = strong
                           ? ExpressionGraph::ConstructSEG(vdag, ordering)
                           : ExpressionGraph::ConstructEG(vdag, ordering);
  std::string out = "digraph expression_graph {\n";
  out += "  label=\"" + std::string(strong ? "SEG" : "EG") +
         (eg.IsAcyclic() ? " (acyclic)" : " (CYCLIC)") + "\";\n";
  const auto& nodes = eg.nodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=" +
           Quote(nodes[i].ToString()) +
           (nodes[i].is_inst() ? ", shape=box" : "") + "];\n";
  }
  for (size_t u = 0; u < nodes.size(); ++u) {
    for (size_t v : eg.graph().prerequisites(u)) {
      // Paper orientation: an edge from E_j to E_i means E_j follows E_i.
      out += "  n" + std::to_string(u) + " -> n" + std::to_string(v) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace wuw
