// A small directed-graph utility: cycle detection and deterministic
// topological sorting, shared by the VDAG and the expression graphs.
#ifndef WUW_GRAPH_DIGRAPH_H_
#define WUW_GRAPH_DIGRAPH_H_

#include <optional>
#include <vector>

namespace wuw {

/// Directed graph over nodes 0..n-1.  Edges are *dependency* edges:
/// AddEdge(u, v) declares "u depends on v", i.e. v must come before u in
/// any topological order.  (The paper's expression graphs draw an edge from
/// Ej to Ei when Ej must follow Ei — the same orientation.)
class Digraph {
 public:
  explicit Digraph(size_t num_nodes);

  size_t num_nodes() const { return deps_.size(); }

  /// Declares that `node` must come after `prerequisite`.  Duplicate edges
  /// are tolerated.
  void AddEdge(size_t node, size_t prerequisite);

  const std::vector<size_t>& prerequisites(size_t node) const {
    return deps_[node];
  }

  bool HasCycle() const;

  /// Deterministic topological order (prerequisites first; ties broken by
  /// smallest node index).  nullopt if cyclic.
  std::optional<std::vector<size_t>> TopologicalSort() const;

  /// Nodes of one cycle (in order), for diagnostics; empty if acyclic.
  std::vector<size_t> FindCycle() const;

 private:
  std::vector<std::vector<size_t>> deps_;
};

}  // namespace wuw

#endif  // WUW_GRAPH_DIGRAPH_H_
