#include "graph/vdag.h"

#include <algorithm>

#include "common/check.h"

namespace wuw {

void Vdag::AddBaseView(const std::string& name, Schema schema) {
  WUW_CHECK(!HasView(name), ("duplicate view: " + name).c_str());
  Node n;
  n.name = name;
  n.is_base = true;
  n.base_schema = std::move(schema);
  n.level = 0;
  nodes_.emplace(name, std::move(n));
  names_.push_back(name);
}

void Vdag::AddDerivedView(std::shared_ptr<const ViewDefinition> def) {
  WUW_CHECK(def != nullptr, "null view definition");
  const std::string& name = def->name();
  WUW_CHECK(!HasView(name), ("duplicate view: " + name).c_str());
  int level = 0;
  for (const std::string& src : def->sources()) {
    WUW_CHECK(HasView(src),
              ("view defined over unregistered source: " + src).c_str());
    level = std::max(level, node(src).level + 1);
  }
  Node n;
  n.name = name;
  n.is_base = false;
  n.def = def;
  n.sources = def->sources();
  n.level = level;
  nodes_.emplace(name, std::move(n));
  names_.push_back(name);
  for (const std::string& src : def->sources()) {
    node(src).parents.push_back(name);
  }
}

bool Vdag::HasView(const std::string& name) const {
  return nodes_.count(name) > 0;
}

bool Vdag::IsBaseView(const std::string& name) const {
  return node(name).is_base;
}

const Vdag::Node& Vdag::node(const std::string& name) const {
  auto it = nodes_.find(name);
  WUW_CHECK(it != nodes_.end(), ("no such view: " + name).c_str());
  return it->second;
}

Vdag::Node& Vdag::node(const std::string& name) {
  auto it = nodes_.find(name);
  WUW_CHECK(it != nodes_.end(), ("no such view: " + name).c_str());
  return it->second;
}

const std::shared_ptr<const ViewDefinition>& Vdag::definition(
    const std::string& name) const {
  const Node& n = node(name);
  WUW_CHECK(!n.is_base, ("base view has no definition: " + name).c_str());
  return n.def;
}

const std::vector<std::string>& Vdag::sources(const std::string& name) const {
  return node(name).sources;
}

const std::vector<std::string>& Vdag::parents(const std::string& name) const {
  return node(name).parents;
}

const Schema& Vdag::OutputSchema(const std::string& name) const {
  auto it = schema_cache_.find(name);
  if (it != schema_cache_.end()) return it->second;
  const Node& n = node(name);
  Schema schema =
      n.is_base ? n.base_schema
                : n.def->OutputSchema([this](const std::string& src)
                                          -> const Schema& {
                    return OutputSchema(src);
                  });
  return schema_cache_.emplace(name, std::move(schema)).first->second;
}

int Vdag::Level(const std::string& name) const { return node(name).level; }

int Vdag::MaxLevel() const {
  int level = 0;
  for (const std::string& name : names_) {
    level = std::max(level, Level(name));
  }
  return level;
}

bool Vdag::IsTree() const {
  for (const std::string& name : names_) {
    if (node(name).parents.size() > 1) return false;
  }
  return true;
}

bool Vdag::IsUniform() const {
  for (const std::string& name : names_) {
    const Node& n = node(name);
    if (n.is_base) continue;
    for (const std::string& src : n.sources) {
      if (node(src).level != n.level - 1) return false;
    }
  }
  return true;
}

std::vector<std::string> Vdag::DerivedViewsBottomUp() const {
  std::vector<std::string> out;
  for (const std::string& name : names_) {
    if (!node(name).is_base) out.push_back(name);
  }
  return out;  // registration order is already bottom-up
}

std::vector<std::string> Vdag::BaseViews() const {
  std::vector<std::string> out;
  for (const std::string& name : names_) {
    if (node(name).is_base) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Vdag::ViewsWithParents() const {
  std::vector<std::string> out;
  for (const std::string& name : names_) {
    if (!node(name).parents.empty()) out.push_back(name);
  }
  return out;
}

std::string Vdag::ToString() const {
  std::string out;
  for (const std::string& name : names_) {
    const Node& n = node(name);
    out += name + " (level " + std::to_string(n.level) + ")";
    if (!n.is_base) {
      out += " over {";
      for (size_t i = 0; i < n.sources.size(); ++i) {
        if (i > 0) out += ", ";
        out += n.sources[i];
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

}  // namespace wuw
