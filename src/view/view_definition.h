// View definitions: Def(V) in the paper.
//
// The maintainable view language covers the paper's scope — projection,
// selection, equi-join, and SUM/COUNT aggregation (Section 2: "view
// definitions in our model involve projection, selection, join, and
// aggregation operations"), i.e. SELECT-FROM-WHERE-GROUPBY SQL.
//
// A definition lists its sources (other warehouse views, base or derived),
// an equi-join graph over their columns, a conjunctive filter, and either a
// plain projection (SPJ view) or group-by keys plus aggregates (summary
// table).  Column names must be globally unique across the sources of one
// definition, which TPC-D's per-table prefixes guarantee; use
// ViewDefinitionBuilder::RenameSource to disambiguate self-joins.
#ifndef WUW_VIEW_VIEW_DEFINITION_H_
#define WUW_VIEW_VIEW_DEFINITION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/project.h"
#include "expr/scalar_expr.h"
#include "storage/schema.h"

namespace wuw {

/// An equi-join edge between two columns of (different) sources.  Columns
/// are identified by name; the binder locates which source owns each.
struct JoinCondition {
  std::string left_column;
  std::string right_column;
};

/// Def(V): everything needed to recompute V or to evaluate any maintenance
/// term of V.
class ViewDefinition {
 public:
  /// Resolves a source view's schema by name (provided by the Vdag).
  using SchemaResolver = std::function<const Schema&(const std::string&)>;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& sources() const { return sources_; }
  const std::vector<JoinCondition>& joins() const { return joins_; }
  const std::vector<ScalarExpr::Ptr>& filters() const { return filters_; }
  const std::vector<ProjectItem>& projections() const { return projections_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  bool is_aggregate() const { return !aggregates_.empty(); }

  /// Number of underlying views n; a view over n sources has
  /// 2^|Y|-1 maintenance terms per Comp(V, Y) expression.
  size_t num_sources() const { return sources_.size(); }

  /// Position of `source` in sources(); -1 if absent.
  int SourceIndex(const std::string& source) const;

  /// Output schema: projection columns for SPJ views; group keys +
  /// aggregate columns + the hidden "__count" column for aggregate views.
  Schema OutputSchema(const SchemaResolver& resolver) const;

  /// Group-key column names (aggregate views only).
  std::vector<std::string> GroupKeyNames() const;

  std::string ToString() const;

 private:
  friend class ViewDefinitionBuilder;
  ViewDefinition() = default;

  std::string name_;
  std::vector<std::string> sources_;
  std::vector<JoinCondition> joins_;
  std::vector<ScalarExpr::Ptr> filters_;
  // SPJ output (exclusive with aggregates_ + group keys in projections_):
  // for aggregate views, projections_ holds the group-by key items.
  std::vector<ProjectItem> projections_;
  std::vector<AggSpec> aggregates_;
};

/// Fluent builder for ViewDefinition.
class ViewDefinitionBuilder {
 public:
  explicit ViewDefinitionBuilder(std::string view_name);

  /// Appends a source view.  The join order of maintenance terms follows
  /// this order (left-deep), mirroring a stored procedure's fixed plan.
  ViewDefinitionBuilder& From(const std::string& source);

  /// Adds an equi-join condition between two columns of two sources.
  ViewDefinitionBuilder& JoinOn(const std::string& left_column,
                                const std::string& right_column);

  /// Adds a conjunct to the WHERE clause.
  ViewDefinitionBuilder& Where(ScalarExpr::Ptr conjunct);

  /// Adds an SPJ output column (or a group-by key if aggregates are added).
  ViewDefinitionBuilder& Select(ScalarExpr::Ptr expr, const std::string& name);
  ViewDefinitionBuilder& SelectColumn(const std::string& column);
  ViewDefinitionBuilder& SelectColumn(const std::string& column,
                                      const std::string& as);

  /// Adds SUM(arg) AS name.
  ViewDefinitionBuilder& Sum(ScalarExpr::Ptr arg, const std::string& name);
  /// Adds COUNT(*) AS name.
  ViewDefinitionBuilder& Count(const std::string& name);

  std::shared_ptr<const ViewDefinition> Build();

 private:
  std::unique_ptr<ViewDefinition> def_;
};

}  // namespace wuw

#endif  // WUW_VIEW_VIEW_DEFINITION_H_
