// Per-view maintenance state during a strategy execution.
//
// "We assume that the changes computed by the various Comp expressions for
// V are gathered in delta relation δV, and eventually installed together by
// Inst(V)" (Section 3.1).  DeltaAccumulator is that gathering point: Comp
// results accumulate as raw rows; the first consumer of δV (a parent's Comp
// or Inst(V)) triggers finalization, after which further Comp accumulation
// is a contract violation (correct strategies never do it — conditions
// C4/C5/C8 — and the executor enforces it).
#ifndef WUW_VIEW_MAINTENANCE_H_
#define WUW_VIEW_MAINTENANCE_H_

#include <memory>
#include <mutex>

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "delta/delta_relation.h"
#include "storage/table.h"
#include "view/view_definition.h"

namespace wuw {

/// Accumulates the raw delta of one derived view across its Comp
/// expressions and finalizes it into an installable DeltaRelation.
///
/// Thread-safe: concurrent Comp expressions of one view (a parallel
/// dual-stage stage) may Accumulate concurrently, and concurrent parents
/// may race to Finalize; an internal mutex serializes both.
class DeltaAccumulator {
 public:
  DeltaAccumulator(std::shared_ptr<const ViewDefinition> def, Schema raw_schema,
                   Schema output_schema);

  /// Absorbs the raw delta of one Comp expression.  Aborts if δV was
  /// already finalized (strategy ordering violation).
  void Accumulate(Rows raw);

  /// Returns the finalized view-level delta, computing it on first use
  /// against `current` (the view's pre-install extent).
  const DeltaRelation& Finalize(const Table& current, OperatorStats* stats);

  /// Recovery path (exec/recovery.h): installs a journaled finalized delta
  /// directly.  After an interrupted run's Inst(V) is replayed, V's extent
  /// is post-install, so recomputing δV from raw rows would finalize
  /// against the wrong extent — the journal supplies the original value
  /// instead.  Aborts if δV was already finalized.
  void RestoreFinalized(DeltaRelation final_delta);

  bool finalized() const { return finalized_; }

  /// Number of raw rows gathered so far (diagnostics).
  int64_t raw_size() const { return static_cast<int64_t>(raw_.rows.size()); }

  /// Clears all state for the next update batch.
  void Reset();

 private:
  std::shared_ptr<const ViewDefinition> def_;
  std::mutex mutex_;
  Schema raw_schema_;
  Schema output_schema_;
  Rows raw_;
  bool finalized_ = false;
  DeltaRelation final_;
};

}  // namespace wuw

#endif  // WUW_VIEW_MAINTENANCE_H_
