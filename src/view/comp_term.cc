#include "view/comp_term.h"

#include <algorithm>

#include "common/check.h"
#include "exec/window_budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "plan/aux_view.h"
#include "plan/plan_executor.h"
#include "stats/plan_cardinality.h"
#include "view/join_pipeline.h"

namespace wuw {

CompEvalResult EvalComp(const ViewDefinition& def,
                        const std::vector<std::string>& over,
                        const Catalog& catalog, const DeltaProvider& deltas,
                        const CompEvalOptions& options, OperatorStats* stats) {
  WUW_CHECK(!over.empty(), "Comp requires a non-empty view set Y");
  WUW_CHECK(options.subplan_cache == nullptr ||
                options.extent_version != nullptr,
            "a subplan cache needs extent versions for sound keys");
  obs::TraceSpan span("view", [&] { return "Comp(" + def.name() + ")"; });
  WUW_METRIC_ADD("comp.evals", obs::MetricClass::kWork, 1);

  // Map Y members to source positions.
  std::vector<size_t> over_idx;
  for (const std::string& name : over) {
    int i = def.SourceIndex(name);
    WUW_CHECK(i >= 0, ("Comp over non-source view: " + name).c_str());
    over_idx.push_back(static_cast<size_t>(i));
  }

  const size_t n = def.num_sources();
  std::vector<const Table*> tables(n);
  for (size_t i = 0; i < n; ++i) {
    tables[i] = catalog.MustGetTable(def.sources()[i]);
  }
  std::vector<const DeltaRelation*> delta_of(n, nullptr);
  for (size_t k = 0; k < over_idx.size(); ++k) {
    delta_of[over_idx[k]] = deltas(over[k]);
    WUW_CHECK(delta_of[over_idx[k]] != nullptr,
              ("no delta available for view: " + over[k]).c_str());
  }

  auto resolver = [&](const std::string& name) -> const Schema& {
    return catalog.MustGetTable(name)->schema();
  };

  // Select the terms to evaluate.  Subset masks 1 .. 2^m-1: bit k set →
  // over[k] contributes its delta.
  const size_t m = over_idx.size();
  std::vector<uint64_t> masks;
  for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
    if (options.skip_empty_delta_terms) {
      // A term joins the deltas of its selected views: one empty delta
      // operand makes the whole term empty.
      bool any_empty = false;
      for (size_t k = 0; k < m; ++k) {
        if ((mask >> k & 1) && delta_of[over_idx[k]]->empty()) {
          any_empty = true;
          break;
        }
      }
      if (any_empty) continue;
    }
    masks.push_back(mask);
  }

  // Lower every term into ONE plan DAG.  Leaves for the same operand and
  // shared join prefixes intern to the same node, which is where the
  // cross-term CSE happens; the DAG also records the analytic per-term
  // operand work (Def 3.5's linear metric), which execution never changes.
  PlanDag dag;
  std::vector<PlanNodeId> roots(masks.size());
  std::vector<int64_t> term_work(masks.size(), 0);
  const int64_t epoch = options.batch_epoch;
  auto version_of = [&](const std::string& name) {
    return options.extent_version ? options.extent_version(name) : 0;
  };
  for (size_t slot = 0; slot < masks.size(); ++slot) {
    uint64_t mask = masks[slot];
    std::vector<bool> use_delta(n, false);
    for (size_t k = 0; k < m; ++k) {
      if (mask >> k & 1) use_delta[over_idx[k]] = true;
    }
    // WUW_AUX_VIEWS rewrite pass: a term whose leading operands are all
    // extents matching a binding's version stamps scans the materialized
    // prefix instead of re-joining it (plan/aux_view.h).  The stamps are
    // re-validated per term, so a binding invalidated by a mid-strategy
    // Inst of a covered source silently lowers the standard way.
    const AuxTermBinding* aux = nullptr;
    if (options.aux_bindings != nullptr && options.extent_version != nullptr) {
      aux = FindAuxBinding(*options.aux_bindings, def, use_delta, version_of,
                           catalog);
    }
    const size_t first = aux != nullptr ? aux->prefix_len : 0;
    std::vector<PlanNodeId> inputs;
    inputs.reserve(n - first);
    for (size_t i = first; i < n; ++i) {
      const std::string& src = def.sources()[i];
      if (use_delta[i]) {
        inputs.push_back(dag.InternDeltaScan(src, *delta_of[i], epoch));
        term_work[slot] += delta_of[i]->AbsCardinality();
      } else {
        inputs.push_back(
            dag.InternTableScan(src, *tables[i], version_of(src), epoch));
        term_work[slot] += tables[i]->cardinality();
      }
    }
    if (aux != nullptr) {
      const Table* aux_table = catalog.MustGetTable(aux->aux_view);
      term_work[slot] += aux_table->cardinality();
      PlanNodeId prefix = dag.InternTableScan(
          aux->aux_view, *aux_table, version_of(aux->aux_view), epoch);
      std::vector<const Schema*> schemas;
      schemas.reserve(n);
      for (size_t i = 0; i < n; ++i) schemas.push_back(&tables[i]->schema());
      roots[slot] = BuildRawProjectionPlan(
          def,
          BuildJoinPlanFromPrefix(def, schemas, prefix, aux->prefix_len,
                                  inputs, &dag),
          &dag);
      WUW_METRIC_ADD("aux.term_substitutions", obs::MetricClass::kWork, 1);
    } else {
      roots[slot] = BuildRawProjectionPlan(
          def, BuildJoinPlan(def, inputs, &dag), &dag);
    }
  }

  // An attached observer needs deterministic per-node runtimes, so its
  // evaluation is forced fully sequential (no term workers, no pool);
  // rows and OperatorStats are pool-size-invariant anyway.
  ThreadPool* pool = options.observer != nullptr ? nullptr : options.pool;
  PlanExecutor exec(dag, options.subplan_cache, pool, options.cancel);
  std::vector<PlanNodeRuntime> runtime;
  if (options.observer != nullptr) {
    runtime.resize(dag.size());
    exec.set_runtime(&runtime);
  }
  OperatorStats prepare_stats;
  if (options.subplan_cache != nullptr || options.observer != nullptr) {
    // Annotate recompute costs so eviction keeps the expensive subplans
    // (and EXPLAIN can print estimates), then — under a cache —
    // materialize everything the terms share before fanning out.
    AnnotatePlanCardinality(&dag);
  }
  bool annotated = options.subplan_cache != nullptr ||
                   options.observer != nullptr;
  if (options.subplan_cache != nullptr) {
    exec.PrepareShared(roots, &prepare_stats);
  }

  struct TermResult {
    Rows raw;
    OperatorStats stats;
  };
  std::vector<TermResult> term_results(masks.size());

  auto eval_term = [&](size_t slot) {
    // Copy out of the shared handle: tuples are COW, so this only bumps
    // refcounts, and the merge below may then move tuples freely.
    term_results[slot].raw = *exec.Execute(roots[slot],
                                           &term_results[slot].stats);
  };

  int workers =
      options.observer != nullptr ? 1 : std::max(1, options.term_workers);
  if (workers == 1 || masks.size() <= 1 || pool == nullptr) {
    for (size_t slot = 0; slot < masks.size(); ++slot) {
      if (options.cancel != nullptr) options.cancel->Check();
      eval_term(slot);
    }
  } else {
    // Terms are independent: after PrepareShared the executor's memo is
    // read-only and the cache locks internally, so workers only share
    // immutable state.  Term slots are claimed from the shared pool (so
    // stage-level, term-level, and morsel-level parallelism draw from one
    // set of threads); a term that throws (injected fault) stops the rest
    // and rethrows here, so a mid-term death unwinds out of EvalComp like
    // a sequential one.
    pool->ParallelTasks(masks.size(), workers, eval_term, options.cancel);
  }

  // Merge in mask order: deterministic results regardless of scheduling.
  CompEvalResult result;
  result.raw_delta = Rows(RawSchema(def, resolver));
  if (stats != nullptr) *stats += prepare_stats;
  for (size_t slot = 0; slot < masks.size(); ++slot) {
    TermResult& term = term_results[slot];
    for (auto& [tuple, count] : term.raw.rows) {
      result.raw_delta.Add(std::move(tuple), count);
    }
    result.linear_operand_work += term_work[slot];
    if (stats != nullptr) *stats += term.stats;
    ++result.num_terms;
  }

  WUW_METRIC_ADD("comp.terms", obs::MetricClass::kWork, result.num_terms);
  WUW_METRIC_ADD("comp.terms_skipped", obs::MetricClass::kWork,
                 static_cast<int64_t>((uint64_t{1} << m) - 1 - masks.size()));
  WUW_METRIC_ADD("comp.linear_operand_work", obs::MetricClass::kWork,
                 result.linear_operand_work);

  if (options.observer != nullptr && options.observer->on_comp != nullptr) {
    obs::CompPlanObservation observation;
    observation.num_terms = result.num_terms;
    observation.nodes.reserve(dag.size());
    for (size_t id = 0; id < dag.size(); ++id) {
      const PlanNode& n = dag.node(static_cast<PlanNodeId>(id));
      obs::PlanNodeObservation record;
      record.id = static_cast<int32_t>(id);
      record.children.assign(n.children.begin(), n.children.end());
      record.label = PlanNodeLabel(n);
      record.num_uses = n.num_uses;
      record.cacheable = n.cacheable;
      record.est_rows =
          annotated ? (n.is_leaf() ? static_cast<double>(n.input_rows)
                                   : n.est_output_rows)
                    : -1;
      record.measured_rows = runtime[id].rows;
      record.from_cache = runtime[id].from_cache;
      observation.nodes.push_back(std::move(record));
    }
    observation.term_roots.assign(roots.begin(), roots.end());
    options.observer->on_comp(std::move(observation));
  }
  return result;
}

}  // namespace wuw
