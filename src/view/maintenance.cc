#include "view/maintenance.h"

#include "common/check.h"
#include "delta/summary_delta.h"

namespace wuw {

DeltaAccumulator::DeltaAccumulator(std::shared_ptr<const ViewDefinition> def,
                                   Schema raw_schema, Schema output_schema)
    : def_(std::move(def)),
      raw_schema_(std::move(raw_schema)),
      output_schema_(std::move(output_schema)),
      raw_(raw_schema_) {}

void DeltaAccumulator::Accumulate(Rows raw) {
  std::lock_guard<std::mutex> lock(mutex_);
  WUW_CHECK(!finalized_,
            "Comp after delta finalization: the strategy violates C4/C8");
  raw_.rows.insert(raw_.rows.end(),
                   std::make_move_iterator(raw.rows.begin()),
                   std::make_move_iterator(raw.rows.end()));
}

const DeltaRelation& DeltaAccumulator::Finalize(const Table& current,
                                                OperatorStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return final_;
  if (def_->is_aggregate()) {
    final_ = FinalizeAggregateDelta(*def_, current, raw_, stats);
  } else {
    final_ = FinalizeSpjDelta(output_schema_, raw_, stats);
  }
  finalized_ = true;
  raw_ = Rows(raw_schema_);  // release memory
  return final_;
}

void DeltaAccumulator::RestoreFinalized(DeltaRelation final_delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  WUW_CHECK(!finalized_, "RestoreFinalized over a live finalized delta");
  final_ = std::move(final_delta);
  finalized_ = true;
  raw_ = Rows(raw_schema_);
}

void DeltaAccumulator::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  raw_ = Rows(raw_schema_);
  finalized_ = false;
  final_ = DeltaRelation(output_schema_);
}

}  // namespace wuw
