#include "view/validate.h"

#include <set>

namespace wuw {

namespace {

std::string CheckColumns(const std::string& where,
                         const ScalarExpr::Ptr& expr, const Schema& combined,
                         const std::string& view) {
  if (expr == nullptr) return "view " + view + ": null expression in " + where;
  for (const std::string& col : expr->ReferencedColumns()) {
    if (!combined.HasColumn(col)) {
      return "view " + view + ": unknown column '" + col + "' in " + where;
    }
  }
  return "";
}

}  // namespace

std::string ValidateDefinition(
    const ViewDefinition& def,
    const ViewDefinition::SchemaResolver& resolver) {
  const std::string& view = def.name();
  if (def.sources().empty()) return "view " + view + ": no sources";

  // Column-name uniqueness across the combined input schema.
  std::set<std::string> seen;
  std::vector<Column> combined_columns;
  for (const std::string& src : def.sources()) {
    const Schema& schema = resolver(src);
    for (const Column& c : schema.columns()) {
      if (!seen.insert(c.name).second) {
        return "view " + view + ": column '" + c.name +
               "' appears in more than one source (rename to disambiguate)";
      }
      combined_columns.push_back(c);
    }
  }
  Schema combined(std::move(combined_columns));

  // Which source owns a column (by position ranges).
  auto owner_of = [&](const std::string& col) -> std::string {
    for (const std::string& src : def.sources()) {
      if (resolver(src).HasColumn(col)) return src;
    }
    return "";
  };

  for (const JoinCondition& jc : def.joins()) {
    if (!combined.HasColumn(jc.left_column)) {
      return "view " + view + ": unknown join column '" + jc.left_column +
             "'";
    }
    if (!combined.HasColumn(jc.right_column)) {
      return "view " + view + ": unknown join column '" + jc.right_column +
             "'";
    }
    if (owner_of(jc.left_column) == owner_of(jc.right_column)) {
      return "view " + view + ": join condition " + jc.left_column + " = " +
             jc.right_column + " does not span two sources";
    }
  }
  for (const ScalarExpr::Ptr& f : def.filters()) {
    std::string err = CheckColumns("WHERE", f, combined, view);
    if (!err.empty()) return err;
  }
  if (def.projections().empty()) {
    return "view " + view + ": no output columns";
  }
  std::set<std::string> output_names;
  for (const ProjectItem& item : def.projections()) {
    std::string err = CheckColumns("SELECT", item.expr, combined, view);
    if (!err.empty()) return err;
    if (!output_names.insert(item.name).second) {
      return "view " + view + ": duplicate output column '" + item.name +
             "'";
    }
  }
  for (const AggSpec& agg : def.aggregates()) {
    if (agg.fn == AggFn::kSum) {
      std::string err = CheckColumns("SUM", agg.arg, combined, view);
      if (!err.empty()) return err;
    }
    if (!output_names.insert(agg.name).second) {
      return "view " + view + ": duplicate output column '" + agg.name + "'";
    }
    if (agg.name == kGroupCountColumn) {
      return "view " + view + ": '" + std::string(kGroupCountColumn) +
             "' is reserved";
    }
  }
  return "";
}

std::string ValidateVdag(const Vdag& vdag) {
  for (const std::string& name : vdag.DerivedViewsBottomUp()) {
    std::string err = ValidateDefinition(
        *vdag.definition(name), [&](const std::string& src) -> const Schema& {
          return vdag.OutputSchema(src);
        });
    if (!err.empty()) return err;
  }
  return "";
}

}  // namespace wuw
