#include "view/join_pipeline.h"

#include "common/check.h"
#include "expr/evaluator.h"
#include "plan/plan_executor.h"

namespace wuw {

namespace {

/// Index of the single source whose schema contains all `columns`, or -1 if
/// they span sources (or reference nothing).
int SingleSourceOf(const std::vector<const Schema*>& inputs,
                   const std::vector<std::string>& columns) {
  int found = -1;
  for (const std::string& col : columns) {
    int owner = -1;
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (inputs[s]->HasColumn(col)) {
        owner = static_cast<int>(s);
        break;
      }
    }
    WUW_CHECK(owner >= 0, ("filter references unknown column: " + col).c_str());
    if (found == -1) found = owner;
    if (owner != found) return -1;
  }
  return found;
}

/// Largest source index that owns any of `columns` (the earliest join point
/// at which a multi-source conjunct can run).
int LastSourceOf(const std::vector<const Schema*>& inputs,
                 const std::vector<std::string>& columns) {
  int last = 0;
  for (const std::string& col : columns) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (inputs[s]->HasColumn(col)) {
        last = std::max(last, static_cast<int>(s));
        break;
      }
    }
  }
  return last;
}

/// The raw-representation projection items: SPJ/group-key outputs plus one
/// "__argN" column per SUM argument.
std::vector<ProjectItem> RawProjectItems(const ViewDefinition& def) {
  std::vector<ProjectItem> items = def.projections();
  size_t arg_index = 0;
  for (const AggSpec& spec : def.aggregates()) {
    if (spec.fn == AggFn::kSum) {
      items.push_back(
          ProjectItem{spec.arg, "__arg" + std::to_string(arg_index)});
    }
    ++arg_index;
  }
  return items;
}

}  // namespace

PlanNodeId BuildJoinPlan(const ViewDefinition& def,
                         const std::vector<PlanNodeId>& inputs, PlanDag* dag) {
  WUW_CHECK(inputs.size() == def.num_sources(),
            "pipeline needs one input per definition source");
  std::vector<const Schema*> schemas;
  schemas.reserve(inputs.size());
  for (PlanNodeId id : inputs) schemas.push_back(&dag->node(id).schema);

  // Classify filter conjuncts: single-source ones run at the scan, the rest
  // at the first join step where all their columns exist.
  std::vector<std::vector<ScalarExpr::Ptr>> source_filters(inputs.size());
  std::vector<std::vector<ScalarExpr::Ptr>> step_filters(inputs.size());
  for (const ScalarExpr::Ptr& conjunct : def.filters()) {
    std::vector<std::string> cols = conjunct->ReferencedColumns();
    int single = SingleSourceOf(schemas, cols);
    if (single >= 0) {
      source_filters[single].push_back(conjunct);
    } else {
      step_filters[LastSourceOf(schemas, cols)].push_back(conjunct);
    }
  }

  // Locate each join condition's owning sources.
  auto owner_of = [&](const std::string& col) {
    for (size_t s = 0; s < schemas.size(); ++s) {
      if (schemas[s]->HasColumn(col)) return static_cast<int>(s);
    }
    WUW_CHECK(false, ("join references unknown column: " + col).c_str());
    return -1;
  };

  struct Edge {
    std::string a_col, b_col;
    int a_src, b_src;
    bool used = false;
  };
  std::vector<Edge> edges;
  for (const JoinCondition& jc : def.joins()) {
    Edge e{jc.left_column, jc.right_column, owner_of(jc.left_column),
           owner_of(jc.right_column), false};
    WUW_CHECK(e.a_src != e.b_src,
              "join condition must span two distinct sources");
    edges.push_back(e);
  }

  auto scan = [&](size_t i) {
    if (source_filters[i].empty()) return inputs[i];
    return dag->InternFilter(inputs[i],
                             ScalarExpr::AndAll(source_filters[i]));
  };

  PlanNodeId acc = scan(0);
  for (size_t i = 1; i < inputs.size(); ++i) {
    PlanNodeId right = scan(i);
    // Keys: every unused edge with exactly one side in source i and the
    // other in the accumulated prefix.
    JoinKeys keys;
    for (Edge& e : edges) {
      if (e.used) continue;
      int self = static_cast<int>(i);
      if (e.a_src == self && e.b_src < self) {
        keys.left_columns.push_back(e.b_col);
        keys.right_columns.push_back(e.a_col);
        e.used = true;
      } else if (e.b_src == self && e.a_src < self) {
        keys.left_columns.push_back(e.a_col);
        keys.right_columns.push_back(e.b_col);
        e.used = true;
      }
    }
    acc = dag->InternHashJoin(acc, right, std::move(keys));
    if (!step_filters[i].empty()) {
      acc = dag->InternFilter(acc, ScalarExpr::AndAll(step_filters[i]));
    }
  }
  for (const Edge& e : edges) {
    WUW_CHECK(e.used || inputs.size() == 1,
              "join condition never became applicable");
  }
  return acc;
}

PlanNodeId BuildJoinPlanFromPrefix(const ViewDefinition& def,
                                   const std::vector<const Schema*>& schemas,
                                   PlanNodeId prefix, size_t prefix_len,
                                   const std::vector<PlanNodeId>& suffix_inputs,
                                   PlanDag* dag) {
  const size_t n = def.num_sources();
  WUW_CHECK(schemas.size() == n, "prefix pipeline needs all source schemas");
  WUW_CHECK(prefix_len >= 1 && prefix_len < n,
            "prefix must cover a strict, nonempty source prefix");
  WUW_CHECK(suffix_inputs.size() == n - prefix_len,
            "prefix pipeline needs one input per suffix source");

  // Same classification as BuildJoinPlan, except that anything owned by a
  // step inside the prefix is already applied in the prefix subplan.
  std::vector<std::vector<ScalarExpr::Ptr>> source_filters(n);
  std::vector<std::vector<ScalarExpr::Ptr>> step_filters(n);
  for (const ScalarExpr::Ptr& conjunct : def.filters()) {
    std::vector<std::string> cols = conjunct->ReferencedColumns();
    int single = SingleSourceOf(schemas, cols);
    if (single >= 0) {
      source_filters[single].push_back(conjunct);
    } else {
      step_filters[LastSourceOf(schemas, cols)].push_back(conjunct);
    }
  }

  auto owner_of = [&](const std::string& col) {
    for (size_t s = 0; s < schemas.size(); ++s) {
      if (schemas[s]->HasColumn(col)) return static_cast<int>(s);
    }
    WUW_CHECK(false, ("join references unknown column: " + col).c_str());
    return -1;
  };

  struct Edge {
    std::string a_col, b_col;
    int a_src, b_src;
    bool used = false;
  };
  std::vector<Edge> edges;
  for (const JoinCondition& jc : def.joins()) {
    Edge e{jc.left_column, jc.right_column, owner_of(jc.left_column),
           owner_of(jc.right_column), false};
    WUW_CHECK(e.a_src != e.b_src,
              "join condition must span two distinct sources");
    // Both ends inside the prefix: consumed by the materialization.
    e.used = e.a_src < static_cast<int>(prefix_len) &&
             e.b_src < static_cast<int>(prefix_len);
    edges.push_back(e);
  }

  auto scan = [&](size_t i) {
    PlanNodeId input = suffix_inputs[i - prefix_len];
    if (source_filters[i].empty()) return input;
    return dag->InternFilter(input, ScalarExpr::AndAll(source_filters[i]));
  };

  PlanNodeId acc = prefix;
  for (size_t i = prefix_len; i < n; ++i) {
    PlanNodeId right = scan(i);
    JoinKeys keys;
    for (Edge& e : edges) {
      if (e.used) continue;
      int self = static_cast<int>(i);
      if (e.a_src == self && e.b_src < self) {
        keys.left_columns.push_back(e.b_col);
        keys.right_columns.push_back(e.a_col);
        e.used = true;
      } else if (e.b_src == self && e.a_src < self) {
        keys.left_columns.push_back(e.a_col);
        keys.right_columns.push_back(e.b_col);
        e.used = true;
      }
    }
    acc = dag->InternHashJoin(acc, right, std::move(keys));
    if (!step_filters[i].empty()) {
      acc = dag->InternFilter(acc, ScalarExpr::AndAll(step_filters[i]));
    }
  }
  for (const Edge& e : edges) {
    WUW_CHECK(e.used, "join condition never became applicable");
  }
  return acc;
}

PlanNodeId BuildRawProjectionPlan(const ViewDefinition& def, PlanNodeId joined,
                                  PlanDag* dag) {
  return dag->InternProject(joined, RawProjectItems(def));
}

Rows EvalJoinPipeline(const ViewDefinition& def, std::vector<Rows> inputs,
                      OperatorStats* stats) {
  PlanDag dag;
  std::vector<PlanNodeId> leaves;
  leaves.reserve(inputs.size());
  for (const Rows& r : inputs) leaves.push_back(dag.InternRowsScan(r));
  PlanNodeId root = BuildJoinPlan(def, leaves, &dag);
  PlanExecutor exec(dag, /*cache=*/nullptr);
  std::shared_ptr<const Rows> out = exec.Execute(root, stats);
  return *out;  // COW tuples: copying a batch only bumps refcounts
}

Rows ProjectToRaw(const ViewDefinition& def, const Rows& joined,
                  OperatorStats* stats) {
  return Project(joined, RawProjectItems(def), stats);
}

Schema RawSchema(const ViewDefinition& def,
                 const ViewDefinition::SchemaResolver& resolver) {
  Schema combined;
  for (const std::string& src : def.sources()) {
    combined = Schema::Concat(combined, resolver(src));
  }
  std::vector<Column> cols;
  for (const ProjectItem& item : RawProjectItems(def)) {
    cols.push_back(
        Column{item.name, BoundExpr::Bind(item.expr, combined).result_type()});
  }
  return Schema(std::move(cols));
}

std::vector<AggSpec> RawAggSpecs(const ViewDefinition& def) {
  std::vector<AggSpec> specs;
  size_t arg_index = 0;
  for (const AggSpec& spec : def.aggregates()) {
    if (spec.fn == AggFn::kSum) {
      specs.push_back(AggSpec{
          AggFn::kSum,
          ScalarExpr::Column("__arg" + std::to_string(arg_index)), spec.name});
    } else {
      specs.push_back(AggSpec{AggFn::kCount, nullptr, spec.name});
    }
    ++arg_index;
  }
  return specs;
}

}  // namespace wuw
