#include "view/join_pipeline.h"

#include "algebra/filter.h"
#include "algebra/hash_join.h"
#include "algebra/project.h"
#include "common/check.h"
#include "expr/evaluator.h"

namespace wuw {

namespace {

/// Index of the single source whose schema contains all `columns`, or -1 if
/// they span sources (or reference nothing).
int SingleSourceOf(const std::vector<Rows>& inputs,
                   const std::vector<std::string>& columns) {
  int found = -1;
  for (const std::string& col : columns) {
    int owner = -1;
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (inputs[s].schema.HasColumn(col)) {
        owner = static_cast<int>(s);
        break;
      }
    }
    WUW_CHECK(owner >= 0, ("filter references unknown column: " + col).c_str());
    if (found == -1) found = owner;
    if (owner != found) return -1;
  }
  return found;
}

/// Largest source index that owns any of `columns` (the earliest join point
/// at which a multi-source conjunct can run).
int LastSourceOf(const std::vector<Rows>& inputs,
                 const std::vector<std::string>& columns) {
  int last = 0;
  for (const std::string& col : columns) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (inputs[s].schema.HasColumn(col)) {
        last = std::max(last, static_cast<int>(s));
        break;
      }
    }
  }
  return last;
}

}  // namespace

Rows EvalJoinPipeline(const ViewDefinition& def, std::vector<Rows> inputs,
                      OperatorStats* stats) {
  WUW_CHECK(inputs.size() == def.num_sources(),
            "pipeline needs one input per definition source");

  // Classify filter conjuncts: single-source ones run at the scan, the rest
  // at the first join step where all their columns exist.
  std::vector<std::vector<ScalarExpr::Ptr>> source_filters(inputs.size());
  std::vector<std::vector<ScalarExpr::Ptr>> step_filters(inputs.size());
  for (const ScalarExpr::Ptr& conjunct : def.filters()) {
    std::vector<std::string> cols = conjunct->ReferencedColumns();
    int single = SingleSourceOf(inputs, cols);
    if (single >= 0) {
      source_filters[single].push_back(conjunct);
    } else {
      step_filters[LastSourceOf(inputs, cols)].push_back(conjunct);
    }
  }

  // Locate each join condition's owning sources.
  auto owner_of = [&](const std::string& col) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (inputs[s].schema.HasColumn(col)) return static_cast<int>(s);
    }
    WUW_CHECK(false, ("join references unknown column: " + col).c_str());
    return -1;
  };

  struct Edge {
    std::string a_col, b_col;
    int a_src, b_src;
    bool used = false;
  };
  std::vector<Edge> edges;
  for (const JoinCondition& jc : def.joins()) {
    Edge e{jc.left_column, jc.right_column, owner_of(jc.left_column),
           owner_of(jc.right_column), false};
    WUW_CHECK(e.a_src != e.b_src,
              "join condition must span two distinct sources");
    edges.push_back(e);
  }

  auto scan = [&](size_t i) {
    if (source_filters[i].empty()) return std::move(inputs[i]);
    return Filter(inputs[i], ScalarExpr::AndAll(source_filters[i]), stats);
  };

  Rows acc = scan(0);
  for (size_t i = 1; i < inputs.size(); ++i) {
    Rows right = scan(i);
    // Keys: every unused edge with exactly one side in source i and the
    // other in the accumulated prefix.
    JoinKeys keys;
    for (Edge& e : edges) {
      if (e.used) continue;
      int self = static_cast<int>(i);
      if (e.a_src == self && e.b_src < self) {
        keys.left_columns.push_back(e.b_col);
        keys.right_columns.push_back(e.a_col);
        e.used = true;
      } else if (e.b_src == self && e.a_src < self) {
        keys.left_columns.push_back(e.a_col);
        keys.right_columns.push_back(e.b_col);
        e.used = true;
      }
    }
    acc = HashJoin(acc, right, keys, stats);
    if (!step_filters[i].empty()) {
      acc = Filter(acc, ScalarExpr::AndAll(step_filters[i]), stats);
    }
  }
  for (const Edge& e : edges) {
    WUW_CHECK(e.used || inputs.size() == 1,
              "join condition never became applicable");
  }
  return acc;
}

Rows ProjectToRaw(const ViewDefinition& def, const Rows& joined,
                  OperatorStats* stats) {
  std::vector<ProjectItem> items = def.projections();
  size_t arg_index = 0;
  for (const AggSpec& spec : def.aggregates()) {
    if (spec.fn == AggFn::kSum) {
      items.push_back(
          ProjectItem{spec.arg, "__arg" + std::to_string(arg_index)});
    }
    ++arg_index;
  }
  return Project(joined, items, stats);
}

Schema RawSchema(const ViewDefinition& def,
                 const ViewDefinition::SchemaResolver& resolver) {
  Schema combined;
  for (const std::string& src : def.sources()) {
    combined = Schema::Concat(combined, resolver(src));
  }
  std::vector<Column> cols;
  for (const ProjectItem& item : def.projections()) {
    cols.push_back(
        Column{item.name, BoundExpr::Bind(item.expr, combined).result_type()});
  }
  size_t arg_index = 0;
  for (const AggSpec& spec : def.aggregates()) {
    if (spec.fn == AggFn::kSum) {
      cols.push_back(
          Column{"__arg" + std::to_string(arg_index),
                 BoundExpr::Bind(spec.arg, combined).result_type()});
    }
    ++arg_index;
  }
  return Schema(std::move(cols));
}

std::vector<AggSpec> RawAggSpecs(const ViewDefinition& def) {
  std::vector<AggSpec> specs;
  size_t arg_index = 0;
  for (const AggSpec& spec : def.aggregates()) {
    if (spec.fn == AggFn::kSum) {
      specs.push_back(AggSpec{
          AggFn::kSum,
          ScalarExpr::Column("__arg" + std::to_string(arg_index)), spec.name});
    } else {
      specs.push_back(AggSpec{AggFn::kCount, nullptr, spec.name});
    }
    ++arg_index;
  }
  return specs;
}

}  // namespace wuw
