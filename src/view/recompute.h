// Full (non-incremental) view computation — the ground truth that every
// correct update strategy must converge to (GMS93), and the way derived
// views are initially populated.
#ifndef WUW_VIEW_RECOMPUTE_H_
#define WUW_VIEW_RECOMPUTE_H_

#include "algebra/operator_stats.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "view/view_definition.h"

namespace wuw {

/// Computes Def(V) from the current extents of its sources in `catalog`
/// (the sources must already be materialized).  Returns the full extent of
/// V, including the hidden "__count" column for aggregate views.
///
/// If `join_rows` is non-null it receives the cardinality of the
/// pre-aggregation join — the statistic the analytic size estimator uses to
/// derive average group sizes.
Table RecomputeView(const ViewDefinition& def, const Catalog& catalog,
                    OperatorStats* stats, int64_t* join_rows = nullptr);

}  // namespace wuw

#endif  // WUW_VIEW_RECOMPUTE_H_
