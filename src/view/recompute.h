// Full (non-incremental) view computation — the ground truth that every
// correct update strategy must converge to (GMS93), and the way derived
// views are initially populated.
#ifndef WUW_VIEW_RECOMPUTE_H_
#define WUW_VIEW_RECOMPUTE_H_

#include <functional>
#include <string>

#include "algebra/operator_stats.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "view/view_definition.h"

namespace wuw {

/// Resolves a source view name to its extent.  Lets recomputation run
/// against any table source — the live catalog or a pinned ReadSnapshot
/// (storage/read_snapshot.h) — without caring which.
using TableSource = std::function<const Table&(const std::string&)>;

/// Computes Def(V) from the current extents of its sources in `catalog`
/// (the sources must already be materialized).  Returns the full extent of
/// V, including the hidden "__count" column for aggregate views.
///
/// If `join_rows` is non-null it receives the cardinality of the
/// pre-aggregation join — the statistic the analytic size estimator uses to
/// derive average group sizes.
Table RecomputeView(const ViewDefinition& def, const Catalog& catalog,
                    OperatorStats* stats, int64_t* join_rows = nullptr);

/// Same, with the sources resolved through `source` — the snapshot-read
/// query path.
Table RecomputeView(const ViewDefinition& def, const TableSource& source,
                    OperatorStats* stats, int64_t* join_rows = nullptr);

}  // namespace wuw

#endif  // WUW_VIEW_RECOMPUTE_H_
