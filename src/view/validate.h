// Non-aborting semantic validation of view definitions and whole VDAGs.
//
// The engine's hot paths enforce contracts with WUW_CHECK (abort); this
// module is the front door for definitions arriving from users, scripts,
// or the SQL parser: it reports the first problem as a message instead.
#ifndef WUW_VIEW_VALIDATE_H_
#define WUW_VIEW_VALIDATE_H_

#include <string>

#include "graph/vdag.h"
#include "view/view_definition.h"

namespace wuw {

/// Checks one definition against its sources' schemas: column-name
/// uniqueness across sources, every referenced column resolvable, join
/// conditions spanning two distinct sources, and aggregate shape.
/// Returns an empty string when valid, else a description of the first
/// problem.
std::string ValidateDefinition(const ViewDefinition& def,
                               const ViewDefinition::SchemaResolver& resolver);

/// Validates every derived view of a VDAG.  Empty string when clean.
std::string ValidateVdag(const Vdag& vdag);

}  // namespace wuw

#endif  // WUW_VIEW_VALIDATE_H_
