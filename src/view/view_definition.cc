#include "view/view_definition.h"

#include "common/check.h"
#include "expr/evaluator.h"
#include "expr/printer.h"

namespace wuw {

int ViewDefinition::SourceIndex(const std::string& source) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i] == source) return static_cast<int>(i);
  }
  return -1;
}

Schema ViewDefinition::OutputSchema(const SchemaResolver& resolver) const {
  // Combined input schema: concatenation of all source schemas.
  Schema combined;
  for (const std::string& src : sources_) {
    combined = Schema::Concat(combined, resolver(src));
  }
  std::vector<Column> out;
  for (const ProjectItem& item : projections_) {
    BoundExpr bound = BoundExpr::Bind(item.expr, combined);
    out.push_back(Column{item.name, bound.result_type()});
  }
  for (const AggSpec& spec : aggregates_) {
    if (spec.fn == AggFn::kCount) {
      out.push_back(Column{spec.name, TypeId::kInt64});
    } else {
      BoundExpr bound = BoundExpr::Bind(spec.arg, combined);
      out.push_back(Column{spec.name, bound.result_type() == TypeId::kInt64
                                          ? TypeId::kInt64
                                          : TypeId::kDouble});
    }
  }
  if (is_aggregate()) {
    out.push_back(Column{kGroupCountColumn, TypeId::kInt64});
  }
  return Schema(std::move(out));
}

std::vector<std::string> ViewDefinition::GroupKeyNames() const {
  std::vector<std::string> names;
  for (const ProjectItem& item : projections_) names.push_back(item.name);
  return names;
}

std::string ViewDefinition::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < projections_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToSql(projections_[i].expr) + " AS " + projections_[i].name;
  }
  for (const AggSpec& spec : aggregates_) {
    out += ", ";
    out += spec.fn == AggFn::kCount ? "COUNT(*)"
                                    : "SUM(" + ExprToSql(spec.arg) + ")";
    out += " AS " + spec.name;
  }
  out += " FROM ";
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (i > 0) out += ", ";
    out += sources_[i];
  }
  bool first = true;
  for (const JoinCondition& j : joins_) {
    out += first ? " WHERE " : " AND ";
    first = false;
    out += j.left_column + " = " + j.right_column;
  }
  for (const ScalarExpr::Ptr& f : filters_) {
    out += first ? " WHERE " : " AND ";
    first = false;
    out += ExprToSql(f);
  }
  if (is_aggregate()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < projections_.size(); ++i) {
      if (i > 0) out += ", ";
      out += projections_[i].name;
    }
  }
  return out;
}

ViewDefinitionBuilder::ViewDefinitionBuilder(std::string view_name)
    : def_(new ViewDefinition()) {
  def_->name_ = std::move(view_name);
}

ViewDefinitionBuilder& ViewDefinitionBuilder::From(const std::string& source) {
  WUW_CHECK(def_->SourceIndex(source) < 0,
            "duplicate source in view definition (rename for self-joins)");
  def_->sources_.push_back(source);
  return *this;
}

ViewDefinitionBuilder& ViewDefinitionBuilder::JoinOn(
    const std::string& left_column, const std::string& right_column) {
  def_->joins_.push_back(JoinCondition{left_column, right_column});
  return *this;
}

ViewDefinitionBuilder& ViewDefinitionBuilder::Where(ScalarExpr::Ptr conjunct) {
  def_->filters_.push_back(std::move(conjunct));
  return *this;
}

ViewDefinitionBuilder& ViewDefinitionBuilder::Select(ScalarExpr::Ptr expr,
                                                     const std::string& name) {
  def_->projections_.push_back(ProjectItem{std::move(expr), name});
  return *this;
}

ViewDefinitionBuilder& ViewDefinitionBuilder::SelectColumn(
    const std::string& column) {
  return Select(ScalarExpr::Column(column), column);
}

ViewDefinitionBuilder& ViewDefinitionBuilder::SelectColumn(
    const std::string& column, const std::string& as) {
  return Select(ScalarExpr::Column(column), as);
}

ViewDefinitionBuilder& ViewDefinitionBuilder::Sum(ScalarExpr::Ptr arg,
                                                  const std::string& name) {
  def_->aggregates_.push_back(AggSpec{AggFn::kSum, std::move(arg), name});
  return *this;
}

ViewDefinitionBuilder& ViewDefinitionBuilder::Count(const std::string& name) {
  def_->aggregates_.push_back(AggSpec{AggFn::kCount, nullptr, name});
  return *this;
}

std::shared_ptr<const ViewDefinition> ViewDefinitionBuilder::Build() {
  WUW_CHECK(!def_->sources_.empty(), "view definition needs >= 1 source");
  WUW_CHECK(!def_->projections_.empty(),
            "view definition needs >= 1 output column / group key");
  return std::shared_ptr<const ViewDefinition>(def_.release());
}

}  // namespace wuw
