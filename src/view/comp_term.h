// Evaluation of Comp(V, Y) maintenance expressions.
//
// Comp(V, Y) has 2^|Y|-1 terms (Section 3.3): each term picks, for every
// view in Y, its delta or its current extent — excluding the all-extent
// combination — and additionally reads the current extent of every other
// source of Def(V).  Signed multiplicities make insertions and deletions
// flow through one pipeline.
//
// All terms of one Comp lower into a single physical-plan DAG
// (plan/plan_node.h): fingerprint interning unifies the join prefixes the
// terms share (sibling terms differ in few operands), and — when a
// SubplanCache is attached — materialized intermediates are reused across
// terms, across the expressions of a strategy stage, and across runs over
// the same warehouse state.  With no cache attached every term re-evaluates
// eagerly, reproducing the paper's measured term-execution model exactly.
//
// Over the life of a correct strategy, the union of raw deltas produced by
// the Comp expressions for V telescopes to exactly the change of V, because
// installs interleave per conditions C3/C4 (Definition 3.1).
#ifndef WUW_VIEW_COMP_TERM_H_
#define WUW_VIEW_COMP_TERM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "delta/delta_relation.h"
#include "obs/plan_observation.h"
#include "plan/subplan_cache.h"
#include "storage/catalog.h"
#include "view/view_definition.h"

namespace wuw {

class CancelToken;
class ThreadPool;
struct AuxBindingSnapshot;

/// Resolves the current-batch delta of a view by name (base deltas come
/// from the sources; derived deltas from finished Comp sequences).
using DeltaProvider =
    std::function<const DeltaRelation*(const std::string&)>;

/// Result of evaluating one Comp expression.
struct CompEvalResult {
  /// Accumulated raw delta across all terms (see join_pipeline.h for the
  /// raw representation).
  Rows raw_delta;
  /// Measured linear-metric work: for each term, the sum of the sizes of
  /// its operands (|δVi| for delta operands, |Vi| for extent operands),
  /// totalled over terms.  This is the run-time counterpart of Def 3.5.
  /// Analytic — derived from operand cardinalities at plan-build time, so
  /// it is identical with the subplan cache on, off, or at any budget.
  int64_t linear_operand_work = 0;
  int64_t num_terms = 0;
};

struct CompEvalOptions {
  /// Footnote 5 extension: skip terms whose delta operands are all empty.
  /// Off by default to match the paper's measured execution model.
  bool skip_empty_delta_terms = false;
  /// Intra-expression parallelism: evaluate the 2^|Y|-1 maintenance terms
  /// on up to this many workers (they are independent joins over read-only
  /// inputs).  1 = sequential, the paper's execution model.  Workers are
  /// scheduled on `pool` (capped by its size), never on ad-hoc threads.
  int term_workers = 1;
  /// Shared thread pool for term workers AND the morsel-parallel operator
  /// kernels (see parallel/thread_pool.h).  Null = fully sequential
  /// evaluation.  Executors default this to ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Cross-term / cross-expression result memo.  Null (the default) keeps
  /// the eager per-term execution the paper's tables measure.  When set,
  /// `extent_version` must be set too — scan cache keys embed the per-view
  /// extent version and the batch epoch so stale results can never be
  /// served (see exec/warehouse.h).
  SubplanCache* subplan_cache = nullptr;
  /// WUW_AUX_VIEWS rewrite pass (plan/aux_view.h): when set — and
  /// `extent_version` is set, which stamp validation needs — any term whose
  /// leading operands are all extents matching a binding's version stamps
  /// lowers its prefix to one aux-view scan instead of the prefix scans and
  /// joins.  Null (the default) = the standard lowering, untouched.
  std::shared_ptr<const AuxBindingSnapshot> aux_bindings;
  /// Current change-batch epoch (Warehouse::batch_epoch).
  int64_t batch_epoch = 0;
  /// Per-view extent version (Warehouse::extent_version).
  std::function<int64_t(const std::string&)> extent_version;
  /// EXPLAIN sink: when set, EvalComp evaluates sequentially (term_workers
  /// is ignored) and reports the interned DAG with estimated vs measured
  /// per-node rows.  Null (the default) records nothing.
  obs::PlanObserver* observer = nullptr;
  /// Cooperative cancellation (exec/window_budget.h): checked at term and
  /// plan-node boundaries and inside the morsel kernels.  EvalComp is
  /// read-only w.r.t. the warehouse, so a WindowCancelledError unwinding
  /// out of it abandons the step with no state to clean up.  Null (the
  /// default) costs nothing.
  const CancelToken* cancel = nullptr;
};

/// Evaluates Comp(V, over) where `def` = Def(V) and `over` ⊆ def.sources().
CompEvalResult EvalComp(const ViewDefinition& def,
                        const std::vector<std::string>& over,
                        const Catalog& catalog, const DeltaProvider& deltas,
                        const CompEvalOptions& options, OperatorStats* stats);

}  // namespace wuw

#endif  // WUW_VIEW_COMP_TERM_H_
