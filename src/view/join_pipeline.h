// Shared join/filter pipeline used by both full recomputation and
// maintenance-term evaluation.
//
// A term of a maintenance expression is "the view definition's join with
// some sources replaced by their deltas" — so both paths run the same
// left-deep pipeline over per-source inputs, differing only in what those
// inputs are.  The pipeline mirrors a stored procedure's fixed plan
// (Section 5.5): sources join in definition order, single-source filter
// conjuncts are applied at the scans, and multi-source conjuncts as soon as
// their columns are available.
//
// The pipeline is *lowered*, not interpreted: BuildJoinPlan emits the
// operator tree into a PlanDag (plan/plan_node.h), where fingerprint
// interning unifies the join prefixes shared by a Comp's many terms.
// EvalJoinPipeline is the one-shot wrapper that lowers and immediately
// executes with no cache attached, preserving the historical eager
// semantics operator for operator.
#ifndef WUW_VIEW_JOIN_PIPELINE_H_
#define WUW_VIEW_JOIN_PIPELINE_H_

#include <vector>

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "plan/plan_node.h"
#include "view/view_definition.h"

namespace wuw {

/// Lowers def's join graph and filters over `inputs` — one subplan id per
/// definition source, in definition order — into `dag`, returning the root
/// of the joined pipeline (rows over the concatenated source schema).
PlanNodeId BuildJoinPlan(const ViewDefinition& def,
                         const std::vector<PlanNodeId>& inputs, PlanDag* dag);

/// BuildJoinPlan with the first `prefix_len` sources replaced by the single
/// subplan `prefix` (an aux-view scan, plan/aux_view.h): joins and filters
/// entirely inside the prefix are assumed pre-applied there, and the
/// remaining steps lower exactly as BuildJoinPlan would lower them —
/// `prefix`'s schema is the concatenated (filtered, joined) prefix schema,
/// so edge classification and filter placement are unchanged.  `schemas`
/// holds the per-source input schemas for ALL of def's sources (the prefix
/// members too, for ownership resolution); `suffix_inputs` holds one
/// subplan per source at index >= prefix_len, in definition order.
PlanNodeId BuildJoinPlanFromPrefix(const ViewDefinition& def,
                                   const std::vector<const Schema*>& schemas,
                                   PlanNodeId prefix, size_t prefix_len,
                                   const std::vector<PlanNodeId>& suffix_inputs,
                                   PlanDag* dag);

/// Lowers the raw-representation projection (see ProjectToRaw) over the
/// joined pipeline `joined`.
PlanNodeId BuildRawProjectionPlan(const ViewDefinition& def, PlanNodeId joined,
                                  PlanDag* dag);

/// Joins `inputs` (one Rows per definition source, in definition order)
/// according to def's join graph and filters.  Returns rows over the
/// concatenated source schema.
Rows EvalJoinPipeline(const ViewDefinition& def, std::vector<Rows> inputs,
                      OperatorStats* stats);

/// Projects pipeline output to the view's "raw" representation:
///  - SPJ view: the output tuples themselves;
///  - aggregate view: group keys + one "__argN" column per SUM argument
///    (COUNT needs no argument), pre-aggregation.
/// Raw rows are what Comp expressions accumulate; see maintenance.h.
Rows ProjectToRaw(const ViewDefinition& def, const Rows& joined,
                  OperatorStats* stats);

/// Schema of ProjectToRaw's output.
Schema RawSchema(const ViewDefinition& def,
                 const ViewDefinition::SchemaResolver& resolver);

/// Aggregate specs rewritten to run over the raw schema (SUM(__argN) /
/// COUNT), shared by recompute and summary-delta finalization.
std::vector<AggSpec> RawAggSpecs(const ViewDefinition& def);

}  // namespace wuw

#endif  // WUW_VIEW_JOIN_PIPELINE_H_
