#include "view/recompute.h"

#include "algebra/aggregate.h"
#include "view/join_pipeline.h"

namespace wuw {

Table RecomputeView(const ViewDefinition& def, const Catalog& catalog,
                    OperatorStats* stats, int64_t* join_rows) {
  return RecomputeView(
      def,
      [&catalog](const std::string& name) -> const Table& {
        return *catalog.MustGetTable(name);
      },
      stats, join_rows);
}

Table RecomputeView(const ViewDefinition& def, const TableSource& source,
                    OperatorStats* stats, int64_t* join_rows) {
  std::vector<Rows> inputs;
  inputs.reserve(def.num_sources());
  for (const std::string& src : def.sources()) {
    inputs.push_back(Rows::FromTable(source(src)));
  }
  Rows joined = EvalJoinPipeline(def, std::move(inputs), stats);
  if (join_rows != nullptr) *join_rows = joined.AbsCardinality();
  Rows raw = ProjectToRaw(def, joined, stats);

  auto resolver = [&](const std::string& name) -> const Schema& {
    return source(name).schema();
  };
  Table out(def.OutputSchema(resolver));
  if (def.is_aggregate()) {
    Rows aggregated =
        AggregateSigned(raw, def.GroupKeyNames(), RawAggSpecs(def), stats);
    for (const auto& [tuple, count] : aggregated.rows) out.Add(tuple, count);
  } else {
    for (const auto& [tuple, count] : raw.rows) out.Add(tuple, count);
  }
  return out;
}

}  // namespace wuw
