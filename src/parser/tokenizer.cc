#include "parser/tokenizer.h"

#include <cctype>

namespace wuw {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

bool Tokenize(const std::string& sql, std::vector<Token>* tokens,
              std::string* error) {
  tokens->clear();
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string raw = sql.substr(start, i - start);
      tokens->push_back(Token{TokenKind::kIdentifier, Upper(raw), raw, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string raw = sql.substr(start, i - start);
      tokens->push_back(Token{is_float ? TokenKind::kFloat : TokenKind::kInteger,
                              raw, raw, start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        *error = "unterminated string literal at offset " +
                 std::to_string(start);
        return false;
      }
      tokens->push_back(Token{TokenKind::kString, value, value, start});
      continue;
    }
    // Multi-char operators first.
    auto symbol = [&](const char* text, size_t len) {
      tokens->push_back(
          Token{TokenKind::kSymbol, text, sql.substr(start, len), start});
      i += len;
    };
    if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      symbol("<>", 2);
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      symbol("<=", 2);
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      symbol(">=", 2);
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      symbol("<>", 2);  // normalize != to <>
      continue;
    }
    if (std::string("(),=<>+-*/.").find(c) != std::string::npos) {
      symbol(std::string(1, c).c_str(), 1);
      continue;
    }
    *error = std::string("unexpected character '") + c + "' at offset " +
             std::to_string(start);
    return false;
  }
  tokens->push_back(Token{TokenKind::kEnd, "", "", n});
  return true;
}

}  // namespace wuw
