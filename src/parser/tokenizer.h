// SQL tokenizer for the view-definition language.
#ifndef WUW_PARSER_TOKENIZER_H_
#define WUW_PARSER_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wuw {

enum class TokenKind : uint8_t {
  kIdentifier,  // column / table names, keywords (case-insensitive)
  kInteger,
  kFloat,
  kString,  // 'quoted'
  kSymbol,  // ( ) , = <> < <= > >= + - * / .
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;     // normalized: keywords/idents upper-cased
  std::string raw;      // original spelling
  size_t offset = 0;    // byte offset in the input, for error messages
};

/// Splits `sql` into tokens.  On failure returns false and fills *error.
bool Tokenize(const std::string& sql, std::vector<Token>* tokens,
              std::string* error);

}  // namespace wuw

#endif  // WUW_PARSER_TOKENIZER_H_
