// Warehouse DDL: building a whole VDAG from one SQL script.
//
//   CREATE TABLE customer (c_custkey INT, c_name TEXT, ...);
//   CREATE TABLE orders (...);
//   CREATE VIEW q3 AS SELECT ... FROM customer, orders ... GROUP BY ...;
//
// CREATE TABLE declares a base view (types: INT/INTEGER/BIGINT -> INT64,
// DOUBLE/FLOAT/REAL -> DOUBLE, TEXT/VARCHAR/CHAR -> STRING, DATE -> DATE);
// CREATE VIEW declares a derived view whose SELECT body goes through
// ParseViewDefinition.  Statements end with ';'.  Views may reference any
// previously declared table or view.
#ifndef WUW_PARSER_DDL_PARSER_H_
#define WUW_PARSER_DDL_PARSER_H_

#include <string>

#include "graph/vdag.h"

namespace wuw {

/// Result of parsing a warehouse script.
struct ParsedWarehouse {
  Vdag vdag;
  std::string error;  // empty on success
  bool ok() const { return error.empty(); }
};

/// Parses a script of CREATE TABLE / CREATE VIEW statements into a Vdag.
ParsedWarehouse ParseWarehouseScript(const std::string& sql);

/// Renders a Vdag back to DDL (CREATE TABLE for bases, CREATE VIEW for
/// derived views).  ParseWarehouseScript(DumpWarehouseScript(v)) yields an
/// equivalent VDAG — the persistence format of io/snapshot.h.
std::string DumpWarehouseScript(const Vdag& vdag);

}  // namespace wuw

#endif  // WUW_PARSER_DDL_PARSER_H_
