#include "parser/ddl_parser.h"

#include <vector>

#include "parser/sql_parser.h"
#include "parser/tokenizer.h"

namespace wuw {

namespace {

/// Splits the script into ';'-terminated statements (quote-aware).
std::vector<std::string> SplitStatements(const std::string& sql) {
  std::vector<std::string> out;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (c == '\'') in_quotes = !in_quotes;
    if (c == ';' && !in_quotes) {
      out.push_back(current);
      current.clear();
      continue;
    }
    // Strip -- comments outside quotes.
    if (!in_quotes && c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    current += c;
  }
  if (current.find_first_not_of(" \t\r\n") != std::string::npos) {
    out.push_back(current);
  }
  return out;
}

bool TypeFromName(const std::string& name, TypeId* out) {
  if (name == "INT" || name == "INTEGER" || name == "BIGINT") {
    *out = TypeId::kInt64;
    return true;
  }
  if (name == "DOUBLE" || name == "FLOAT" || name == "REAL" ||
      name == "DECIMAL" || name == "NUMERIC") {
    *out = TypeId::kDouble;
    return true;
  }
  if (name == "TEXT" || name == "VARCHAR" || name == "CHAR" ||
      name == "STRING") {
    *out = TypeId::kString;
    return true;
  }
  if (name == "DATE") {
    *out = TypeId::kDate;
    return true;
  }
  return false;
}

const char* TypeToDdl(TypeId t) {
  switch (t) {
    case TypeId::kInt64:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "TEXT";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kNull:
      break;
  }
  return "TEXT";
}

/// Parses "name (col TYPE, col TYPE, ...)" after CREATE TABLE.
bool ParseCreateTable(const std::vector<Token>& tokens, size_t pos,
                      std::string* name, std::vector<Column>* columns,
                      std::string* error) {
  auto expect = [&](TokenKind kind, const char* what) -> bool {
    if (tokens[pos].kind != kind) {
      *error = std::string("expected ") + what + " near offset " +
               std::to_string(tokens[pos].offset);
      return false;
    }
    return true;
  };
  if (!expect(TokenKind::kIdentifier, "table name")) return false;
  *name = tokens[pos].raw;
  ++pos;
  if (tokens[pos].kind != TokenKind::kSymbol || tokens[pos].text != "(") {
    *error = "expected '(' after table name";
    return false;
  }
  ++pos;
  while (true) {
    if (!expect(TokenKind::kIdentifier, "column name")) return false;
    std::string column = tokens[pos].raw;
    ++pos;
    if (!expect(TokenKind::kIdentifier, "column type")) return false;
    TypeId type;
    if (!TypeFromName(tokens[pos].text, &type)) {
      *error = "unknown column type: " + tokens[pos].raw;
      return false;
    }
    ++pos;
    // Swallow optional length suffix: VARCHAR(25).
    if (tokens[pos].kind == TokenKind::kSymbol && tokens[pos].text == "(") {
      ++pos;
      if (tokens[pos].kind == TokenKind::kInteger) ++pos;
      if (tokens[pos].kind != TokenKind::kSymbol || tokens[pos].text != ")") {
        *error = "malformed type length";
        return false;
      }
      ++pos;
    }
    columns->push_back(Column{column, type});
    if (tokens[pos].kind == TokenKind::kSymbol && tokens[pos].text == ",") {
      ++pos;
      continue;
    }
    break;
  }
  if (tokens[pos].kind != TokenKind::kSymbol || tokens[pos].text != ")") {
    *error = "expected ')' to close the column list";
    return false;
  }
  ++pos;
  if (tokens[pos].kind != TokenKind::kEnd) {
    *error = "trailing input after CREATE TABLE";
    return false;
  }
  return true;
}

}  // namespace

ParsedWarehouse ParseWarehouseScript(const std::string& sql) {
  ParsedWarehouse out;
  for (const std::string& statement : SplitStatements(sql)) {
    std::vector<Token> tokens;
    if (!Tokenize(statement, &tokens, &out.error)) return out;
    if (tokens.size() <= 1) continue;  // blank statement
    if (tokens[0].kind != TokenKind::kIdentifier ||
        tokens[0].text != "CREATE" || tokens.size() < 3 ||
        tokens[1].kind != TokenKind::kIdentifier) {
      out.error = "every statement must be CREATE TABLE / CREATE VIEW";
      return out;
    }
    if (tokens[1].text == "TABLE") {
      std::string name;
      std::vector<Column> columns;
      if (!ParseCreateTable(tokens, 2, &name, &columns, &out.error)) {
        return out;
      }
      if (out.vdag.HasView(name)) {
        out.error = "duplicate view: " + name;
        return out;
      }
      out.vdag.AddBaseView(name, Schema(std::move(columns)));
    } else if (tokens[1].text == "VIEW") {
      if (tokens[2].kind != TokenKind::kIdentifier) {
        out.error = "expected view name after CREATE VIEW";
        return out;
      }
      std::string name = tokens[2].raw;
      if (tokens.size() < 5 || tokens[3].kind != TokenKind::kIdentifier ||
          tokens[3].text != "AS") {
        out.error = "expected AS after the view name";
        return out;
      }
      if (out.vdag.HasView(name)) {
        out.error = "duplicate view: " + name;
        return out;
      }
      // Re-render the SELECT body from the raw statement via the AS
      // token's offset; pre-validate the FROM sources (the schema resolver
      // aborts on unknown views).
      std::string body = statement.substr(tokens[4].offset);
      for (const std::string& src : ExtractFromSources(body)) {
        if (!out.vdag.HasView(src)) {
          out.error = "view " + name + " references unknown source " + src;
          return out;
        }
      }
      ParsedView parsed = ParseViewDefinition(
          name, body, [&](const std::string& src) -> const Schema& {
            return out.vdag.OutputSchema(src);
          });
      if (!parsed.ok()) {
        out.error = "in view " + name + ": " + parsed.error;
        return out;
      }
      out.vdag.AddDerivedView(parsed.definition);
    } else {
      out.error = "unsupported statement: CREATE " + tokens[1].raw;
      return out;
    }
  }
  return out;
}

std::string DumpWarehouseScript(const Vdag& vdag) {
  std::string out;
  for (const std::string& name : vdag.view_names()) {
    if (vdag.IsBaseView(name)) {
      out += "CREATE TABLE " + name + " (";
      const Schema& schema = vdag.OutputSchema(name);
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        if (i > 0) out += ", ";
        out += schema.column(i).name;
        out += " ";
        out += TypeToDdl(schema.column(i).type);
      }
      out += ");\n";
    } else {
      out += "CREATE VIEW " + name + " AS " +
             vdag.definition(name)->ToString() + ";\n";
    }
  }
  return out;
}

}  // namespace wuw
