#include "parser/sql_parser.h"

#include <vector>

#include "parser/tokenizer.h"

namespace wuw {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }

  const Token& Peek() const { return tokens_[pos_]; }

  bool AtKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == kw;
  }
  bool AtSymbol(const char* sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  void Advance() {
    if (tokens_[pos_].kind != TokenKind::kEnd) ++pos_;
  }

  bool ConsumeKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool ConsumeSymbol(const char* sym) {
    if (!AtSymbol(sym)) return false;
    Advance();
    return true;
  }

  void Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " (near offset " + std::to_string(Peek().offset) +
               ", got '" + (Peek().kind == TokenKind::kEnd ? "<end>"
                                                           : Peek().raw) +
               "')";
    }
  }

  /// Expects an identifier token; returns its original spelling.
  std::string ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      Fail(std::string("expected ") + what);
      return "";
    }
    std::string raw = Peek().raw;
    Advance();
    return raw;
  }

  // ---- Expression grammar ----
  // expr    := or
  // or      := and (OR and)*
  // and     := not (AND not)*
  // not     := NOT not | cmp
  // cmp     := add ((=|<>|<|<=|>|>=) add)?
  // add     := mul ((+|-) mul)*
  // mul     := unary ((*|/) unary)*
  // unary   := - unary | primary
  // primary := INT | FLOAT | 'str' | DATE 'y-m-d' | ident | ( expr )

  ScalarExpr::Ptr ParseExpr() { return ParseOr(); }

  ScalarExpr::Ptr ParseOr() {
    ScalarExpr::Ptr lhs = ParseAnd();
    while (!failed() && AtKeyword("OR")) {
      Advance();
      ScalarExpr::Ptr rhs = ParseAnd();
      if (failed()) return nullptr;
      lhs = ScalarExpr::Logical(LogicalOp::kOr, lhs, rhs);
    }
    return lhs;
  }

  ScalarExpr::Ptr ParseAnd() {
    ScalarExpr::Ptr lhs = ParseNot();
    while (!failed() && AtKeyword("AND")) {
      Advance();
      ScalarExpr::Ptr rhs = ParseNot();
      if (failed()) return nullptr;
      lhs = ScalarExpr::Logical(LogicalOp::kAnd, lhs, rhs);
    }
    return lhs;
  }

  ScalarExpr::Ptr ParseNot() {
    if (ConsumeKeyword("NOT")) {
      ScalarExpr::Ptr operand = ParseNot();
      if (failed()) return nullptr;
      return ScalarExpr::Not(operand);
    }
    return ParseComparison();
  }

  ScalarExpr::Ptr ParseComparison() {
    ScalarExpr::Ptr lhs = ParseAdditive();
    if (failed()) return nullptr;
    CompareOp op;
    if (AtSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AtSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (AtSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AtSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AtSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AtSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return lhs;
    }
    Advance();
    ScalarExpr::Ptr rhs = ParseAdditive();
    if (failed()) return nullptr;
    return ScalarExpr::Compare(op, lhs, rhs);
  }

  ScalarExpr::Ptr ParseAdditive() {
    ScalarExpr::Ptr lhs = ParseMultiplicative();
    while (!failed() && (AtSymbol("+") || AtSymbol("-"))) {
      ArithOp op = AtSymbol("+") ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      ScalarExpr::Ptr rhs = ParseMultiplicative();
      if (failed()) return nullptr;
      lhs = ScalarExpr::Arith(op, lhs, rhs);
    }
    return lhs;
  }

  ScalarExpr::Ptr ParseMultiplicative() {
    ScalarExpr::Ptr lhs = ParseUnary();
    while (!failed() && (AtSymbol("*") || AtSymbol("/"))) {
      ArithOp op = AtSymbol("*") ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      ScalarExpr::Ptr rhs = ParseUnary();
      if (failed()) return nullptr;
      lhs = ScalarExpr::Arith(op, lhs, rhs);
    }
    return lhs;
  }

  ScalarExpr::Ptr ParseUnary() {
    if (AtSymbol("-")) {
      Advance();
      ScalarExpr::Ptr operand = ParseUnary();
      if (failed()) return nullptr;
      // -x  ==>  0 - x (keeps the AST minimal).
      return ScalarExpr::Arith(ArithOp::kSub,
                               ScalarExpr::Literal(Value::Int64(0)), operand);
    }
    return ParsePrimary();
  }

  ScalarExpr::Ptr ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        int64_t v = strtoll(t.text.c_str(), nullptr, 10);
        Advance();
        return ScalarExpr::Literal(Value::Int64(v));
      }
      case TokenKind::kFloat: {
        double v = strtod(t.text.c_str(), nullptr);
        Advance();
        return ScalarExpr::Literal(Value::Double(v));
      }
      case TokenKind::kString: {
        std::string v = t.text;
        Advance();
        return ScalarExpr::Literal(Value::String(v));
      }
      case TokenKind::kIdentifier: {
        if (t.text == "DATE") {
          Advance();
          return ParseDateLiteral();
        }
        if (t.text == "TRUE") {
          Advance();
          return ScalarExpr::True();
        }
        if (t.text == "FALSE") {
          Advance();
          return ScalarExpr::Literal(Value::Int64(0));
        }
        std::string name = t.raw;
        Advance();
        return ScalarExpr::Column(name);
      }
      case TokenKind::kSymbol:
        if (ConsumeSymbol("(")) {
          ScalarExpr::Ptr inner = ParseExpr();
          if (failed()) return nullptr;
          if (!ConsumeSymbol(")")) {
            Fail("expected ')'");
            return nullptr;
          }
          return inner;
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    Fail("expected expression");
    return nullptr;
  }

  ScalarExpr::Ptr ParseDateLiteral() {
    if (Peek().kind != TokenKind::kString) {
      Fail("expected date string after DATE");
      return nullptr;
    }
    const std::string& s = Peek().text;
    int year = 0, month = 0, day = 0;
    if (std::sscanf(s.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
        month < 1 || month > 12 || day < 1 || day > 31) {
      Fail("malformed date literal '" + s + "'");
      return nullptr;
    }
    Advance();
    return ScalarExpr::Literal(Value::Date(year, month, day));
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string error_;
};

/// Splits top-level AND conjuncts of a parsed boolean expression.
void SplitConjuncts(const ScalarExpr::Ptr& e,
                    std::vector<ScalarExpr::Ptr>* out) {
  if (e->kind() == ExprKind::kLogical && e->logical_op() == LogicalOp::kAnd) {
    SplitConjuncts(e->lhs(), out);
    SplitConjuncts(e->rhs(), out);
  } else {
    out->push_back(e);
  }
}

}  // namespace

ScalarExpr::Ptr ParseScalarExpr(const std::string& sql, std::string* error) {
  std::vector<Token> tokens;
  if (!Tokenize(sql, &tokens, error)) return nullptr;
  Parser parser(std::move(tokens));
  ScalarExpr::Ptr e = parser.ParseExpr();
  if (parser.failed()) {
    *error = parser.error();
    return nullptr;
  }
  if (parser.Peek().kind != TokenKind::kEnd) {
    *error = "trailing input after expression at offset " +
             std::to_string(parser.Peek().offset);
    return nullptr;
  }
  return e;
}

std::vector<std::string> ExtractFromSources(const std::string& sql) {
  std::vector<std::string> out;
  std::vector<Token> tokens;
  std::string error;
  if (!Tokenize(sql, &tokens, &error)) return out;
  size_t i = 0;
  while (i < tokens.size() && !(tokens[i].kind == TokenKind::kIdentifier &&
                                tokens[i].text == "FROM")) {
    ++i;
  }
  for (++i; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier) {
      if (tokens[i].text == "WHERE" || tokens[i].text == "GROUP") break;
      out.push_back(tokens[i].raw);
    } else if (!(tokens[i].kind == TokenKind::kSymbol &&
                 tokens[i].text == ",")) {
      break;
    }
  }
  return out;
}

ParsedView ParseViewDefinition(
    const std::string& view_name, const std::string& sql,
    const ViewDefinition::SchemaResolver& resolver) {
  ParsedView out;
  std::vector<Token> tokens;
  if (!Tokenize(sql, &tokens, &out.error)) return out;
  Parser parser(std::move(tokens));

  auto fail = [&](const std::string& message) {
    out.error = message.empty() ? parser.error() : message;
    out.definition = nullptr;
    return out;
  };

  if (!parser.ConsumeKeyword("SELECT")) return fail("expected SELECT");

  // SELECT list.
  struct SelectItem {
    bool is_sum = false;
    bool is_count = false;
    ScalarExpr::Ptr expr;  // null for COUNT(*)
    std::string name;
  };
  std::vector<SelectItem> items;
  do {
    SelectItem item;
    if (parser.AtKeyword("SUM")) {
      parser.Advance();
      if (!parser.ConsumeSymbol("(")) return fail("expected '(' after SUM");
      item.is_sum = true;
      item.expr = parser.ParseExpr();
      if (parser.failed()) return fail("");
      if (!parser.ConsumeSymbol(")")) return fail("expected ')' after SUM");
    } else if (parser.AtKeyword("COUNT")) {
      parser.Advance();
      if (!parser.ConsumeSymbol("(")) return fail("expected '(' after COUNT");
      if (!parser.ConsumeSymbol("*")) return fail("expected COUNT(*)");
      if (!parser.ConsumeSymbol(")")) {
        return fail("expected ')' after COUNT(*");
      }
      item.is_count = true;
    } else {
      item.expr = parser.ParseExpr();
      if (parser.failed()) return fail("");
    }
    if (parser.ConsumeKeyword("AS")) {
      item.name = parser.ExpectIdentifier("output column name");
      if (parser.failed()) return fail("");
    } else if (!item.is_sum && !item.is_count && item.expr != nullptr &&
               item.expr->kind() == ExprKind::kColumn) {
      item.name = item.expr->column_name();  // bare column keeps its name
    } else {
      return fail("aggregate / expression output needs an AS alias");
    }
    items.push_back(std::move(item));
  } while (parser.ConsumeSymbol(","));

  if (!parser.ConsumeKeyword("FROM")) return fail("expected FROM");
  std::vector<std::string> sources;
  do {
    std::string source = parser.ExpectIdentifier("source view name");
    if (parser.failed()) return fail("");
    sources.push_back(source);
  } while (parser.ConsumeSymbol(","));

  // WHERE: split into top-level conjuncts.
  std::vector<ScalarExpr::Ptr> conjuncts;
  if (parser.ConsumeKeyword("WHERE")) {
    ScalarExpr::Ptr predicate = parser.ParseExpr();
    if (parser.failed()) return fail("");
    SplitConjuncts(predicate, &conjuncts);
  }

  // GROUP BY keys.
  std::vector<std::string> group_keys;
  bool has_group_by = false;
  if (parser.ConsumeKeyword("GROUP")) {
    if (!parser.ConsumeKeyword("BY")) return fail("expected BY after GROUP");
    has_group_by = true;
    do {
      std::string key = parser.ExpectIdentifier("group key");
      if (parser.failed()) return fail("");
      group_keys.push_back(key);
    } while (parser.ConsumeSymbol(","));
  }
  if (parser.Peek().kind != TokenKind::kEnd) {
    return fail("trailing input after statement");
  }

  // ---- Semantic assembly ----
  // Locate the owning source of a column; empty if not found.
  auto owner_of = [&](const std::string& column) -> std::string {
    for (const std::string& src : sources) {
      if (resolver(src).HasColumn(column)) return src;
    }
    return "";
  };

  // Validate every referenced column.
  auto validate_columns = [&](const ScalarExpr::Ptr& e) -> std::string {
    for (const std::string& col : e->ReferencedColumns()) {
      if (owner_of(col).empty()) return col;
    }
    return "";
  };

  ViewDefinitionBuilder builder(view_name);
  for (const std::string& src : sources) builder.From(src);

  for (const ScalarExpr::Ptr& conjunct : conjuncts) {
    std::string bad = validate_columns(conjunct);
    if (!bad.empty()) return fail("unknown column in WHERE: " + bad);
    // column = column across two different sources -> equi-join.
    if (conjunct->kind() == ExprKind::kCompare &&
        conjunct->compare_op() == CompareOp::kEq &&
        conjunct->lhs()->kind() == ExprKind::kColumn &&
        conjunct->rhs()->kind() == ExprKind::kColumn) {
      std::string l = conjunct->lhs()->column_name();
      std::string r = conjunct->rhs()->column_name();
      if (owner_of(l) != owner_of(r)) {
        builder.JoinOn(l, r);
        continue;
      }
    }
    builder.Where(conjunct);
  }

  // Aggregate statements: GROUP BY keys become the projections; plain
  // SELECT items must match the keys.
  bool has_aggregates = false;
  for (const SelectItem& item : items) {
    has_aggregates |= item.is_sum || item.is_count;
  }
  if (has_aggregates || has_group_by) {
    if (!has_group_by) {
      return fail("aggregates require a GROUP BY clause");
    }
    // Emit group keys in SELECT order (every non-aggregate item must be a
    // grouped column / aliased expression over them).
    for (const SelectItem& item : items) {
      if (item.is_sum || item.is_count) continue;
      std::string bad = validate_columns(item.expr);
      if (!bad.empty()) return fail("unknown column in SELECT: " + bad);
      builder.Select(item.expr, item.name);
    }
    for (const SelectItem& item : items) {
      if (item.is_sum) {
        std::string bad = validate_columns(item.expr);
        if (!bad.empty()) return fail("unknown column in SUM: " + bad);
        builder.Sum(item.expr, item.name);
      } else if (item.is_count) {
        builder.Count(item.name);
      }
    }
    // Sanity: each GROUP BY key must appear among the plain select items.
    for (const std::string& key : group_keys) {
      bool found = false;
      for (const SelectItem& item : items) {
        if (!item.is_sum && !item.is_count &&
            (item.name == key ||
             (item.expr->kind() == ExprKind::kColumn &&
              item.expr->column_name() == key))) {
          found = true;
        }
      }
      if (!found) {
        return fail("GROUP BY key not in SELECT list: " + key);
      }
    }
  } else {
    for (const SelectItem& item : items) {
      std::string bad = validate_columns(item.expr);
      if (!bad.empty()) return fail("unknown column in SELECT: " + bad);
      builder.Select(item.expr, item.name);
    }
  }

  out.definition = builder.Build();
  out.error.clear();
  return out;
}

}  // namespace wuw
