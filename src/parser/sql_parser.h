// Parser for the SQL view-definition language of Section 2:
// SELECT-FROM-WHERE-GROUPBY statements over warehouse views.
//
//   SELECT l_orderkey, o_orderdate, o_shippriority,
//          SUM(l_extendedprice * (10000 - l_discount)) AS revenue
//   FROM CUSTOMER, ORDERS, LINEITEM
//   WHERE c_mktsegment = 'BUILDING'
//     AND c_custkey = o_custkey AND o_orderkey = l_orderkey
//     AND o_orderdate < DATE '1995-03-15'
//   GROUP BY l_orderkey, o_orderdate, o_shippriority
//
// Top-level WHERE conjuncts of the form column = column whose sides live
// in different FROM sources become equi-join conditions; everything else
// is a filter.  Classification needs the source schemas, so parsing takes
// a SchemaResolver (usually Vdag::OutputSchema).
//
// The grammar round-trips ViewDefinition::ToString(): parsing a rendered
// definition yields an equivalent definition (property-tested).
#ifndef WUW_PARSER_SQL_PARSER_H_
#define WUW_PARSER_SQL_PARSER_H_

#include <memory>
#include <string>

#include "expr/scalar_expr.h"
#include "view/view_definition.h"

namespace wuw {

/// Result of a parse: either a definition or an error message with
/// position info.
struct ParsedView {
  std::shared_ptr<const ViewDefinition> definition;  // null on failure
  std::string error;

  bool ok() const { return definition != nullptr; }
};

/// Parses a SELECT statement into a ViewDefinition named `view_name`.
/// `resolver` supplies the schemas of the FROM sources (for join/filter
/// classification and column validation).
ParsedView ParseViewDefinition(
    const std::string& view_name, const std::string& sql,
    const ViewDefinition::SchemaResolver& resolver);

/// Parses a scalar expression over `schema` (exposed for tests and ad-hoc
/// filter construction).  Returns null and sets *error on failure.
ScalarExpr::Ptr ParseScalarExpr(const std::string& sql, std::string* error);

/// Best-effort extraction of the FROM-clause source names, for validating
/// them BEFORE full parsing (SchemaResolver implementations typically
/// abort on unknown view names).  Returns an empty list when the text has
/// no recognizable FROM clause.
std::vector<std::string> ExtractFromSources(const std::string& sql);

}  // namespace wuw

#endif  // WUW_PARSER_SQL_PARSER_H_
