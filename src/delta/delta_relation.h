// Delta relations: the δV of the paper.
//
// A delta relation is a signed multiset over a view's schema.  Positive
// multiplicities are "plus tuples" (insertions), negative are "minus
// tuples" (deletions); the paper models an update as a deletion followed by
// an insertion, which is exactly a {-old, +new} pair here.
#ifndef WUW_DELTA_DELTA_RELATION_H_
#define WUW_DELTA_DELTA_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "algebra/rows.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace wuw {

/// The changes of one view, as a signed multiset keyed by tuple.
class DeltaRelation {
 public:
  DeltaRelation() = default;
  explicit DeltaRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Adds `count` signed copies of `tuple`; exact cancellation removes the
  /// entry.
  void Add(const Tuple& tuple, int64_t count);

  /// Absorbs a whole batch of signed rows.
  void AddRows(const Rows& rows);

  /// Merges another delta batch into this one (deferred maintenance:
  /// several periods' changes accumulate before one update window).  The
  /// merge equals applying both batches in sequence — signed multiset
  /// composition is additive, so later deletions cancel earlier inserts.
  void Merge(const DeltaRelation& other);

  /// |δV| under the linear work metric: total plus tuples + minus tuples.
  int64_t AbsCardinality() const { return plus_count_ + minus_count_; }

  /// Net change to |V| when this delta is installed.
  int64_t NetCardinality() const { return plus_count_ - minus_count_; }

  int64_t plus_count() const { return plus_count_; }
  int64_t minus_count() const { return minus_count_; }

  bool empty() const { return entries_.empty(); }
  size_t distinct_size() const { return entries_.size(); }

  /// Materializes as signed Rows for pipeline processing.
  Rows ToRows() const;

  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::unordered_map<Tuple, int64_t, TupleHash> entries_;
  int64_t plus_count_ = 0;
  int64_t minus_count_ = 0;
};

}  // namespace wuw

#endif  // WUW_DELTA_DELTA_RELATION_H_
