// Finalization: turning accumulated raw deltas into installable view-level
// delta relations.
//
// SPJ views: the raw delta already holds output tuples; finalization merely
// collapses duplicates.
//
// Aggregate views: the raw delta holds pre-aggregation (key, argument)
// rows.  Finalization aggregates them into a *summary delta* (per-group
// Δsum / Δcount, after MQM97) and combines it with the view's current
// extent, emitting {-old_row, +new_row} pairs per affected group.  A group
// whose contributing-row count drops to zero is deleted.
//
// Finalization must run after every Comp expression for the view and
// before its delta is first used (by Inst(V) or by a parent's Comp) —
// exactly the window conditions C3-C5/C8 guarantee exists.
#ifndef WUW_DELTA_SUMMARY_DELTA_H_
#define WUW_DELTA_SUMMARY_DELTA_H_

#include "algebra/operator_stats.h"
#include "algebra/rows.h"
#include "delta/delta_relation.h"
#include "storage/table.h"
#include "view/view_definition.h"

namespace wuw {

/// Collapses an SPJ view's raw delta rows into a DeltaRelation over
/// `output_schema`.
DeltaRelation FinalizeSpjDelta(const Schema& output_schema, const Rows& raw,
                               OperatorStats* stats);

/// Combines an aggregate view's raw delta with its current extent
/// (`current`, whose schema is keys + aggregates + __count) into the
/// view-level delta.
DeltaRelation FinalizeAggregateDelta(const ViewDefinition& def,
                                     const Table& current, const Rows& raw,
                                     OperatorStats* stats);

}  // namespace wuw

#endif  // WUW_DELTA_SUMMARY_DELTA_H_
