// Inst(V): installing a delta relation into a materialized table.
#ifndef WUW_DELTA_INSTALL_H_
#define WUW_DELTA_INSTALL_H_

#include "algebra/operator_stats.h"
#include "delta/delta_relation.h"
#include "storage/table.h"

namespace wuw {

/// Applies `delta` to `table`: plus tuples are inserted, minus tuples
/// deleted (Section 2).  The work charged is proportional to |δV|
/// (Def 3.5): stats->rows_scanned grows by delta.AbsCardinality().
void Install(const DeltaRelation& delta, Table* table, OperatorStats* stats);

}  // namespace wuw

#endif  // WUW_DELTA_INSTALL_H_
