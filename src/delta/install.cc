#include "delta/install.h"

#include "common/check.h"

namespace wuw {

void Install(const DeltaRelation& delta, Table* table, OperatorStats* stats) {
  WUW_CHECK(table != nullptr, "Install requires a table");
  delta.ForEach([&](const Tuple& tuple, int64_t count) {
    table->Add(tuple, count);
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
  });
}

}  // namespace wuw
