#include "delta/install.h"

#include "common/check.h"
#include "fault/fault_injection.h"

namespace wuw {

void Install(const DeltaRelation& delta, Table* table, OperatorStats* stats) {
  WUW_CHECK(table != nullptr, "Install requires a table");
  delta.ForEach([&](const Tuple& tuple, int64_t count) {
    // Per-row point: a kill here tears the extent mid-write — only
    // snapshot-restore recovery can undo the partially applied delta.
    WUW_FAULT_POINT("install.row");
    table->Add(tuple, count);
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
  });
}

}  // namespace wuw
