#include "delta/summary_delta.h"

#include <unordered_map>

#include "algebra/aggregate.h"
#include "common/check.h"
#include "view/join_pipeline.h"

namespace wuw {

DeltaRelation FinalizeSpjDelta(const Schema& output_schema, const Rows& raw,
                               OperatorStats* stats) {
  DeltaRelation delta(output_schema);
  for (const auto& [tuple, count] : raw.rows) {
    delta.Add(tuple, count);
    if (stats != nullptr) stats->rows_scanned += std::llabs(count);
  }
  return delta;
}

DeltaRelation FinalizeAggregateDelta(const ViewDefinition& def,
                                     const Table& current, const Rows& raw,
                                     OperatorStats* stats) {
  const Schema& out_schema = current.schema();
  const size_t num_keys = def.projections().size();
  const size_t num_aggs = def.aggregates().size();
  WUW_CHECK(out_schema.num_columns() == num_keys + num_aggs + 1,
            "aggregate view schema must be keys + aggregates + __count");

  DeltaRelation delta(out_schema);
  // Per-group change summary.
  Rows summary =
      AggregateSigned(raw, def.GroupKeyNames(), RawAggSpecs(def), stats);
  if (summary.rows.empty()) return delta;

  // Index the current extent by group key.  (A production system would keep
  // a key index on the summary table; a one-pass scan models the same
  // merge-style install and costs the same for every strategy, so it never
  // affects strategy comparisons.)
  std::vector<size_t> key_idx;
  for (size_t i = 0; i < num_keys; ++i) key_idx.push_back(i);
  std::unordered_map<Tuple, Tuple, TupleHash> current_by_key;
  current_by_key.reserve(current.distinct_size());
  current.ForEach([&](const Tuple& row, int64_t count) {
    WUW_CHECK(count == 1, "aggregate view rows must have multiplicity 1");
    current_by_key.emplace(row.Project(key_idx), row);
    if (stats != nullptr) stats->rows_scanned += 1;
  });

  for (const auto& [srow, smult] : summary.rows) {
    WUW_CHECK(smult == 1, "summary rows are +1 weighted");
    Tuple key = srow.Project(key_idx);

    auto it = current_by_key.find(key);
    const Tuple* old_row = it == current_by_key.end() ? nullptr : &it->second;

    int64_t old_count =
        old_row ? old_row->value(num_keys + num_aggs).AsInt64() : 0;
    int64_t delta_count = srow.value(num_keys + num_aggs).AsInt64();
    int64_t new_count = old_count + delta_count;
    WUW_CHECK(new_count >= 0,
              "group count went negative: inconsistent delta batch");

    Tuple new_row = key;
    for (size_t a = 0; a < num_aggs; ++a) {
      const Value& dv = srow.value(num_keys + a);
      if (old_row == nullptr) {
        new_row.Append(dv);
      } else {
        const Value& ov = old_row->value(num_keys + a);
        if (ov.type() == TypeId::kDouble || dv.type() == TypeId::kDouble) {
          new_row.Append(Value::Double(ov.NumericValue() + dv.NumericValue()));
        } else {
          new_row.Append(Value::Int64(ov.AsInt64() + dv.AsInt64()));
        }
      }
    }
    new_row.Append(Value::Int64(new_count));

    if (old_row != nullptr) delta.Add(*old_row, -1);
    if (new_count > 0) delta.Add(new_row, +1);
    if (stats != nullptr) stats->rows_produced += 1;
  }
  return delta;
}

}  // namespace wuw
