#include "delta/delta_relation.h"

namespace wuw {

void DeltaRelation::Add(const Tuple& tuple, int64_t count) {
  if (count == 0) return;
  auto it = entries_.find(tuple);
  int64_t before = (it == entries_.end()) ? 0 : it->second;
  int64_t after = before + count;
  // Maintain plus/minus totals incrementally.
  plus_count_ -= std::max<int64_t>(before, 0);
  minus_count_ -= std::max<int64_t>(-before, 0);
  plus_count_ += std::max<int64_t>(after, 0);
  minus_count_ += std::max<int64_t>(-after, 0);
  if (after == 0) {
    if (it != entries_.end()) entries_.erase(it);
  } else if (it == entries_.end()) {
    entries_.emplace(tuple, after);
  } else {
    it->second = after;
  }
}

void DeltaRelation::AddRows(const Rows& rows) {
  for (const auto& [tuple, count] : rows.rows) Add(tuple, count);
}

void DeltaRelation::Merge(const DeltaRelation& other) {
  other.ForEach([&](const Tuple& tuple, int64_t count) { Add(tuple, count); });
}

Rows DeltaRelation::ToRows() const {
  Rows out(schema_);
  out.rows.reserve(entries_.size());
  for (const auto& [tuple, count] : entries_) out.Add(tuple, count);
  return out;
}

void DeltaRelation::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  for (const auto& [tuple, count] : entries_) fn(tuple, count);
}

std::string DeltaRelation::ToString(size_t max_rows) const {
  std::string out = "delta" + schema_.ToString() + " {\n";
  size_t shown = 0;
  for (const auto& [tuple, count] : entries_) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += (count > 0 ? "  +" : "  ") + std::to_string(count) + " " +
           tuple.ToString() + "\n";
  }
  out += "} (+" + std::to_string(plus_count_) + "/-" +
         std::to_string(minus_count_) + ")";
  return out;
}

}  // namespace wuw
