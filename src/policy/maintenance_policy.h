// Maintenance policies: deciding WHEN to run the update window.
//
// "Reference [CKL+97] presents a framework for supporting different
// maintenance policies based on when changes are propagated to the views.
// The algorithms we present are used when changes are actually propagated;
// hence, the algorithms we present are complementary."  This module is
// that complement's other half: a scheduler that accumulates incoming
// batches (Warehouse::MergeBaseDelta — later deletions cancel earlier
// inserts) and triggers the MinWork-planned window per policy.
#ifndef WUW_POLICY_MAINTENANCE_POLICY_H_
#define WUW_POLICY_MAINTENANCE_POLICY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "delta/delta_relation.h"
#include "exec/executor.h"
#include "exec/warehouse.h"

namespace wuw {

/// When to run the update window.
struct PolicyOptions {
  enum class Kind {
    kImmediate,   // every batch opens a window
    kEveryK,      // defer until k batches accumulated
    kThreshold,   // defer until pending |δ| exceeds fraction of |warehouse|
  };
  Kind kind = Kind::kImmediate;
  int k = 1;
  double threshold_fraction = 0.05;
  /// Executor settings for the windows (simplification on by default: a
  /// deferred batch often leaves many views untouched).
  ExecutorOptions executor;
  /// Per-window update budget (exec/window_budget.h).  Unlimited (the
  /// default) reproduces the unbudgeted scheduler exactly.  A limiting
  /// budget makes each window pausable: a paused strategy carries into the
  /// next window (ResumeMode::kContinueInPlace with a fresh budget), and
  /// batches arriving while paused are deferred — merged among themselves
  /// (SourceChangeStream batches are coherent, so later batches compose)
  /// and applied only once the paused run completes, never into the batch
  /// the in-flight strategy was planned against.
  WindowBudgetOptions window_budget;

  static PolicyOptions Immediate() { return {}; }
  static PolicyOptions EveryK(int k) {
    PolicyOptions p;
    p.kind = Kind::kEveryK;
    p.k = k;
    return p;
  }
  static PolicyOptions Threshold(double fraction) {
    PolicyOptions p;
    p.kind = Kind::kThreshold;
    p.threshold_fraction = fraction;
    return p;
  }
};

/// Accumulated accounting across a scheduler's life.
struct PolicyReport {
  int64_t batches_received = 0;
  int64_t windows_run = 0;
  double total_window_seconds = 0;
  int64_t total_linear_work = 0;
  /// Sum of |δ| actually installed — smaller than the sum of incoming
  /// batch sizes when deferral lets changes cancel.
  int64_t rows_installed = 0;
  /// Windows that ended paused on budget exhaustion (each also counts in
  /// windows_run; a run needing three windows adds 2 here).
  int64_t windows_paused = 0;
  /// Linear work executed in resume windows — the work that spilled past
  /// each run's first window.
  int64_t carryover_work = 0;

  std::string ToString() const;
};

/// Drives one warehouse under one policy.
class MaintenanceScheduler {
 public:
  MaintenanceScheduler(Warehouse* warehouse, PolicyOptions options);

  /// Feeds one incoming batch (view name -> delta).  Merges into the
  /// pending state and runs the update window if the policy says so.
  /// Returns true if a window ran.
  bool OnBatch(
      const std::unordered_map<std::string, DeltaRelation>& batch);

  /// Forces completion now (end-of-period flush): finishes any paused run,
  /// then opens a window for remaining pending changes and chains resume
  /// windows until it completes.  No-op without pending changes.
  void Flush();

  /// True while a budget-paused run awaits its next window.
  bool window_paused() const { return window_paused_; }

  /// Runs one more budgeted window of the paused strategy
  /// (ResumeMode::kContinueInPlace).  Returns true when the run completed
  /// — deferred batches are then merged into the warehouse.  Every resume
  /// window completes at least one step, so chains terminate even under a
  /// zero-work budget.
  bool ResumeWindow();

  const PolicyReport& report() const { return report_; }

 private:
  bool ShouldRun() const;
  void RunWindow();

  Warehouse* warehouse_;
  PolicyOptions options_;
  PolicyReport report_;
  int batches_since_window_ = 0;
  bool window_paused_ = false;
  /// |δ| of the in-flight run's batch, credited to rows_installed when it
  /// completes.
  int64_t paused_pending_rows_ = 0;
  /// Batches deferred while paused, merged among themselves.
  std::unordered_map<std::string, DeltaRelation> deferred_;
};

}  // namespace wuw

#endif  // WUW_POLICY_MAINTENANCE_POLICY_H_
