#include "policy/maintenance_policy.h"

#include <cstdio>

#include "common/check.h"
#include "core/min_work.h"

namespace wuw {

std::string PolicyReport::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "batches=%lld windows=%lld wall=%.4fs work=%lld "
                "rows_installed=%lld",
                static_cast<long long>(batches_received),
                static_cast<long long>(windows_run), total_window_seconds,
                static_cast<long long>(total_linear_work),
                static_cast<long long>(rows_installed));
  return buffer;
}

MaintenanceScheduler::MaintenanceScheduler(Warehouse* warehouse,
                                           PolicyOptions options)
    : warehouse_(warehouse), options_(options) {
  WUW_CHECK(warehouse_ != nullptr, "scheduler needs a warehouse");
  WUW_CHECK(options_.k >= 1, "EveryK policy needs k >= 1");
}

bool MaintenanceScheduler::OnBatch(
    const std::unordered_map<std::string, DeltaRelation>& batch) {
  for (const auto& [view, delta] : batch) {
    warehouse_->MergeBaseDelta(view, delta);
  }
  ++report_.batches_received;
  ++batches_since_window_;
  if (!ShouldRun()) return false;
  RunWindow();
  return true;
}

void MaintenanceScheduler::Flush() {
  bool pending = false;
  for (const std::string& base : warehouse_->vdag().BaseViews()) {
    if (!warehouse_->base_delta(base).empty()) pending = true;
  }
  if (pending) RunWindow();
}

bool MaintenanceScheduler::ShouldRun() const {
  switch (options_.kind) {
    case PolicyOptions::Kind::kImmediate:
      return true;
    case PolicyOptions::Kind::kEveryK:
      return batches_since_window_ >= options_.k;
    case PolicyOptions::Kind::kThreshold: {
      int64_t pending = 0, total = 0;
      for (const std::string& base : warehouse_->vdag().BaseViews()) {
        pending += warehouse_->base_delta(base).AbsCardinality();
        total += warehouse_->catalog().MustGetTable(base)->cardinality();
      }
      return total == 0 ||
             static_cast<double>(pending) >=
                 options_.threshold_fraction * static_cast<double>(total);
    }
  }
  return true;
}

void MaintenanceScheduler::RunWindow() {
  int64_t pending = 0;
  for (const std::string& base : warehouse_->vdag().BaseViews()) {
    pending += warehouse_->base_delta(base).AbsCardinality();
  }

  MinWorkResult plan =
      MinWork(warehouse_->vdag(), warehouse_->EstimatedSizes());
  ExecutorOptions exec_options = options_.executor;
  exec_options.simplify_empty_deltas = true;
  Executor executor(warehouse_, exec_options);
  ExecutionReport window = executor.Execute(plan.strategy);

  ++report_.windows_run;
  report_.total_window_seconds += window.total_seconds;
  report_.total_linear_work += window.total_linear_work;
  report_.rows_installed += pending;
  batches_since_window_ = 0;
}

}  // namespace wuw
