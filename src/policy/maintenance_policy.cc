#include "policy/maintenance_policy.h"

#include <cstdio>

#include "common/check.h"
#include "core/min_work.h"
#include "exec/recovery.h"
#include "obs/metrics.h"

namespace wuw {

std::string PolicyReport::ToString() const {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "batches=%lld windows=%lld wall=%.4fs work=%lld "
                "rows_installed=%lld windows_paused=%lld carryover_work=%lld",
                static_cast<long long>(batches_received),
                static_cast<long long>(windows_run), total_window_seconds,
                static_cast<long long>(total_linear_work),
                static_cast<long long>(rows_installed),
                static_cast<long long>(windows_paused),
                static_cast<long long>(carryover_work));
  return buffer;
}

MaintenanceScheduler::MaintenanceScheduler(Warehouse* warehouse,
                                           PolicyOptions options)
    : warehouse_(warehouse), options_(options) {
  WUW_CHECK(warehouse_ != nullptr, "scheduler needs a warehouse");
  WUW_CHECK(options_.k >= 1, "EveryK policy needs k >= 1");
}

bool MaintenanceScheduler::OnBatch(
    const std::unordered_map<std::string, DeltaRelation>& batch) {
  ++report_.batches_received;
  if (window_paused_) {
    // The in-flight strategy was planned against the batch it is half-way
    // through installing; merging new changes into that batch would make
    // the journal incoherent.  Defer (later batches compose with each
    // other) and spend this period's window continuing the paused run.
    for (const auto& [view, delta] : batch) {
      auto it = deferred_.find(view);
      if (it == deferred_.end()) {
        deferred_.emplace(view, delta);
      } else {
        it->second.Merge(delta);
      }
    }
    ++batches_since_window_;
    ResumeWindow();
    return true;
  }
  for (const auto& [view, delta] : batch) {
    warehouse_->MergeBaseDelta(view, delta);
  }
  ++batches_since_window_;
  if (!ShouldRun()) return false;
  RunWindow();
  return true;
}

void MaintenanceScheduler::Flush() {
  // Completing a paused run merges its deferred batches, which may leave
  // fresh pending changes — loop until nothing is paused or pending.
  while (window_paused_) ResumeWindow();
  while (true) {
    bool pending = false;
    for (const std::string& base : warehouse_->vdag().BaseViews()) {
      if (!warehouse_->base_delta(base).empty()) pending = true;
    }
    if (!pending) return;
    RunWindow();
    while (window_paused_) ResumeWindow();
  }
}

bool MaintenanceScheduler::ShouldRun() const {
  switch (options_.kind) {
    case PolicyOptions::Kind::kImmediate:
      return true;
    case PolicyOptions::Kind::kEveryK:
      return batches_since_window_ >= options_.k;
    case PolicyOptions::Kind::kThreshold: {
      int64_t pending = 0, total = 0;
      for (const std::string& base : warehouse_->vdag().BaseViews()) {
        pending += warehouse_->base_delta(base).AbsCardinality();
        total += warehouse_->catalog().MustGetTable(base)->cardinality();
      }
      return total == 0 ||
             static_cast<double>(pending) >=
                 options_.threshold_fraction * static_cast<double>(total);
    }
  }
  return true;
}

void MaintenanceScheduler::RunWindow() {
  int64_t pending = 0;
  for (const std::string& base : warehouse_->vdag().BaseViews()) {
    pending += warehouse_->base_delta(base).AbsCardinality();
  }

  MinWorkResult plan =
      MinWork(warehouse_->vdag(), warehouse_->EstimatedSizes());
  ExecutorOptions exec_options = options_.executor;
  exec_options.simplify_empty_deltas = true;
  WindowBudget budget(options_.window_budget);
  if (budget.limited()) exec_options.budget = &budget;
  Executor executor(warehouse_, exec_options);
  ExecutionReport window = executor.Execute(plan.strategy);

  ++report_.windows_run;
  report_.total_window_seconds += window.total_seconds;
  report_.total_linear_work += window.total_linear_work;
  if (window.window_result == WindowResult::kPaused) {
    ++report_.windows_paused;
    WUW_METRIC_ADD("policy.windows_paused", obs::MetricClass::kEngine, 1);
    window_paused_ = true;
    paused_pending_rows_ = pending;
    return;  // batch stays pending; the journal is the carryover handle
  }
  report_.rows_installed += pending;
  batches_since_window_ = 0;
}

bool MaintenanceScheduler::ResumeWindow() {
  WUW_CHECK(window_paused_, "ResumeWindow without a paused run");
  ExecutorOptions exec_options = options_.executor;
  exec_options.simplify_empty_deltas = true;
  WindowBudget budget(options_.window_budget);
  if (budget.limited()) exec_options.budget = &budget;
  ResumeReport resumed =
      ResumeStrategy(warehouse_->journal(), warehouse_, exec_options,
                     ResumeMode::kContinueInPlace);

  ++report_.windows_run;
  report_.total_window_seconds += resumed.execution.total_seconds;
  report_.total_linear_work += resumed.execution.total_linear_work;
  report_.carryover_work += resumed.execution.total_linear_work;
  WUW_METRIC_ADD("window.carryover_work", obs::MetricClass::kEngine,
                 resumed.execution.total_linear_work);
  if (resumed.window_result == WindowResult::kPaused) {
    ++report_.windows_paused;
    WUW_METRIC_ADD("policy.windows_paused", obs::MetricClass::kEngine, 1);
    return false;
  }
  window_paused_ = false;
  report_.rows_installed += paused_pending_rows_;
  paused_pending_rows_ = 0;
  batches_since_window_ = 0;
  // The run is durable; the batches that arrived while it was in flight
  // become the next pending batch.
  for (auto& [view, delta] : deferred_) {
    warehouse_->MergeBaseDelta(view, delta);
  }
  deferred_.clear();
  return true;
}

}  // namespace wuw
