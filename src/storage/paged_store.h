// Beyond-RAM extents: the WUW_MEM_MB paging layer over the Catalog.
//
// A PagedStore keeps the warehouse's *resident set* of extents under a
// byte budget.  Extents that fall out of the working set hibernate to
// CRC-framed page images (storage/page.h, temp+rename durability);
// touching a hibernated extent faults it back in transparently through
// the Catalog accessor hooks (Catalog::SetPager), rebuilding the
// identical dense-row layout — so rows, row order, OperatorStats, and
// every kWork counter are bit-identical to the always-resident engine at
// ANY budget (paged_differential_property_test proves it).
//
// Determinism model (mirrors the threading model, DESIGN.md):
//   * Eviction decisions happen only at executor touch points — the
//     sequential executor before each step, the parallel executor's
//     coordinator before each stage — never from worker threads (workers
//     touch with evict=false: fault-in only).  LRU state is therefore a
//     pure function of the strategy, so `paged.faults`/`paged.evictions`
//     are identical at every WUW_THREADS value.
//   * Snapshot interaction: a published (pinned) extent slot has
//     use_count > 1 and is never hibernated — pinned read snapshots keep
//     their pages resident by construction.  The first write after a
//     publish COW-detaches to a fresh slot (use_count 1), which pages
//     normally.
//   * Hibernate order: write image, then release the payload — a kill at
//     `paged.io.write` leaves the extent resident and intact.  Fault-in
//     decodes the whole image before mutating the table, restores the
//     exact mutation_count, and never bumps extent_version (contents are
//     unchanged, so subplan-cache scan keys stay valid exactly as in a
//     resident run).  A corrupt/torn image raises std::runtime_error —
//     an I/O failure, not an abort.
//   * All page I/O rides the io::Env seam (storage/page.h): image saves
//     get the full fsync+rename+dirsync discipline, transient read EIO
//     (WUW_IO_FAULT read_eio=) is absorbed by PageFile's bounded retry
//     (kEngine `io.retries`), and the crash harness
//     (crash_restart_property_test) kills processes mid-hibernate /
//     mid-fault-in and reopens from the image directory.
//
// Unset WUW_MEM_MB = zero behavior change: the catalog hook is a null
// pointer check and the kernels' spill gate is one relaxed atomic load
// (bench/micro_paged keeps this honest).
#ifndef WUW_STORAGE_PAGED_STORE_H_
#define WUW_STORAGE_PAGED_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/catalog.h"
#include "storage/page.h"

namespace wuw {
namespace paged {

/// Configuration of the paged tier (extent paging + operator spills).
struct PagedOptions {
  /// Extent residency budget in bytes (required, > 0).  Extents beyond it
  /// hibernate to page images, least-recently-touched first.
  int64_t budget_bytes = 0;
  /// On-disk page size for images and spill files.
  size_t page_bytes = 64 << 10;
  /// Grace-spill fan-out (power of two in [1, 256]).
  size_t partitions = 8;
  /// Build-side size (analytic bytes) above which the join/aggregation
  /// kernels take their grace-partition spill path; 0 derives budget/4.
  int64_t spill_bytes = 0;
  /// Byte budget of each operator's private BufferPool; 0 derives
  /// max(4 pages, budget/4).
  int64_t pool_bytes = 0;
  /// Spill directory; "" = the system temp directory.
  std::string dir;
};

/// Operator spill threshold with the budget/4 default applied.
int64_t ResolvedSpillBytes(const PagedOptions& options);
/// Operator pool budget with the max(4 pages, budget/4) default applied.
int64_t ResolvedPoolBytes(const PagedOptions& options);

/// Parses a WUW_MEM_MB spec.  Grammar (';'-separated clauses):
///   <N>               shorthand for mb=<N>
///   mb=<N>            extent residency budget, mebibytes
///   bytes=<N>         ... in bytes (test granularity)
///   page_bytes=<N>    on-disk page size (default 64 KiB)
///   partitions=<N>    grace-spill fan-out, power of two (default 8)
///   spill_bytes=<N>   operator spill threshold (default budget/4)
///   pool_bytes=<N>    per-operator pool budget (default derived)
///   dir=<path>        spill directory (default system temp)
/// Example: "512" or "bytes=65536;page_bytes=4096".  Returns "" on
/// success, else a description of the error (user-facing input path: no
/// aborts).
std::string ParsePagedSpec(const std::string& spec, PagedOptions* out);

/// The process-wide WUW_MEM_MB options: parsed once on first use.
/// Returns nullptr when the knob is unset; a malformed spec warns once on
/// stderr and reads as unset.
const PagedOptions* EnvPaged();

/// The kernels' spill gate: non-null iff operator spills are armed
/// (WUW_MEM_MB, or a ScopedOperatorSpill in-process).  One relaxed atomic
/// load — the fault-point discipline.
const PagedOptions* OperatorSpill();

/// RAII in-process arming of the operator spill paths (tests/benches).
/// Not thread-safe against concurrent arming — arm before spawning work.
class ScopedOperatorSpill {
 public:
  explicit ScopedOperatorSpill(const PagedOptions& options);
  ~ScopedOperatorSpill();

  ScopedOperatorSpill(const ScopedOperatorSpill&) = delete;
  ScopedOperatorSpill& operator=(const ScopedOperatorSpill&) = delete;

 private:
  PagedOptions options_;
  const PagedOptions* prev_;
};

/// The extent pager.  Owned by a Warehouse (Warehouse::EnablePaging) and
/// attached to its Catalog; thread-safe (the accessor hook is called from
/// worker threads).
class PagedStore {
 public:
  explicit PagedStore(PagedOptions options);
  /// Removes the image directory.  Never throws.
  ~PagedStore();

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  const PagedOptions& options() const { return options_; }
  const std::string& dir() const { return dir_; }

  /// Tracks `name` (idempotent).  Registration order breaks LRU ties, so
  /// callers register in a deterministic order (catalog creation order).
  void Register(const std::string& name);

  /// Catalog accessor hook: faults `table` back in if hibernated and
  /// stamps its last-used clock.  Unregistered names auto-register (the
  /// deterministic safety net for extents created mid-run).
  void OnAccess(const std::string& name, Table* table);

  /// Executor touch point: faults `names` in through the catalog hooks,
  /// then (when `evict`) advances the LRU clock and hibernates
  /// least-recently-used unpinned extents until the resident set fits the
  /// budget.  Extents named here, hibernated entries, and published slots
  /// (use_count > 1) are never victims.
  void Touch(const std::vector<std::string>& names, Catalog* catalog,
             bool evict);

  /// Test/bench hook: hibernates every evictable extent regardless of
  /// budget (pinned and just-touched extents stay).
  void TestOnlyEvictAll(Catalog* catalog);

  bool IsHibernated(const std::string& name) const;
  int64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Analytic bytes of the resident tracked set (as of the last touch).
  int64_t resident_bytes() const;

 private:
  struct Entry {
    int64_t reg_order = 0;
    uint64_t last_used = 0;
    bool hibernated = false;
    bool has_image = false;
    /// Table::mutation_count when the image was written; a differing live
    /// count means the image is stale and must be rewritten on hibernate.
    int64_t image_mutations = -1;
    /// Cached ApproxTableBytes keyed by mutation count.
    int64_t approx_bytes = 0;
    int64_t bytes_mutations = -1;
    std::string path;
  };

  /// Both require mu_ held.
  void RegisterLocked(const std::string& name);
  void FaultInLocked(const std::string& name, Entry* entry, Table* table);
  void HibernateLocked(const std::string& name, Entry* entry, Table* table);
  void EvictLocked(Catalog* catalog, bool ignore_budget);

  mutable std::mutex mu_;
  PagedOptions options_;
  std::string dir_;
  /// LRU clock: advanced by evicting touches only, so worker fault-ins
  /// never perturb eviction order.
  uint64_t seq_ = 1;
  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  std::atomic<int64_t> faults_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace paged
}  // namespace wuw

#endif  // WUW_STORAGE_PAGED_STORE_H_
