// Counting (multiset) tables: the storage representation of every
// materialized view in the warehouse.
//
// A table maps each distinct tuple to a positive multiplicity.  This is the
// standard "counting" representation used by incremental view maintenance
// (Gupta-Mumick-Subrahmanian 1993, Griffin-Libkin 1995): installing a delta
// relation is then a pure multiplicity merge, and deletions never need to
// search for "which copy" of a duplicate to remove.
//
// Storage layout matters here: rows live in a dense vector (scans cost
// exactly the live rows, like a compacted heap file) with a hash index of
// tuple-hash -> positions for O(1) point updates.  Deleting rows genuinely
// makes later scans cheaper — the physical effect the paper's view
// orderings exploit ("install shrinking views early").
#ifndef WUW_STORAGE_TABLE_H_
#define WUW_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace wuw {

/// A multiset relation instance.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Number of tuples counting multiplicity.  This is the |V| of the
  /// paper's work metric.
  int64_t cardinality() const { return cardinality_; }

  /// Number of distinct tuples.
  size_t distinct_size() const { return rows_.size(); }

  bool empty() const { return cardinality_ == 0; }

  /// Adds `count` copies of `tuple` (count may be negative; the stored
  /// multiplicity is clamped at zero — a warning-free model of installing a
  /// deletion for a tuple that is absent, which correct strategies never
  /// produce but tests exercise).  Returns the resulting multiplicity.
  int64_t Add(const Tuple& tuple, int64_t count);

  /// Multiplicity of `tuple` (0 if absent).
  int64_t Count(const Tuple& tuple) const;

  /// Iterates over (tuple, multiplicity) pairs in unspecified order.
  void ForEach(
      const std::function<void(const Tuple&, int64_t)>& fn) const;

  /// The dense live-row storage, in the same order ForEach visits it —
  /// lets parallel scans claim index ranges without per-row callbacks.
  const std::vector<std::pair<Tuple, int64_t>>& dense_rows() const {
    return rows_;
  }

  /// Stable snapshot of contents sorted by tuple — used by tests to compare
  /// database states across strategies.
  std::vector<std::pair<Tuple, int64_t>> SortedRows() const;

  void Clear();

  /// Multiset equality.
  bool ContentsEqual(const Table& other) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  /// Position of `tuple` in rows_, or SIZE_MAX.
  size_t FindPosition(const Tuple& tuple, size_t hash) const;

  Schema schema_;
  /// Dense live rows: (tuple, multiplicity > 0).
  std::vector<std::pair<Tuple, int64_t>> rows_;
  /// tuple hash -> positions in rows_ (rarely more than one).
  std::unordered_map<size_t, std::vector<uint32_t>> index_;
  int64_t cardinality_ = 0;
};

}  // namespace wuw

#endif  // WUW_STORAGE_TABLE_H_
