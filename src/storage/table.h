// Counting (multiset) tables: the storage representation of every
// materialized view in the warehouse.
//
// A table maps each distinct tuple to a positive multiplicity.  This is the
// standard "counting" representation used by incremental view maintenance
// (Gupta-Mumick-Subrahmanian 1993, Griffin-Libkin 1995): installing a delta
// relation is then a pure multiplicity merge, and deletions never need to
// search for "which copy" of a duplicate to remove.
//
// Storage layout matters here: rows live in a dense vector (scans cost
// exactly the live rows, like a compacted heap file) with a hash index of
// tuple-hash -> position for O(1) point updates.  Deleting rows genuinely
// makes later scans cheaper — the physical effect the paper's view
// orderings exploit ("install shrinking views early").
//
// The index is a flat open-addressing table (linear probing, tombstoned
// deletes): one inline {hash, position} slot per live row, no per-hash heap
// vectors.  Distinct tuples that collide on their full hash simply occupy
// neighboring slots.  Rehashing reuses the stored hashes, so growth never
// re-hashes tuples.
#ifndef WUW_STORAGE_TABLE_H_
#define WUW_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace wuw {

class ColumnTable;

/// A multiset relation instance.
class Table {
 public:
  Table();
  explicit Table(Schema schema);
  Table(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(const Table& other);
  Table& operator=(Table&& other) noexcept;
  ~Table();

  const Schema& schema() const { return schema_; }

  /// Number of tuples counting multiplicity.  This is the |V| of the
  /// paper's work metric.
  int64_t cardinality() const { return cardinality_; }

  /// Number of distinct tuples.
  size_t distinct_size() const { return rows_.size(); }

  bool empty() const { return cardinality_ == 0; }

  /// Adds `count` copies of `tuple` (count may be negative; the stored
  /// multiplicity is clamped at zero — a warning-free model of installing a
  /// deletion for a tuple that is absent, which correct strategies never
  /// produce but tests exercise).  Returns the resulting multiplicity.
  int64_t Add(const Tuple& tuple, int64_t count);

  /// Multiplicity of `tuple` (0 if absent).
  int64_t Count(const Tuple& tuple) const;

  /// Iterates over (tuple, multiplicity) pairs in unspecified order.
  void ForEach(
      const std::function<void(const Tuple&, int64_t)>& fn) const;

  /// The dense live-row storage, in the same order ForEach visits it —
  /// lets parallel scans claim index ranges without per-row callbacks.
  const std::vector<std::pair<Tuple, int64_t>>& dense_rows() const {
    return rows_;
  }

  /// Stable snapshot of contents sorted by tuple — used by tests to compare
  /// database states across strategies.
  std::vector<std::pair<Tuple, int64_t>> SortedRows() const;

  void Clear();

  /// Multiset equality.
  bool ContentsEqual(const Table& other) const;

  /// Columnar mirror of dense_rows(), built lazily on first request
  /// (thread-safe) and cached until the next mutation; shared with copies.
  /// Null when any cell violates its declared column type — consumers then
  /// stay on the row-at-a-time path (see storage/column_table.h).
  std::shared_ptr<const ColumnTable> ColumnarSnapshot() const;

  /// Heap bytes held by the hash index (the micro_engine memory line).
  size_t IndexBytes() const;

  /// Monotone count of mutating calls (Add with a non-zero effect window,
  /// Clear).  Copies inherit the count, so a copy-on-write detach preserves
  /// continuity — the snapshot-audit in exec/warehouse.cc compares it
  /// against extent_version across publishes to catch unbumped mutations.
  int64_t mutation_count() const { return mutation_count_; }

  /// PAGED STORE ONLY (storage/paged_store.h): drops the in-memory payload
  /// of a hibernated extent — rows, index, and columnar cache — while
  /// preserving schema, cardinality() (so size estimation works without a
  /// fault-in) and mutation_count() (so the publish audit and the pager's
  /// image-staleness check stay coherent).  The table must not be read or
  /// mutated until the pager faults it back in.
  void ReleasePayload();

  /// PAGED STORE ONLY: restores the exact pre-hibernation mutation count
  /// after a fault-in rebuild (Clear + Add bumped it past the saved
  /// value).  Contents are bit-identical to the hibernated state, so
  /// continuity of the count is the truthful accounting.
  void RestoreMutationCount(int64_t count) { mutation_count_ = count; }

  std::string ToString(size_t max_rows = 20) const;

 private:
  /// Slot position markers.  Row positions must stay below kIndexTombstone.
  static constexpr uint32_t kIndexEmpty = UINT32_MAX;
  static constexpr uint32_t kIndexTombstone = UINT32_MAX - 1;

  /// One open-addressing slot: the row's full tuple hash (for probe
  /// skipping and rehashing without touching tuples) and its position in
  /// rows_.
  struct IndexSlot {
    size_t hash;
    uint32_t pos;
  };

  /// Position of `tuple` in rows_, or SIZE_MAX.
  size_t FindPosition(const Tuple& tuple, size_t hash) const;

  /// Places (hash, pos) in the first free slot, growing first if needed.
  void IndexInsert(size_t hash, uint32_t pos);
  /// Tombstones the slot holding exactly (hash, pos).
  void IndexErase(size_t hash, uint32_t pos);
  /// Redirects the slot holding (hash, old_pos) to new_pos.
  void IndexRepoint(size_t hash, uint32_t old_pos, uint32_t new_pos);
  /// Rebuilds slots_ at `new_capacity` (a power of two) from live slots.
  void IndexRehash(size_t new_capacity);

  struct SnapshotCache;

  Schema schema_;
  /// Dense live rows: (tuple, multiplicity > 0).
  std::vector<std::pair<Tuple, int64_t>> rows_;
  /// Flat open-addressing index over rows_; empty vector until first Add.
  std::vector<IndexSlot> slots_;
  /// Live + tombstoned slots (the probe-length load factor).
  size_t slots_used_ = 0;
  int64_t cardinality_ = 0;
  /// See mutation_count().
  int64_t mutation_count_ = 0;
  /// Lazily-built columnar snapshot; see ColumnarSnapshot().
  mutable std::shared_ptr<SnapshotCache> snapshot_;
  /// Set by mutations; the next ColumnarSnapshot() starts a fresh cache so
  /// copies sharing the old one keep theirs.
  bool snapshot_stale_ = false;
  /// Guards snapshot_ / snapshot_stale_ so concurrent readers of an
  /// immutable (published) table can all call ColumnarSnapshot().  Never
  /// copied or moved: each Table object owns its own lock.
  mutable std::mutex snapshot_mu_;
};

}  // namespace wuw

#endif  // WUW_STORAGE_TABLE_H_
