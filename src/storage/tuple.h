// Tuples: fixed-width rows of Values, hashable and totally ordered so they
// can key the counting tables and group-by maps.
//
// Tuples are copy-on-write: copying one (scans materializing Rows, hash
// join outputs referencing inputs, delta accumulation) bumps a reference
// count instead of cloning the value vector.  Mutating accessors
// (Append / mutable_value) detach first.
#ifndef WUW_STORAGE_TUPLE_H_
#define WUW_STORAGE_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace wuw {

/// A row of scalar values.  Tuples do not carry their schema; the containing
/// Table / DeltaRelation does.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values)
      : values_(std::make_shared<std::vector<Value>>(std::move(values))) {}

  size_t size() const { return values_ ? values_->size() : 0; }
  const Value& value(size_t i) const { return (*values_)[i]; }
  Value& mutable_value(size_t i) {
    Detach();
    return (*values_)[i];
  }
  const std::vector<Value>& values() const {
    static const std::vector<Value> kEmpty;
    return values_ ? *values_ : kEmpty;
  }

  void Append(Value v) {
    Detach();
    values_->push_back(std::move(v));
  }

  /// Concatenation, used by joins.
  static Tuple Concat(const Tuple& a, const Tuple& b);

  /// Projection onto a list of column indices.
  Tuple Project(const std::vector<size_t>& indices) const;

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  std::string ToString() const;

 private:
  void Detach() {
    if (!values_) {
      values_ = std::make_shared<std::vector<Value>>();
    } else if (values_.use_count() > 1) {
      values_ = std::make_shared<std::vector<Value>>(*values_);
    }
  }

  std::shared_ptr<std::vector<Value>> values_;
};

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace wuw

#endif  // WUW_STORAGE_TUPLE_H_
