#include "storage/value.h"

#include <functional>

#include "common/check.h"

namespace wuw {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
    case TypeId::kDate:
      return "DATE";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  WUW_CHECK(type_ == TypeId::kInt64, "Value is not an INT64");
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  WUW_CHECK(type_ == TypeId::kDouble, "Value is not a DOUBLE");
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  WUW_CHECK(type_ == TypeId::kString, "Value is not a STRING");
  return std::get<std::string>(rep_);
}

int64_t Value::AsDate() const {
  WUW_CHECK(type_ == TypeId::kDate, "Value is not a DATE");
  return std::get<int64_t>(rep_);
}

double Value::NumericValue() const {
  switch (type_) {
    case TypeId::kInt64:
    case TypeId::kDate:
      return static_cast<double>(std::get<int64_t>(rep_));
    case TypeId::kDouble:
      return std::get<double>(rep_);
    default:
      WUW_CHECK(false, "Value is not numeric");
  }
  return 0.0;
}

namespace {

// Rank used to order values of different type classes.  Numeric-ish types
// (int64, double, date) share a rank and compare by numeric value so that
// e.g. Int64(3) == Double(3.0) never arises by construction in typed
// columns, yet heterogeneous comparison stays total.
int TypeRank(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return 0;
    case TypeId::kInt64:
    case TypeId::kDouble:
    case TypeId::kDate:
      return 1;
    case TypeId::kString:
      return 2;
  }
  return 3;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (TypeRank(type_) != TypeRank(other.type_)) return false;
  switch (TypeRank(type_)) {
    case 0:
      return true;  // null == null
    case 1:
      return NumericValue() == other.NumericValue();
    default:
      return AsString() == other.AsString();
  }
}

bool Value::operator<(const Value& other) const {
  int lr = TypeRank(type_), rr = TypeRank(other.type_);
  if (lr != rr) return lr < rr;
  switch (lr) {
    case 0:
      return false;
    case 1:
      return NumericValue() < other.NumericValue();
    default:
      return AsString() < other.AsString();
  }
}

size_t Value::Hash() const {
  switch (TypeRank(type_)) {
    case 0:
      return 0x9e3779b97f4a7c15ull;
    case 1: {
      // Hash numerics through their double image so that equal values hash
      // equally regardless of representation.
      double d = NumericValue();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>{}(d);
    }
    default:
      return std::hash<std::string>{}(AsString());
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return std::to_string(std::get<int64_t>(rep_));
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", std::get<double>(rep_));
      return buf;
    }
    case TypeId::kString:
      return std::get<std::string>(rep_);
    case TypeId::kDate: {
      int64_t d = std::get<int64_t>(rep_);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                    static_cast<int>(d / 10000),
                    static_cast<int>((d / 100) % 100),
                    static_cast<int>(d % 100));
      return buf;
    }
  }
  return "?";
}

}  // namespace wuw
