#include "storage/schema.h"

#include "common/check.h"

namespace wuw {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = by_name_.emplace(columns_[i].name, i);
    (void)it;
    WUW_CHECK(inserted, ("duplicate column name: " + columns_[i].name).c_str());
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

size_t Schema::MustIndexOf(const std::string& name) const {
  int i = IndexOf(name);
  WUW_CHECK(i >= 0, ("unknown column: " + name).c_str());
  return static_cast<size_t>(i);
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += TypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace wuw
