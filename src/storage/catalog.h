// Catalog: the named collection of materialized tables at the warehouse.
#ifndef WUW_STORAGE_CATALOG_H_
#define WUW_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace wuw {

/// Maps view names to their materialized extents.  The Warehouse (exec/)
/// couples a Catalog with a Vdag and pending deltas; the Catalog itself is
/// pure storage.
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (tables can be large); use Clone() when a test
  // needs an independent copy of the database state.
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; aborts if the name exists.
  Table* CreateTable(const std::string& name, Schema schema);

  /// Lookup; nullptr if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Lookup; aborts if absent.
  Table* MustGetTable(const std::string& name);
  const Table* MustGetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Names in creation order (stable across runs, used for reporting).
  const std::vector<std::string>& table_names() const { return names_; }

  /// The owning shared slot for `name` — what snapshot publication pins
  /// (storage/read_snapshot.h); aborts if absent.  A published slot must
  /// never be mutated again: writers ReplaceTable() a copy first.
  std::shared_ptr<const Table> SharedTable(const std::string& name) const;

  /// Swaps in a new extent object for an existing name (the copy-on-write
  /// detach).  Concurrent ReplaceTable calls for *distinct* names are safe:
  /// the map's node set is fixed after creation, so only disjoint slots are
  /// written.  Aborts if the name is absent.
  void ReplaceTable(const std::string& name, std::shared_ptr<Table> table);

  /// Deep copy of all tables.
  Catalog Clone() const;

  /// True iff both catalogs hold the same *visible* tables with identical
  /// contents.  Hidden auxiliary views ("__aux_<n>", plan/aux_view.h) are
  /// skipped on both sides: they are system-managed materializations one
  /// side may have promoted and the other not.
  bool ContentsEqual(const Catalog& other) const;

 private:
  /// shared_ptr slots so snapshot states can pin an extent version past its
  /// replacement (epoch-based reclamation = last pin frees it).
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
  std::vector<std::string> names_;
};

}  // namespace wuw

#endif  // WUW_STORAGE_CATALOG_H_
