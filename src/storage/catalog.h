// Catalog: the named collection of materialized tables at the warehouse.
#ifndef WUW_STORAGE_CATALOG_H_
#define WUW_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace wuw {

namespace paged {
class PagedStore;
}  // namespace paged

/// Maps view names to their materialized extents.  The Warehouse (exec/)
/// couples a Catalog with a Vdag and pending deltas; the Catalog itself is
/// pure storage.
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (tables can be large); use Clone() when a test
  // needs an independent copy of the database state.
  //
  // A move DETACHES the destination from any pager: the pager is owned by
  // the source's Warehouse and may not outlive it (test helpers move
  // catalogs out of short-lived clones).  Hibernated extents are faulted
  // back in first, so the detached catalog is fully resident — which makes
  // the move potentially throwing (page I/O).  The Warehouse move ops
  // detach-then-reattach around the member move instead, so warehouse
  // moves stay cheap and keep their arming.
  Catalog(Catalog&& other);
  Catalog& operator=(Catalog&& other);
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; aborts if the name exists.
  Table* CreateTable(const std::string& name, Schema schema);

  /// Lookup; nullptr if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Lookup; aborts if absent.
  Table* MustGetTable(const std::string& name);
  const Table* MustGetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Names in creation order (stable across runs, used for reporting).
  const std::vector<std::string>& table_names() const { return names_; }

  /// The owning shared slot for `name` — what snapshot publication pins
  /// (storage/read_snapshot.h); aborts if absent.  A published slot must
  /// never be mutated again: writers ReplaceTable() a copy first.
  std::shared_ptr<const Table> SharedTable(const std::string& name) const;

  /// Swaps in a new extent object for an existing name (the copy-on-write
  /// detach).  Concurrent ReplaceTable calls for *distinct* names are safe:
  /// the map's node set is fixed after creation, so only disjoint slots are
  /// written.  Aborts if the name is absent.
  void ReplaceTable(const std::string& name, std::shared_ptr<Table> table);

  /// Deep copy of all tables.
  Catalog Clone() const;

  /// True iff both catalogs hold the same *visible* tables with identical
  /// contents.  Hidden auxiliary views ("__aux_<n>", plan/aux_view.h) are
  /// skipped on both sides: they are system-managed materializations one
  /// side may have promoted and the other not.
  bool ContentsEqual(const Catalog& other) const;

  /// Attaches the WUW_MEM_MB extent pager (storage/paged_store.h): every
  /// accessor above then faults hibernated extents back in before
  /// returning a table.  Null detaches.  NOTE: Clone() returns a catalog
  /// with no pager, and moves detach (see above) — the owning Warehouse
  /// re-attaches after assigning a clone.
  void SetPager(paged::PagedStore* pager) { pager_ = pager; }
  paged::PagedStore* pager() const { return pager_; }

  /// Cardinality of `name` WITHOUT the pager hook: the count survives
  /// hibernation (Table::ReleasePayload preserves it), so size estimation
  /// (Warehouse::EstimatedSizes) never faults extents in.  Aborts if
  /// absent.
  int64_t Cardinality(const std::string& name) const;

 private:
  /// The pager walks slots hook-free during eviction (use_count pinning,
  /// payload release) — going through the public accessors there would
  /// re-stamp its own LRU clock.
  friend class paged::PagedStore;
  /// shared_ptr slots so snapshot states can pin an extent version past its
  /// replacement (epoch-based reclamation = last pin frees it).
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
  std::vector<std::string> names_;
  /// WUW_MEM_MB hook; disarmed (default) accessors pay one null check.
  paged::PagedStore* pager_ = nullptr;
};

}  // namespace wuw

#endif  // WUW_STORAGE_CATALOG_H_
