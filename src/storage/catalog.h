// Catalog: the named collection of materialized tables at the warehouse.
#ifndef WUW_STORAGE_CATALOG_H_
#define WUW_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace wuw {

/// Maps view names to their materialized extents.  The Warehouse (exec/)
/// couples a Catalog with a Vdag and pending deltas; the Catalog itself is
/// pure storage.
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (tables can be large); use Clone() when a test
  // needs an independent copy of the database state.
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; aborts if the name exists.
  Table* CreateTable(const std::string& name, Schema schema);

  /// Lookup; nullptr if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Lookup; aborts if absent.
  Table* MustGetTable(const std::string& name);
  const Table* MustGetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Names in creation order (stable across runs, used for reporting).
  const std::vector<std::string>& table_names() const { return names_; }

  /// Deep copy of all tables.
  Catalog Clone() const;

  /// True iff both catalogs hold the same tables with identical contents.
  bool ContentsEqual(const Catalog& other) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> names_;
};

}  // namespace wuw

#endif  // WUW_STORAGE_CATALOG_H_
