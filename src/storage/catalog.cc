#include "storage/catalog.h"

#include "common/check.h"

namespace wuw {

Table* Catalog::CreateTable(const std::string& name, Schema schema) {
  WUW_CHECK(!HasTable(name), ("table already exists: " + name).c_str());
  auto table = std::make_shared<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  names_.push_back(name);
  return raw;
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Catalog::MustGetTable(const std::string& name) {
  Table* t = GetTable(name);
  WUW_CHECK(t != nullptr, ("no such table: " + name).c_str());
  return t;
}

const Table* Catalog::MustGetTable(const std::string& name) const {
  const Table* t = GetTable(name);
  WUW_CHECK(t != nullptr, ("no such table: " + name).c_str());
  return t;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::shared_ptr<const Table> Catalog::SharedTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  WUW_CHECK(it != tables_.end(), ("no such table: " + name).c_str());
  return it->second;
}

void Catalog::ReplaceTable(const std::string& name,
                           std::shared_ptr<Table> table) {
  WUW_CHECK(table != nullptr, "ReplaceTable needs a table");
  auto it = tables_.find(name);
  WUW_CHECK(it != tables_.end(), ("no such table: " + name).c_str());
  it->second = std::move(table);
}

Catalog Catalog::Clone() const {
  Catalog out;
  for (const std::string& name : names_) {
    const Table* src = MustGetTable(name);
    Table* dst = out.CreateTable(name, src->schema());
    src->ForEach([&](const Tuple& t, int64_t c) { dst->Add(t, c); });
  }
  return out;
}

bool Catalog::ContentsEqual(const Catalog& other) const {
  // Hidden auxiliary views ("__aux_<n>", literal duplicated from
  // plan/aux_view.h's kAuxViewPrefix — storage must not include plan
  // headers) are system-managed materializations: one side may have
  // promoted them while the other did not, and equality of the *visible*
  // warehouse is what callers mean.  Aux extents are compared explicitly
  // where their freshness is the point (aux_view_property_test).
  auto hidden = [](const std::string& name) {
    return name.rfind("__aux_", 0) == 0;
  };
  size_t mine_visible = 0, theirs_visible = 0;
  for (const std::string& name : names_) mine_visible += !hidden(name);
  for (const std::string& name : other.names_) theirs_visible += !hidden(name);
  if (mine_visible != theirs_visible) return false;
  for (const std::string& name : names_) {
    if (hidden(name)) continue;
    const Table* mine = GetTable(name);
    const Table* theirs = other.GetTable(name);
    if (theirs == nullptr || !mine->ContentsEqual(*theirs)) return false;
  }
  return true;
}

}  // namespace wuw
