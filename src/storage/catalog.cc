#include "storage/catalog.h"

#include "common/check.h"
#include "storage/paged_store.h"

namespace wuw {

Catalog::Catalog(Catalog&& other) { *this = std::move(other); }

Catalog& Catalog::operator=(Catalog&& other) {
  if (this == &other) return *this;
  // A moved catalog detaches from its pager: the pager is owned by the
  // source's Warehouse and may not outlive it, so carrying the raw pointer
  // into the destination would dangle the moment that warehouse dies
  // (exactly what helpers like GroundTruthAfterChanges do — move the
  // catalog out of a short-lived clone).  Fault every hibernated extent
  // back in first: detaching with released payloads would silently read
  // empty extents.
  if (other.pager_ != nullptr) {
    for (const std::string& name : other.names_) other.GetTable(name);
  }
  tables_ = std::move(other.tables_);
  names_ = std::move(other.names_);
  pager_ = nullptr;
  other.pager_ = nullptr;
  return *this;
}

Table* Catalog::CreateTable(const std::string& name, Schema schema) {
  WUW_CHECK(!HasTable(name), ("table already exists: " + name).c_str());
  auto table = std::make_shared<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  names_.push_back(name);
  return raw;
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  if (pager_ != nullptr) pager_->OnAccess(name, it->second.get());
  return it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  // The pager hook may fault the extent's payload back in — a logically
  // const restoration of the identical contents (same dense order, same
  // mutation count), safe because the slot holds a non-const Table.
  if (pager_ != nullptr) pager_->OnAccess(name, it->second.get());
  return it->second.get();
}

Table* Catalog::MustGetTable(const std::string& name) {
  Table* t = GetTable(name);
  WUW_CHECK(t != nullptr, ("no such table: " + name).c_str());
  return t;
}

const Table* Catalog::MustGetTable(const std::string& name) const {
  const Table* t = GetTable(name);
  WUW_CHECK(t != nullptr, ("no such table: " + name).c_str());
  return t;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

int64_t Catalog::Cardinality(const std::string& name) const {
  auto it = tables_.find(name);
  WUW_CHECK(it != tables_.end(), ("no such table: " + name).c_str());
  return it->second->cardinality();
}

std::shared_ptr<const Table> Catalog::SharedTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  WUW_CHECK(it != tables_.end(), ("no such table: " + name).c_str());
  // Publication pins this slot (use_count > 1), which the pager treats as
  // unevictable — but the extent must be resident *now* for readers, so
  // run the fault-in hook before handing the reference out.
  if (pager_ != nullptr) pager_->OnAccess(name, it->second.get());
  return it->second;
}

void Catalog::ReplaceTable(const std::string& name,
                           std::shared_ptr<Table> table) {
  WUW_CHECK(table != nullptr, "ReplaceTable needs a table");
  auto it = tables_.find(name);
  WUW_CHECK(it != tables_.end(), ("no such table: " + name).c_str());
  it->second = std::move(table);
}

Catalog Catalog::Clone() const {
  Catalog out;
  for (const std::string& name : names_) {
    const Table* src = MustGetTable(name);
    Table* dst = out.CreateTable(name, src->schema());
    src->ForEach([&](const Tuple& t, int64_t c) { dst->Add(t, c); });
  }
  return out;
}

bool Catalog::ContentsEqual(const Catalog& other) const {
  // Hidden auxiliary views ("__aux_<n>", literal duplicated from
  // plan/aux_view.h's kAuxViewPrefix — storage must not include plan
  // headers) are system-managed materializations: one side may have
  // promoted them while the other did not, and equality of the *visible*
  // warehouse is what callers mean.  Aux extents are compared explicitly
  // where their freshness is the point (aux_view_property_test).
  auto hidden = [](const std::string& name) {
    return name.rfind("__aux_", 0) == 0;
  };
  size_t mine_visible = 0, theirs_visible = 0;
  for (const std::string& name : names_) mine_visible += !hidden(name);
  for (const std::string& name : other.names_) theirs_visible += !hidden(name);
  if (mine_visible != theirs_visible) return false;
  for (const std::string& name : names_) {
    if (hidden(name)) continue;
    const Table* mine = GetTable(name);
    const Table* theirs = other.GetTable(name);
    if (theirs == nullptr || !mine->ContentsEqual(*theirs)) return false;
  }
  return true;
}

}  // namespace wuw
