#include "storage/column_table.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "common/check.h"
#include "obs/metrics.h"

namespace wuw {

namespace {

/// Engine-internal 64-bit mixer (splitmix64 finalizer).  Used only for
/// bucket placement inside the vectorized kernels; deliberately unrelated
/// to Value::Hash — kernel output order never depends on the hash function
/// (equal keys share a bucket under any hash; see vectorized.h).
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

uint32_t StringDict::Intern(const std::string& s) {
  auto it = lookup_.find(s);
  if (it != lookup_.end()) return it->second;
  WUW_CHECK(strings_.size() < kNullStringCode, "string dictionary overflow");
  uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.push_back(s);
  hashes_.push_back(Mix64(std::hash<std::string>{}(s)));
  lookup_.emplace(s, code);
  return code;
}

uint32_t StringDict::Find(const std::string& s) const {
  auto it = lookup_.find(s);
  return it == lookup_.end() ? kNullStringCode : it->second;
}

size_t StringDict::ApproxBytes() const {
  size_t bytes = strings_.capacity() * sizeof(std::string) +
                 hashes_.capacity() * sizeof(uint64_t);
  for (const std::string& s : strings_) bytes += s.capacity();
  // unordered_map node ≈ key string + hash + two pointers.
  bytes += lookup_.size() * (sizeof(std::string) + 3 * sizeof(void*));
  return bytes;
}

size_t ColumnVec::size() const {
  switch (type) {
    case TypeId::kString:
      return codes.size();
    case TypeId::kDouble:
      return dbls.size();
    default:
      return ints.size();
  }
}

Value ColumnVec::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type) {
    case TypeId::kInt64:
      return Value::Int64(ints[i]);
    case TypeId::kDate:
      return Value::Date(ints[i]);
    case TypeId::kDouble:
      return Value::Double(dbls[i]);
    case TypeId::kString:
      return Value::String(dict->At(codes[i]));
    case TypeId::kNull:
      return Value::Null();
  }
  return Value::Null();
}

ColumnTable::ColumnTable(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].type = schema_.column(c).type;
  }
}

std::shared_ptr<const ColumnTable> ColumnTable::FromRows(
    const Schema& schema,
    const std::vector<std::pair<Tuple, int64_t>>& rows) {
  if (rows.size() >= kNullStringCode) return nullptr;
  auto out = std::make_shared<ColumnTable>(schema);
  const size_t ncols = schema.num_columns();
  const size_t n = rows.size();
  std::vector<std::shared_ptr<StringDict>> dicts(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    ColumnVec& col = out->columns_[c];
    switch (col.type) {
      case TypeId::kString:
        dicts[c] = std::make_shared<StringDict>();
        col.codes.reserve(n);
        break;
      case TypeId::kDouble:
        col.dbls.reserve(n);
        break;
      default:
        col.ints.reserve(n);
        break;
    }
  }
  out->mult_.reserve(n);

  for (const auto& [tuple, m] : rows) {
    if (tuple.size() != ncols) return nullptr;
    for (size_t c = 0; c < ncols; ++c) {
      ColumnVec& col = out->columns_[c];
      const Value& v = tuple.value(c);
      const bool null = v.is_null();
      // A non-null cell must carry exactly the declared type: anything else
      // (legal in the untyped row engine) cannot round-trip through the
      // typed array, so the whole batch stays row-major.
      if (!null && v.type() != col.type) return nullptr;
      switch (col.type) {
        case TypeId::kInt64:
        case TypeId::kDate:
        case TypeId::kNull:
          col.ints.push_back(null ? 0
                                  : (col.type == TypeId::kDate ? v.AsDate()
                                                               : v.AsInt64()));
          break;
        case TypeId::kDouble:
          col.dbls.push_back(null ? 0.0 : v.AsDouble());
          break;
        case TypeId::kString:
          col.codes.push_back(null ? kNullStringCode
                                   : dicts[c]->Intern(v.AsString()));
          break;
      }
      if (null && col.type != TypeId::kString) {
        if (col.nulls.empty()) col.nulls.resize(n, 0);
        col.nulls[out->mult_.size()] = 1;
      }
    }
    out->mult_.push_back(m);
  }
  int64_t interned = 0;
  for (size_t c = 0; c < ncols; ++c) {
    if (out->columns_[c].type == TypeId::kString) {
      interned += static_cast<int64_t>(dicts[c]->size());
      out->columns_[c].dict = std::move(dicts[c]);
    }
  }
  out->Finish();
  // One row->column conversion; interning is the only Value-level hashing
  // the vectorized engine ever pays for strings (once per distinct string,
  // amortized across every kernel that reuses the cached table).
  WUW_METRIC_ADD("engine.vec.conversions", obs::MetricClass::kEngine, 1);
  WUW_METRIC_ADD("engine.vec.value_hashes", obs::MetricClass::kEngine,
                 interned);
  return out;
}

void ColumnTable::AppendRow(const Tuple& tuple, int64_t m) {
  WUW_CHECK(tuple.size() == columns_.size(), "arity mismatch in AppendRow");
  const size_t row = mult_.size();
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnVec& col = columns_[c];
    const Value& v = tuple.value(c);
    const bool null = v.is_null();
    WUW_CHECK(null || v.type() == col.type, "cell type mismatch in AppendRow");
    switch (col.type) {
      case TypeId::kInt64:
      case TypeId::kDate:
      case TypeId::kNull:
        col.ints.push_back(
            null ? 0 : (col.type == TypeId::kDate ? v.AsDate() : v.AsInt64()));
        break;
      case TypeId::kDouble:
        col.dbls.push_back(null ? 0.0 : v.AsDouble());
        break;
      case TypeId::kString: {
        if (col.dict == nullptr) col.dict = std::make_shared<StringDict>();
        // The dict is shared read-only once a table is finished; appends
        // only ever happen while the table is still privately owned.
        auto* dict = const_cast<StringDict*>(col.dict.get());
        col.codes.push_back(null ? kNullStringCode : dict->Intern(v.AsString()));
        break;
      }
    }
    if (null && col.type != TypeId::kString) {
      if (col.nulls.empty()) col.nulls.resize(row, 0);
      col.nulls.push_back(1);
    } else if (!col.nulls.empty() && col.type != TypeId::kString) {
      col.nulls.push_back(0);
    }
  }
  mult_.push_back(m);
}

void ColumnTable::Finish() {
  const size_t n = mult_.size();
  abs_prefix_.assign(n + 1, 0);
  signed_prefix_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    abs_prefix_[i + 1] = abs_prefix_[i] + std::llabs(mult_[i]);
    signed_prefix_[i + 1] = signed_prefix_[i] + mult_[i];
  }
}

Tuple ColumnTable::TupleAt(size_t i) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const ColumnVec& col : columns_) values.push_back(col.ValueAt(i));
  return Tuple(std::move(values));
}

ColumnMinMax ColumnTable::Stats(size_t c) const {
  const ColumnVec& col = columns_[c];
  ColumnMinMax out;
  const size_t n = num_rows();
  switch (col.type) {
    case TypeId::kInt64:
    case TypeId::kDate: {
      int64_t lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) continue;
        int64_t v = col.ints[i];
        if (!out.has_values || v < lo) lo = v;
        if (!out.has_values || v > hi) hi = v;
        out.has_values = true;
      }
      if (out.has_values) {
        out.min = col.type == TypeId::kDate ? Value::Date(lo) : Value::Int64(lo);
        out.max = col.type == TypeId::kDate ? Value::Date(hi) : Value::Int64(hi);
      }
      break;
    }
    case TypeId::kDouble: {
      double lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) continue;
        double v = col.dbls[i];
        if (!out.has_values || v < lo) lo = v;
        if (!out.has_values || v > hi) hi = v;
        out.has_values = true;
      }
      if (out.has_values) {
        out.min = Value::Double(lo);
        out.max = Value::Double(hi);
      }
      break;
    }
    case TypeId::kString: {
      uint32_t lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        uint32_t code = col.codes[i];
        if (code == kNullStringCode) continue;
        if (!out.has_values || col.dict->At(code) < col.dict->At(lo)) lo = code;
        if (!out.has_values || col.dict->At(hi) < col.dict->At(code)) hi = code;
        out.has_values = true;
      }
      if (out.has_values) {
        out.min = Value::String(col.dict->At(lo));
        out.max = Value::String(col.dict->At(hi));
      }
      break;
    }
    case TypeId::kNull:
      break;
  }
  return out;
}

size_t ColumnTable::ApproxBytes() const {
  size_t bytes = mult_.capacity() * sizeof(int64_t) +
                 abs_prefix_.capacity() * sizeof(int64_t) +
                 signed_prefix_.capacity() * sizeof(int64_t);
  for (const ColumnVec& col : columns_) {
    bytes += col.ints.capacity() * sizeof(int64_t) +
             col.dbls.capacity() * sizeof(double) +
             col.codes.capacity() * sizeof(uint32_t) +
             col.nulls.capacity();
    if (col.dict != nullptr) bytes += col.dict->ApproxBytes();
  }
  return bytes;
}

}  // namespace wuw
