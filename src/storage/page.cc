#include "storage/page.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "fault/fault_injection.h"

namespace wuw {
namespace paged {

// ---------------------------------------------------------------------------
// Byte codec (journal dialect, exec/journal.cc).

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kInt64:
      PutI64(out, v.AsInt64());
      break;
    case TypeId::kDate:
      PutI64(out, v.AsDate());
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case TypeId::kString:
      PutString(out, v.AsString());
      break;
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  PutU32(out, static_cast<uint32_t>(t.size()));
  for (const Value& v : t.values()) PutValue(out, v);
}

bool GetValue(ByteReader* r, Value* out) {
  uint8_t tag = r->U8();
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      *out = Value::Null();
      break;
    case TypeId::kInt64:
      *out = Value::Int64(r->I64());
      break;
    case TypeId::kDate:
      *out = Value::Date(r->I64());
      break;
    case TypeId::kDouble: {
      uint64_t bits = r->U64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      break;
    }
    case TypeId::kString:
      *out = Value::String(r->Str());
      break;
    default:
      r->ok = false;
  }
  return r->ok;
}

bool GetTuple(ByteReader* r, Tuple* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;  // every value is at least one byte
  std::vector<Value> values(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetValue(r, &values[i])) return false;
  }
  *out = Tuple(std::move(values));
  return true;
}

// ---------------------------------------------------------------------------
// Analytic size model.

int64_t ApproxValueBytes(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return 1;
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kDouble:
      return 9;
    case TypeId::kString:
      return 5 + static_cast<int64_t>(v.AsString().size());
  }
  return 1;
}

int64_t ApproxTupleBytes(const Tuple& t) {
  int64_t bytes = 4;
  for (const Value& v : t.values()) bytes += ApproxValueBytes(v);
  return bytes;
}

int64_t ApproxTableBytes(const Table& table) {
  int64_t bytes = 0;
  for (const auto& [tuple, count] : table.dense_rows()) {
    (void)count;
    bytes += ApproxTupleBytes(tuple) + 8;
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Global stats.

namespace internal {
std::atomic<int64_t> g_faults{0};
std::atomic<int64_t> g_evictions{0};
std::atomic<int64_t> g_spilled_partitions{0};
}  // namespace internal

PagedStatsSnapshot GlobalPagedStats() {
  PagedStatsSnapshot out;
  out.faults = internal::g_faults.load(std::memory_order_relaxed);
  out.evictions = internal::g_evictions.load(std::memory_order_relaxed);
  out.spilled_partitions =
      internal::g_spilled_partitions.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Page files.

namespace {

constexpr char kPageMagic[8] = {'W', 'U', 'W', 'P', 'A', 'G', 'E', '1'};
constexpr uint32_t kPageFormatVersion = 1;
/// magic + u32 version + u32 page_bytes.
constexpr size_t kFileHeaderBytes = sizeof(kPageMagic) + 8;
constexpr size_t kMinPageBytes = 64;
constexpr size_t kMaxPageBytes = 16u << 20;

}  // namespace

std::unique_ptr<PageFile> PageFile::Create(const std::string& path,
                                           size_t page_bytes,
                                           std::string* error) {
  if (page_bytes < kMinPageBytes || page_bytes > kMaxPageBytes) {
    *error = "page size out of range: " + std::to_string(page_bytes);
    return nullptr;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    *error = "cannot create " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  std::string header(kPageMagic, sizeof(kPageMagic));
  PutU32(&header, kPageFormatVersion);
  PutU32(&header, static_cast<uint32_t>(page_bytes));
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    std::remove(path.c_str());
    *error = "short header write to " + path;
    return nullptr;
  }
  return std::unique_ptr<PageFile>(new PageFile(f, path, page_bytes, 0));
}

std::unique_ptr<PageFile> PageFile::Open(const std::string& path,
                                         std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    *error = "cannot open " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  char raw[kFileHeaderBytes];
  if (std::fread(raw, 1, sizeof(raw), f) != sizeof(raw) ||
      std::memcmp(raw, kPageMagic, sizeof(kPageMagic)) != 0) {
    std::fclose(f);
    *error = "not a page file (bad magic): " + path;
    return nullptr;
  }
  ByteReader r(reinterpret_cast<const uint8_t*>(raw + sizeof(kPageMagic)), 8);
  uint32_t version = r.U32();
  uint32_t page_bytes = r.U32();
  if (version != kPageFormatVersion || page_bytes < kMinPageBytes ||
      page_bytes > kMaxPageBytes) {
    std::fclose(f);
    *error = "unsupported page file header in " + path;
    return nullptr;
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    *error = "cannot seek " + path;
    return nullptr;
  }
  long end = std::ftell(f);
  int64_t pages =
      end <= static_cast<long>(kFileHeaderBytes)
          ? 0
          : (end - static_cast<long>(kFileHeaderBytes)) / page_bytes;
  return std::unique_ptr<PageFile>(new PageFile(f, path, page_bytes, pages));
}

PageFile::~PageFile() {
  if (file_ != nullptr) std::fclose(file_);
  if (remove_on_close_) std::remove(path_.c_str());
}

std::string PageFile::WritePage(int64_t page_id, const std::string& payload) {
  WUW_FAULT_POINT("paged.io.write");
  WUW_CHECK(page_id >= 0 && page_id < num_pages_, "page id out of range");
  WUW_CHECK(payload.size() <= payload_capacity(), "page payload too large");
  std::string frame;
  frame.reserve(page_bytes_);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, static_cast<uint32_t>(page_id));
  frame.append(payload);
  // The CRC covers the length + page number prefix as well as the payload:
  // a flipped bit anywhere in the frame is detected, not reinterpreted.
  PutU32(&frame, Crc32(frame.data(), frame.size()));
  frame.resize(page_bytes_, '\0');
  long offset =
      static_cast<long>(kFileHeaderBytes) + static_cast<long>(page_id) *
                                                static_cast<long>(page_bytes_);
  if (std::fseek(file_, offset, SEEK_SET) != 0) {
    return "cannot seek " + path_ + ": " + std::strerror(errno);
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return "short write to " + path_;
  }
  return "";
}

std::string PageFile::ReadPage(int64_t page_id, std::string* payload) {
  WUW_FAULT_POINT("paged.io.read");
  WUW_CHECK(page_id >= 0, "page id out of range");
  if (std::fflush(file_) != 0) {
    return "cannot flush " + path_ + ": " + std::strerror(errno);
  }
  long offset =
      static_cast<long>(kFileHeaderBytes) + static_cast<long>(page_id) *
                                                static_cast<long>(page_bytes_);
  if (std::fseek(file_, offset, SEEK_SET) != 0) {
    return "cannot seek " + path_ + ": " + std::strerror(errno);
  }
  std::string frame(page_bytes_, '\0');
  size_t got = std::fread(frame.data(), 1, page_bytes_, file_);
  if (got != page_bytes_) {
    return "torn page " + std::to_string(page_id) + " in " + path_ +
           " (short read)";
  }
  ByteReader r(frame);
  uint32_t len = r.U32();
  uint32_t stored_id = r.U32();
  if (len > payload_capacity()) {
    return "corrupt page " + std::to_string(page_id) + " in " + path_ +
           " (bad length)";
  }
  uint32_t crc_offset = 8 + len;
  ByteReader crc_reader(
      reinterpret_cast<const uint8_t*>(frame.data()) + crc_offset, 4);
  uint32_t stored_crc = crc_reader.U32();
  if (Crc32(frame.data(), crc_offset) != stored_crc) {
    return "corrupt page " + std::to_string(page_id) + " in " + path_ +
           " (CRC mismatch)";
  }
  if (stored_id != static_cast<uint32_t>(page_id)) {
    return "corrupt page " + std::to_string(page_id) + " in " + path_ +
           " (wrong page number)";
  }
  payload->assign(frame.data() + 8, len);
  return "";
}

std::string PageFile::Flush() {
  if (std::fflush(file_) != 0) {
    return "cannot flush " + path_ + ": " + std::strerror(errno);
  }
  return "";
}

// ---------------------------------------------------------------------------
// Table images.

namespace {
constexpr uint32_t kImageFormatVersion = 1;

void PutSchema(std::string* out, const Schema& s) {
  PutU32(out, static_cast<uint32_t>(s.num_columns()));
  for (const Column& c : s.columns()) {
    PutString(out, c.name);
    PutU8(out, static_cast<uint8_t>(c.type));
  }
}

bool GetSchema(ByteReader* r, Schema* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;
  std::vector<Column> columns(n);
  for (uint32_t i = 0; i < n; ++i) {
    columns[i].name = r->Str();
    uint8_t tag = r->U8();
    if (tag > static_cast<uint8_t>(TypeId::kDate)) {
      r->ok = false;
      return false;
    }
    columns[i].type = static_cast<TypeId>(tag);
  }
  if (!r->ok) return false;
  *out = Schema(std::move(columns));
  return true;
}
}  // namespace

std::string SerializeTableImage(const Table& table) {
  std::string out;
  PutU32(&out, kImageFormatVersion);
  PutSchema(&out, table.schema());
  PutI64(&out, table.mutation_count());
  PutI64(&out, table.cardinality());
  PutU64(&out, table.dense_rows().size());
  for (const auto& [tuple, count] : table.dense_rows()) {
    PutTuple(&out, tuple);
    PutI64(&out, count);
  }
  return out;
}

std::string SaveTableImage(const Table& table, const std::string& path,
                           size_t page_bytes) {
  const std::string bytes = SerializeTableImage(table);
  const std::string tmp = path + ".tmp";
  std::string error;
  std::unique_ptr<PageFile> file = PageFile::Create(tmp, page_bytes, &error);
  if (file == nullptr) return error;
  const size_t capacity = file->payload_capacity();
  // At least one page, even for an empty table, so Open always finds a
  // decodable header frame.
  size_t offset = 0;
  do {
    size_t chunk = std::min(capacity, bytes.size() - offset);
    int64_t id = file->AllocatePage();
    error = file->WritePage(id, bytes.substr(offset, chunk));
    if (!error.empty()) {
      file.reset();
      std::remove(tmp.c_str());
      return error;
    }
    offset += chunk;
  } while (offset < bytes.size());
  error = file->Flush();
  file.reset();
  if (!error.empty()) {
    std::remove(tmp.c_str());
    return error;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    return "cannot rename " + tmp + " to " + path + ": " + why;
  }
  return "";
}

bool LoadTableImage(const std::string& path, TableImage* out,
                    std::string* error, bool* torn) {
  if (torn != nullptr) *torn = false;
  std::unique_ptr<PageFile> file = PageFile::Open(path, error);
  if (file == nullptr) return false;
  // Concatenate the longest valid prefix of pages; a torn/corrupt page
  // ends the stream there (the journal's longest-valid-prefix rule).
  std::string bytes;
  bool page_torn = false;
  for (int64_t id = 0; id < file->num_pages(); ++id) {
    std::string payload;
    std::string page_error = file->ReadPage(id, &payload);
    if (!page_error.empty()) {
      page_torn = true;
      break;
    }
    bytes.append(payload);
  }
  ByteReader r(bytes);
  uint32_t version = r.U32();
  if (version != kImageFormatVersion) {
    *error = path + ": unsupported image format version " +
             std::to_string(version);
    return false;
  }
  TableImage img;
  if (!GetSchema(&r, &img.schema)) {
    *error = path + ": image header is truncated or corrupt";
    return false;
  }
  img.mutation_count = r.I64();
  img.cardinality = r.I64();
  uint64_t n = r.U64();
  if (!r.ok) {
    *error = path + ": image header is truncated or corrupt";
    return false;
  }
  // A torn tail may have dropped row bytes; bound the reservation by what
  // actually remains (every row is at least one byte) and keep the longest
  // valid prefix of rows below.
  img.rows.reserve(static_cast<size_t>(
      std::min<uint64_t>(n, r.remaining())));
  bool row_torn = false;
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    if (!GetTuple(&r, &t)) {
      row_torn = true;
      break;
    }
    int64_t count = r.I64();
    if (!r.ok) {
      row_torn = true;
      break;
    }
    img.rows.emplace_back(std::move(t), count);
  }
  if (torn != nullptr) *torn = page_torn || row_torn;
  *out = std::move(img);
  return true;
}

}  // namespace paged
}  // namespace wuw
