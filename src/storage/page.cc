#include "storage/page.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"

namespace wuw {
namespace paged {

// ---------------------------------------------------------------------------
// Byte codec (journal dialect, exec/journal.cc).

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kInt64:
      PutI64(out, v.AsInt64());
      break;
    case TypeId::kDate:
      PutI64(out, v.AsDate());
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case TypeId::kString:
      PutString(out, v.AsString());
      break;
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  PutU32(out, static_cast<uint32_t>(t.size()));
  for (const Value& v : t.values()) PutValue(out, v);
}

bool GetValue(ByteReader* r, Value* out) {
  uint8_t tag = r->U8();
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      *out = Value::Null();
      break;
    case TypeId::kInt64:
      *out = Value::Int64(r->I64());
      break;
    case TypeId::kDate:
      *out = Value::Date(r->I64());
      break;
    case TypeId::kDouble: {
      uint64_t bits = r->U64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      break;
    }
    case TypeId::kString:
      *out = Value::String(r->Str());
      break;
    default:
      r->ok = false;
  }
  return r->ok;
}

bool GetTuple(ByteReader* r, Tuple* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;  // every value is at least one byte
  std::vector<Value> values(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetValue(r, &values[i])) return false;
  }
  *out = Tuple(std::move(values));
  return true;
}

// ---------------------------------------------------------------------------
// Analytic size model.

int64_t ApproxValueBytes(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return 1;
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kDouble:
      return 9;
    case TypeId::kString:
      return 5 + static_cast<int64_t>(v.AsString().size());
  }
  return 1;
}

int64_t ApproxTupleBytes(const Tuple& t) {
  int64_t bytes = 4;
  for (const Value& v : t.values()) bytes += ApproxValueBytes(v);
  return bytes;
}

int64_t ApproxTableBytes(const Table& table) {
  int64_t bytes = 0;
  for (const auto& [tuple, count] : table.dense_rows()) {
    (void)count;
    bytes += ApproxTupleBytes(tuple) + 8;
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Global stats.

namespace internal {
std::atomic<int64_t> g_faults{0};
std::atomic<int64_t> g_evictions{0};
std::atomic<int64_t> g_spilled_partitions{0};
std::atomic<int64_t> g_read_retries{0};
}  // namespace internal

PagedStatsSnapshot GlobalPagedStats() {
  PagedStatsSnapshot out;
  out.faults = internal::g_faults.load(std::memory_order_relaxed);
  out.evictions = internal::g_evictions.load(std::memory_order_relaxed);
  out.spilled_partitions =
      internal::g_spilled_partitions.load(std::memory_order_relaxed);
  out.read_retries =
      internal::g_read_retries.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Page files.

namespace {

constexpr char kPageMagic[8] = {'W', 'U', 'W', 'P', 'A', 'G', 'E', '1'};
constexpr uint32_t kPageFormatVersion = 1;
/// magic + u32 version + u32 page_bytes.
constexpr size_t kFileHeaderBytes = sizeof(kPageMagic) + 8;
constexpr size_t kMinPageBytes = 64;
constexpr size_t kMaxPageBytes = 16u << 20;

}  // namespace

std::unique_ptr<PageFile> PageFile::Create(const std::string& path,
                                           size_t page_bytes,
                                           std::string* error, io::Env* env) {
  if (env == nullptr) env = io::GetEnv();
  if (page_bytes < kMinPageBytes || page_bytes > kMaxPageBytes) {
    *error = "page size out of range: " + std::to_string(page_bytes);
    return nullptr;
  }
  std::unique_ptr<io::RandomRWFile> f;
  *error = env->NewRandomRWFile(path, /*truncate=*/true, &f);
  if (!error->empty()) return nullptr;
  std::string header(kPageMagic, sizeof(kPageMagic));
  PutU32(&header, kPageFormatVersion);
  PutU32(&header, static_cast<uint32_t>(page_bytes));
  *error = f->WriteAt(0, header);
  if (!error->empty()) {
    f.reset();
    env->RemoveFile(path);
    return nullptr;
  }
  return std::unique_ptr<PageFile>(
      new PageFile(std::move(f), env, path, page_bytes, 0));
}

std::unique_ptr<PageFile> PageFile::Open(const std::string& path,
                                         std::string* error, io::Env* env) {
  if (env == nullptr) env = io::GetEnv();
  std::unique_ptr<io::RandomRWFile> f;
  *error = env->NewRandomRWFile(path, /*truncate=*/false, &f);
  if (!error->empty()) return nullptr;
  std::string raw;
  if (!f->ReadAt(0, kFileHeaderBytes, &raw, nullptr).empty() ||
      std::memcmp(raw.data(), kPageMagic, sizeof(kPageMagic)) != 0) {
    *error = "not a page file (bad magic): " + path;
    return nullptr;
  }
  ByteReader r(
      reinterpret_cast<const uint8_t*>(raw.data() + sizeof(kPageMagic)), 8);
  uint32_t version = r.U32();
  uint32_t page_bytes = r.U32();
  if (version != kPageFormatVersion || page_bytes < kMinPageBytes ||
      page_bytes > kMaxPageBytes) {
    *error = "unsupported page file header in " + path;
    return nullptr;
  }
  uint64_t end = 0;
  *error = f->Size(&end);
  if (!error->empty()) return nullptr;
  int64_t pages = end <= kFileHeaderBytes
                      ? 0
                      : static_cast<int64_t>((end - kFileHeaderBytes) /
                                             page_bytes);
  return std::unique_ptr<PageFile>(
      new PageFile(std::move(f), env, path, page_bytes, pages));
}

PageFile::~PageFile() {
  file_.reset();
  if (remove_on_close_) env_->RemoveFile(path_);
}

std::string PageFile::WritePage(int64_t page_id, const std::string& payload) {
  WUW_FAULT_POINT("paged.io.write");
  WUW_CHECK(page_id >= 0 && page_id < num_pages_, "page id out of range");
  WUW_CHECK(payload.size() <= payload_capacity(), "page payload too large");
  std::string frame;
  frame.reserve(page_bytes_);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, static_cast<uint32_t>(page_id));
  frame.append(payload);
  // The CRC covers the length + page number prefix as well as the payload:
  // a flipped bit anywhere in the frame is detected, not reinterpreted.
  PutU32(&frame, Crc32(frame.data(), frame.size()));
  frame.resize(page_bytes_, '\0');
  uint64_t offset = kFileHeaderBytes +
                    static_cast<uint64_t>(page_id) * page_bytes_;
  return file_->WriteAt(offset, frame);
}

std::string PageFile::ReadPage(int64_t page_id, std::string* payload) {
  WUW_FAULT_POINT("paged.io.read");
  WUW_CHECK(page_id >= 0, "page id out of range");
  uint64_t offset = kFileHeaderBytes +
                    static_cast<uint64_t>(page_id) * page_bytes_;
  // Bounded deterministic retry for transient I/O errors (EIO from a
  // flaky medium).  Truncation (short read) and CRC/decode damage below
  // are corruption, not transience — those never retry.
  std::string frame;
  std::string read_error;
  bool retryable = false;
  for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
    if (attempt > 0) {
      internal::g_read_retries.fetch_add(1, std::memory_order_relaxed);
      WUW_METRIC_ADD("io.retries", obs::MetricClass::kEngine, 1);
    }
    retryable = false;
    read_error = file_->ReadAt(offset, page_bytes_, &frame, &retryable);
    if (read_error.empty() || !retryable) break;
  }
  if (!read_error.empty()) {
    if (!retryable) {
      // A short read: the frame is truncated, not transiently unreadable.
      return "torn page " + std::to_string(page_id) + " in " + path_ +
             " (short read)";
    }
    return "cannot read page " + std::to_string(page_id) + " in " + path_ +
           ": " + read_error;
  }
  ByteReader r(frame);
  uint32_t len = r.U32();
  uint32_t stored_id = r.U32();
  if (len > payload_capacity()) {
    return "corrupt page " + std::to_string(page_id) + " in " + path_ +
           " (bad length)";
  }
  uint32_t crc_offset = 8 + len;
  ByteReader crc_reader(
      reinterpret_cast<const uint8_t*>(frame.data()) + crc_offset, 4);
  uint32_t stored_crc = crc_reader.U32();
  if (Crc32(frame.data(), crc_offset) != stored_crc) {
    return "corrupt page " + std::to_string(page_id) + " in " + path_ +
           " (CRC mismatch)";
  }
  if (stored_id != static_cast<uint32_t>(page_id)) {
    return "corrupt page " + std::to_string(page_id) + " in " + path_ +
           " (wrong page number)";
  }
  payload->assign(frame.data() + 8, len);
  return "";
}

std::string PageFile::Flush() { return file_->Flush(); }

std::string PageFile::Sync() { return file_->Sync(); }

// ---------------------------------------------------------------------------
// Table images.

namespace {
constexpr uint32_t kImageFormatVersion = 1;

void PutSchema(std::string* out, const Schema& s) {
  PutU32(out, static_cast<uint32_t>(s.num_columns()));
  for (const Column& c : s.columns()) {
    PutString(out, c.name);
    PutU8(out, static_cast<uint8_t>(c.type));
  }
}

bool GetSchema(ByteReader* r, Schema* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;
  std::vector<Column> columns(n);
  for (uint32_t i = 0; i < n; ++i) {
    columns[i].name = r->Str();
    uint8_t tag = r->U8();
    if (tag > static_cast<uint8_t>(TypeId::kDate)) {
      r->ok = false;
      return false;
    }
    columns[i].type = static_cast<TypeId>(tag);
  }
  if (!r->ok) return false;
  *out = Schema(std::move(columns));
  return true;
}
}  // namespace

std::string SerializeTableImage(const Table& table) {
  std::string out;
  PutU32(&out, kImageFormatVersion);
  PutSchema(&out, table.schema());
  PutI64(&out, table.mutation_count());
  PutI64(&out, table.cardinality());
  PutU64(&out, table.dense_rows().size());
  for (const auto& [tuple, count] : table.dense_rows()) {
    PutTuple(&out, tuple);
    PutI64(&out, count);
  }
  return out;
}

std::string SaveTableImage(const Table& table, const std::string& path,
                           size_t page_bytes) {
  const std::string bytes = SerializeTableImage(table);
  const std::string tmp = path + ".tmp";
  io::Env* env = io::GetEnv();
  std::string error;
  std::unique_ptr<PageFile> file =
      PageFile::Create(tmp, page_bytes, &error, env);
  if (file == nullptr) return error;
  const size_t capacity = file->payload_capacity();
  // At least one page, even for an empty table, so Open always finds a
  // decodable header frame.
  size_t offset = 0;
  do {
    size_t chunk = std::min(capacity, bytes.size() - offset);
    int64_t id = file->AllocatePage();
    error = file->WritePage(id, bytes.substr(offset, chunk));
    if (!error.empty()) {
      file.reset();
      env->RemoveFile(tmp);
      return error;
    }
    offset += chunk;
  } while (offset < bytes.size());
  // Crash discipline: fsync the image, rename it over the real name, then
  // fsync the parent directory so the dirent itself is durable.  A crash
  // at any instant leaves the old image or the new one — never a torn mix.
  error = file->Sync();
  file.reset();
  if (!error.empty()) {
    env->RemoveFile(tmp);
    return error;
  }
  error = env->RenameFile(tmp, path);
  if (!error.empty()) {
    env->RemoveFile(tmp);
    return error;
  }
  return env->SyncDir(io::ParentDir(path));
}

bool LoadTableImage(const std::string& path, TableImage* out,
                    std::string* error, bool* torn) {
  if (torn != nullptr) *torn = false;
  std::unique_ptr<PageFile> file = PageFile::Open(path, error);
  if (file == nullptr) return false;
  // Concatenate the longest valid prefix of pages; a torn/corrupt page
  // ends the stream there (the journal's longest-valid-prefix rule).
  std::string bytes;
  bool page_torn = false;
  for (int64_t id = 0; id < file->num_pages(); ++id) {
    std::string payload;
    std::string page_error = file->ReadPage(id, &payload);
    if (!page_error.empty()) {
      page_torn = true;
      break;
    }
    bytes.append(payload);
  }
  ByteReader r(bytes);
  uint32_t version = r.U32();
  if (version != kImageFormatVersion) {
    *error = path + ": unsupported image format version " +
             std::to_string(version);
    return false;
  }
  TableImage img;
  if (!GetSchema(&r, &img.schema)) {
    *error = path + ": image header is truncated or corrupt";
    return false;
  }
  img.mutation_count = r.I64();
  img.cardinality = r.I64();
  uint64_t n = r.U64();
  if (!r.ok) {
    *error = path + ": image header is truncated or corrupt";
    return false;
  }
  // A torn tail may have dropped row bytes; bound the reservation by what
  // actually remains (every row is at least one byte) and keep the longest
  // valid prefix of rows below.
  img.rows.reserve(static_cast<size_t>(
      std::min<uint64_t>(n, r.remaining())));
  bool row_torn = false;
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    if (!GetTuple(&r, &t)) {
      row_torn = true;
      break;
    }
    int64_t count = r.I64();
    if (!r.ok) {
      row_torn = true;
      break;
    }
    img.rows.emplace_back(std::move(t), count);
  }
  if (torn != nullptr) *torn = page_torn || row_torn;
  *out = std::move(img);
  return true;
}

}  // namespace paged
}  // namespace wuw
