#include "storage/read_snapshot.h"

#include <cstdlib>

#include "common/check.h"

namespace wuw {

ReadSnapshot::ReadSnapshot(std::shared_ptr<const SnapshotState> state)
    : state_(std::move(state)) {
  WUW_CHECK(state_ != nullptr, "pinned ReadSnapshot needs a state");
}

ReadSnapshot::ReadSnapshot(const Catalog* live, int64_t batch_epoch)
    : live_(live), live_epoch_(batch_epoch) {
  WUW_CHECK(live_ != nullptr, "live ReadSnapshot needs a catalog");
}

const Table* ReadSnapshot::table(const std::string& name) const {
  if (state_ != nullptr) {
    auto it = state_->tables.find(name);
    return it == state_->tables.end() ? nullptr : it->second.get();
  }
  return live_->GetTable(name);
}

bool ReadSnapshot::has_table(const std::string& name) const {
  return table(name) != nullptr;
}

std::vector<std::string> ReadSnapshot::table_names() const {
  if (state_ != nullptr) return state_->names;
  return live_->table_names();
}

int64_t ReadSnapshot::commit_seq() const {
  return state_ != nullptr ? state_->commit_seq : 0;
}

int64_t ReadSnapshot::batch_epoch() const {
  return state_ != nullptr ? state_->batch_epoch : live_epoch_;
}

bool ReadSnapshot::ContentsEqual(const Catalog& other) const {
  std::vector<std::string> names = table_names();
  if (names.size() != other.table_names().size()) return false;
  for (const std::string& name : names) {
    const Table* mine = table(name);
    const Table* theirs = other.GetTable(name);
    if (theirs == nullptr || !mine->ContentsEqual(*theirs)) return false;
  }
  return true;
}

int EnvReaders() {
  static const int readers = [] {
    const char* env = std::getenv("WUW_READERS");
    if (env == nullptr || *env == '\0') return 0;
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) return 0;
    return static_cast<int>(v);
  }();
  return readers;
}

}  // namespace wuw
