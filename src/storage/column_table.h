// Column-major relation storage: the batch engine's representation.
//
// A ColumnTable holds one dense typed array per schema column (int64/date
// columns as raw int64, doubles as raw double, strings dictionary-encoded
// as uint32 codes into an interned StringDict) plus a signed multiplicity
// column.  The vectorized kernels (algebra/vectorized.h) consume and
// produce this layout batch-at-a-time (algebra/row_batch.h), touching raw
// arrays in tight typed loops instead of per-row Value variant dispatch.
//
// The row-major surfaces stay authoritative: Table remains the
// install/merge API and Rows the operator-edge type; a ColumnTable is the
// engine-internal mirror of either, and conversions are exact — every cell
// round-trips with its original TypeId, so SortedRows / ContentsEqual /
// golden output comparisons cannot tell the representations apart.  Rows
// whose cells violate their declared column type (legal for the row
// engine, which never checks) refuse to convert (FromRows returns null)
// and simply stay on the row-at-a-time path.
#ifndef WUW_STORAGE_COLUMN_TABLE_H_
#define WUW_STORAGE_COLUMN_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace wuw {

/// Code reserved for NULL cells of string columns.
inline constexpr uint32_t kNullStringCode = UINT32_MAX;

/// An interned string pool shared by dictionary-encoded columns.  Each
/// distinct string gets a dense code in first-occurrence order and a
/// precomputed hash, so per-row work on a string column is one array
/// lookup regardless of string length.  Interning happens single-threaded
/// at conversion time; after that the dict is read-only and safe to share
/// across kernel workers via shared_ptr.
class StringDict {
 public:
  /// Code of `s`, interning it on first sight.
  uint32_t Intern(const std::string& s);

  /// Code of `s` if already interned, else kNullStringCode.
  uint32_t Find(const std::string& s) const;

  const std::string& At(uint32_t code) const { return strings_[code]; }
  /// Precomputed hash of the string behind `code` (internal engine hash;
  /// deliberately not Value::Hash — see vectorized.h on why kernels may
  /// hash differently without changing any output).
  uint64_t HashOf(uint32_t code) const { return hashes_[code]; }
  size_t size() const { return strings_.size(); }
  size_t ApproxBytes() const;

 private:
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;
  std::unordered_map<std::string, uint32_t> lookup_;
};

/// One column's dense cell storage.  Exactly one payload vector is active,
/// selected by the declared type; `nulls` marks NULL cells of numeric
/// columns (empty vector = no nulls; string columns encode NULL as
/// kNullStringCode instead).
struct ColumnVec {
  TypeId type = TypeId::kNull;
  /// kInt64 / kDate payload (dates keep their yyyymmdd int64 ordinal).
  std::vector<int64_t> ints;
  /// kDouble payload.
  std::vector<double> dbls;
  /// kString payload: dictionary codes (kNullStringCode = NULL).
  std::vector<uint32_t> codes;
  std::shared_ptr<const StringDict> dict;
  /// Numeric NULL mask; empty means "no null cells".  Also used by kNull
  /// columns (every cell null).
  std::vector<uint8_t> nulls;

  size_t size() const;
  bool IsNull(size_t i) const {
    if (type == TypeId::kString) return codes[i] == kNullStringCode;
    return !nulls.empty() && nulls[i] != 0;
  }
  /// Materializes cell `i` with its exact original TypeId.
  Value ValueAt(size_t i) const;
};

/// Per-column min/max over non-null cells (the stats the round-trip
/// property suite checks against a row-order recompute).
struct ColumnMinMax {
  bool has_values = false;  // false when every cell is NULL (or no rows)
  Value min;
  Value max;
};

/// A column-major signed multiset: schema, one ColumnVec per column, and a
/// parallel signed multiplicity vector.  Prefix sums over |mult| and mult
/// (built by Finish()) give every RowBatch its running abs/signed
/// cardinality in O(1).
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(Schema schema);

  /// Exact columnar image of (schema, rows); null if any cell's type
  /// disagrees with its declared column (the row engine tolerates such
  /// rows, the typed arrays cannot represent them losslessly).
  static std::shared_ptr<const ColumnTable> FromRows(
      const Schema& schema,
      const std::vector<std::pair<Tuple, int64_t>>& rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return mult_.size(); }
  size_t num_columns() const { return columns_.size(); }
  const ColumnVec& column(size_t c) const { return columns_[c]; }
  ColumnVec* mutable_column(size_t c) { return &columns_[c]; }
  const std::vector<int64_t>& mult() const { return mult_; }
  std::vector<int64_t>* mutable_mult() { return &mult_; }

  /// Appends one row-major row; aborts on a type-violating cell (builders
  /// that cannot prove their cells use FromRows, which bails instead).
  void AppendRow(const Tuple& tuple, int64_t m);

  /// Recomputes the abs/signed prefix sums after any bulk mutation of
  /// mult_.  Every constructor of a finished table must call this once.
  void Finish();

  /// Sum of |mult| over rows [begin, end) — O(1) after Finish().
  int64_t AbsCardBetween(size_t begin, size_t end) const {
    return abs_prefix_[end] - abs_prefix_[begin];
  }
  /// Sum of mult over rows [begin, end) — O(1) after Finish().
  int64_t SignedCardBetween(size_t begin, size_t end) const {
    return signed_prefix_[end] - signed_prefix_[begin];
  }

  /// Materializes row `i` (exact cell types).
  Tuple TupleAt(size_t i) const;

  /// Min/max of column `c` over non-null cells.
  ColumnMinMax Stats(size_t c) const;

  size_t ApproxBytes() const;

 private:
  Schema schema_;
  std::vector<ColumnVec> columns_;
  std::vector<int64_t> mult_;
  /// abs_prefix_[i] = sum of |mult_[0..i)|; size num_rows()+1.
  std::vector<int64_t> abs_prefix_;
  std::vector<int64_t> signed_prefix_;
};

}  // namespace wuw

#endif  // WUW_STORAGE_COLUMN_TABLE_H_
