#include "storage/buffer_pool.h"

#include <stdexcept>

#include "common/check.h"
#include "obs/metrics.h"

namespace wuw {
namespace paged {

BufferPool::BufferPool(PageFile* file, size_t budget_bytes)
    : file_(file), budget_bytes_(budget_bytes) {
  WUW_CHECK(file != nullptr, "BufferPool needs a page file");
}

void BufferPool::EvictForAdmission() {
  const size_t page = file_->page_bytes();
  while (bytes_resident() + page > budget_bytes_) {
    // LRU victim among unpinned frames; pinned frames are untouchable.
    auto victim = frames_.end();
    for (auto it = frames_.begin(); it != frames_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == frames_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == frames_.end()) return;  // all pinned: overcommit
    if (victim->second.dirty) {
      std::string error = file_->WritePage(victim->first,
                                           victim->second.payload);
      if (!error.empty()) {
        throw std::runtime_error("buffer pool writeback failed: " + error);
      }
    }
    frames_.erase(victim);
    ++evictions_;
    internal::g_evictions.fetch_add(1, std::memory_order_relaxed);
    WUW_METRIC_ADD("paged.evictions", obs::MetricClass::kEngine, 1);
  }
}

int64_t BufferPool::NewPage(std::string** payload) {
  EvictForAdmission();
  int64_t id = file_->AllocatePage();
  Frame& frame = frames_[id];
  frame.pins = 1;
  frame.dirty = true;
  frame.last_use = ++clock_;
  *payload = &frame.payload;
  return id;
}

std::string* BufferPool::Pin(int64_t page_id) {
  auto it = frames_.find(page_id);
  if (it == frames_.end()) {
    EvictForAdmission();
    Frame frame;
    std::string error = file_->ReadPage(page_id, &frame.payload);
    if (!error.empty()) {
      throw std::runtime_error("buffer pool fault failed: " + error);
    }
    ++faults_;
    internal::g_faults.fetch_add(1, std::memory_order_relaxed);
    WUW_METRIC_ADD("paged.faults", obs::MetricClass::kEngine, 1);
    it = frames_.emplace(page_id, std::move(frame)).first;
  }
  it->second.pins += 1;
  it->second.last_use = ++clock_;
  return &it->second.payload;
}

void BufferPool::Unpin(int64_t page_id, bool dirty) {
  auto it = frames_.find(page_id);
  WUW_CHECK(it != frames_.end(), "unpin of a non-resident page");
  WUW_CHECK(it->second.pins > 0, "buffer pool unpin below zero");
  it->second.pins -= 1;
  if (dirty) it->second.dirty = true;
}

std::string BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (!frame.dirty) continue;
    std::string error = file_->WritePage(id, frame.payload);
    if (!error.empty()) return error;
    frame.dirty = false;
  }
  return file_->Flush();
}

int BufferPool::pin_count(int64_t page_id) const {
  auto it = frames_.find(page_id);
  return it == frames_.end() ? 0 : it->second.pins;
}

}  // namespace paged
}  // namespace wuw
