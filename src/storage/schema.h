// Relation schemas: ordered, named, typed columns.
#ifndef WUW_STORAGE_SCHEMA_H_
#define WUW_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace wuw {

/// One column of a relation.
struct Column {
  std::string name;
  TypeId type;
};

/// An ordered list of columns with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Returns the index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Index of `name`; aborts if absent (use for statically-known columns).
  size_t MustIndexOf(const std::string& name) const;

  bool HasColumn(const std::string& name) const { return IndexOf(name) >= 0; }

  /// Concatenates two schemas; duplicate names are qualified by the caller.
  static Schema Concat(const Schema& a, const Schema& b);

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace wuw

#endif  // WUW_STORAGE_SCHEMA_H_
