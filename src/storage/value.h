// A dynamically-typed scalar value: the cell type of all warehouse tuples.
//
// The warehouse engine is deliberately small: four concrete types cover the
// TPC-D columns used by the paper's experiments (integers and keys, money
// amounts, fixed strings, and dates).  Dates are stored as int32 "yyyymmdd"
// ordinals so that comparison operators order them chronologically without a
// calendar library.
#ifndef WUW_STORAGE_VALUE_H_
#define WUW_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace wuw {

/// Type tags for Value.  kNull is its own type (SQL-ish but simplified:
/// nulls compare equal to each other and less than everything else, which
/// gives tuples a total order usable for hashing and sorting).
enum class TypeId : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kDate = 4,
};

/// Human-readable type name ("INT64", "DATE", ...).
const char* TypeName(TypeId t);

/// A single scalar cell.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(TypeId::kNull) {}
  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Double(double v) {
    Value out;
    out.type_ = TypeId::kDouble;
    out.rep_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = TypeId::kString;
    out.rep_ = std::move(v);
    return out;
  }
  /// Date encoded as yyyymmdd, e.g. 19950315.
  static Value Date(int64_t yyyymmdd) { return Value(TypeId::kDate, yyyymmdd); }
  /// Convenience constructor from calendar components.
  static Value Date(int year, int month, int day) {
    return Date(static_cast<int64_t>(year) * 10000 + month * 100 + day);
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  /// Accessors abort if the type does not match; use type() first when
  /// handling heterogeneous data.
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  int64_t AsDate() const;

  /// Numeric view: int64 and date widen to double.  Aborts on strings/nulls.
  double NumericValue() const;

  /// Total order over all values (null < int64/double/date interleaved by
  /// numeric value < string).  Used by tuple ordering and group-by maps.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  size_t Hash() const;

  /// Render for debugging and benchmark output ("1995-03-15" for dates).
  std::string ToString() const;

 private:
  Value(TypeId t, int64_t v) : type_(t), rep_(v) {}

  TypeId type_;
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

}  // namespace wuw

#endif  // WUW_STORAGE_VALUE_H_
