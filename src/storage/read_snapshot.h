// Snapshot-isolated read handles — the storage half of zero-downtime reads.
//
// The paper shrinks the update window because readers were locked out while
// a strategy installed deltas ("during a warehouse update either OLAP
// queries are not processed or OLAP queries compete with the warehouse
// update", Section 1).  This module removes the outage instead: the
// Warehouse (exec/warehouse.h) publishes an immutable SnapshotState at each
// commit point — extents shared by shared_ptr, versioned by the existing
// batch_epoch / extent_version seam — and a ReadSnapshot pins one published
// state for the handle's lifetime.
//
// Read-path cost discipline (the WUW_FAULT / WUW_METRICS pattern): opening
// a snapshot on an armed warehouse is one shared_ptr copy under a publish
// mutex held for just that copy; scans of pinned tables take no locks because a
// published table is never mutated again — writers copy-on-write-detach
// before their first post-publish mutation.  Reclamation is epoch-based by
// refcount: a superseded version lives exactly until the last reader
// pinning it releases its handle, then the shared_ptr frees it.  With
// snapshot reads disarmed (no WUW_READERS, no EnableSnapshotReads()) the
// handle falls back to the live catalog and nothing is ever published,
// copied, or retained — zero behavior change.
#ifndef WUW_STORAGE_READ_SNAPSHOT_H_
#define WUW_STORAGE_READ_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/catalog.h"
#include "storage/table.h"

namespace wuw {

/// One committed warehouse state: every extent as of a commit point, plus
/// the epoch coordinates identifying it.  Immutable after publication —
/// the tables are shared with the live catalog until the writer detaches
/// them, and the invariant every reader relies on is that a published
/// Table object is never mutated again.
struct SnapshotState {
  /// Monotone commit counter (one per publish); readers use it to assert
  /// they never travel backwards in time.
  int64_t commit_seq = 0;
  /// The warehouse's batch_epoch at the commit point.
  int64_t batch_epoch = 0;
  /// Table names in catalog creation order (stable across runs).
  std::vector<std::string> names;
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables;
};

/// A pinned, consistent view of the warehouse.  Cheap to copy (two words +
/// one refcount); keeps its SnapshotState — and therefore every superseded
/// extent version it references — alive until destroyed.
class ReadSnapshot {
 public:
  /// Pinned mode: serves exactly `state` forever.
  explicit ReadSnapshot(std::shared_ptr<const SnapshotState> state);

  /// Live fallback (snapshot reads disarmed): serves straight from the
  /// catalog.  Only valid while no maintenance runs concurrently — exactly
  /// the pre-snapshot, quiesced-reads regime.
  ReadSnapshot(const Catalog* live, int64_t batch_epoch);

  /// Lookup; nullptr if absent.
  const Table* table(const std::string& name) const;
  bool has_table(const std::string& name) const;

  /// Names in catalog creation order.
  std::vector<std::string> table_names() const;

  /// Commit counter of the pinned state (0 in live fallback mode).
  int64_t commit_seq() const;
  /// batch_epoch at the commit point (current epoch in live mode).
  int64_t batch_epoch() const;

  /// True when this handle pins a published state (armed warehouse).
  bool pinned() const { return state_ != nullptr; }

  /// Multiset equality against a full catalog — how the concurrency tests
  /// phrase "the reader saw exactly the pre-window state".
  bool ContentsEqual(const Catalog& other) const;

 private:
  std::shared_ptr<const SnapshotState> state_;  // null in live mode
  const Catalog* live_ = nullptr;
  int64_t live_epoch_ = 0;
};

/// The WUW_READERS env knob: number of synthetic reader threads the probe
/// scope attaches to every executor run, and the switch that arms snapshot
/// publication at Warehouse construction.  0 (or unset/invalid) = disarmed.
/// Parsed once per process.
int EnvReaders();

}  // namespace wuw

#endif  // WUW_STORAGE_READ_SNAPSHOT_H_
