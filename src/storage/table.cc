#include "storage/table.h"

#include <algorithm>

#include "common/check.h"

namespace wuw {

size_t Table::FindPosition(const Tuple& tuple, size_t hash) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return SIZE_MAX;
  for (uint32_t pos : it->second) {
    if (rows_[pos].first == tuple) return pos;
  }
  return SIZE_MAX;
}

int64_t Table::Add(const Tuple& tuple, int64_t count) {
  if (count == 0) return Count(tuple);
  size_t hash = tuple.Hash();
  size_t pos = FindPosition(tuple, hash);

  if (pos == SIZE_MAX) {
    if (count <= 0) return 0;  // clamp: deleting an absent tuple is a no-op
    WUW_CHECK(rows_.size() < UINT32_MAX, "table too large for row index");
    index_[hash].push_back(static_cast<uint32_t>(rows_.size()));
    rows_.emplace_back(tuple, count);
    cardinality_ += count;
    return count;
  }

  int64_t next = rows_[pos].second + count;
  if (next > 0) {
    cardinality_ += next - rows_[pos].second;
    rows_[pos].second = next;
    return next;
  }

  // Remove the row: swap-with-last keeps rows_ dense.
  cardinality_ -= rows_[pos].second;
  size_t last = rows_.size() - 1;
  if (pos != last) {
    size_t moved_hash = rows_[last].first.Hash();
    rows_[pos] = std::move(rows_[last]);
    // Repoint the moved row's index entry.
    auto& positions = index_[moved_hash];
    for (uint32_t& p : positions) {
      if (p == static_cast<uint32_t>(last)) {
        p = static_cast<uint32_t>(pos);
        break;
      }
    }
  }
  rows_.pop_back();
  // Drop the erased tuple's index entry: exactly one stale entry with
  // value `pos` remains in its bucket (if the moved row shares the bucket,
  // both entries read `pos` and removing either leaves the moved row's
  // single valid entry).
  auto it = index_.find(hash);
  auto& positions = it->second;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] == static_cast<uint32_t>(pos)) {
      positions[i] = positions.back();
      positions.pop_back();
      break;
    }
  }
  if (positions.empty()) index_.erase(it);
  return 0;
}

int64_t Table::Count(const Tuple& tuple) const {
  size_t pos = FindPosition(tuple, tuple.Hash());
  return pos == SIZE_MAX ? 0 : rows_[pos].second;
}

void Table::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  for (const auto& [tuple, count] : rows_) fn(tuple, count);
}

std::vector<std::pair<Tuple, int64_t>> Table::SortedRows() const {
  std::vector<std::pair<Tuple, int64_t>> out = rows_;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Table::Clear() {
  rows_.clear();
  index_.clear();
  cardinality_ = 0;
}

bool Table::ContentsEqual(const Table& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [tuple, count] : rows_) {
    if (other.Count(tuple) != count) return false;
  }
  return true;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + " {\n";
  size_t shown = 0;
  for (const auto& [tuple, count] : rows_) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  " + tuple.ToString();
    if (count != 1) out += " x" + std::to_string(count);
    out += "\n";
  }
  out += "} (" + std::to_string(cardinality_) + " rows)";
  return out;
}

}  // namespace wuw
