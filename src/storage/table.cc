#include "storage/table.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"
#include "obs/metrics.h"
#include "storage/column_table.h"

namespace wuw {

/// Lazily-filled columnar snapshot, shared between copies of a Table (a
/// copy sees the same rows until one side mutates, at which point that side
/// detaches to a fresh cache).
struct Table::SnapshotCache {
  std::mutex mu;
  std::shared_ptr<const ColumnTable> table;
  bool built = false;  // distinguishes "not built" from "built, failed"
};

Table::Table() : snapshot_(std::make_shared<SnapshotCache>()) {}

Table::Table(Schema schema)
    : schema_(std::move(schema)), snapshot_(std::make_shared<SnapshotCache>()) {}

Table::~Table() = default;

Table::Table(const Table& other)
    : schema_(other.schema_),
      rows_(other.rows_),
      slots_(other.slots_),
      slots_used_(other.slots_used_),
      cardinality_(other.cardinality_),
      mutation_count_(other.mutation_count_) {
  // The source may be a published extent whose concurrent readers are
  // filling its columnar cache (ColumnarSnapshot writes snapshot_ /
  // snapshot_stale_ under snapshot_mu_) — a copy-on-write detach copies
  // exactly such a table.  The row data itself is immutable then; only the
  // cache handle needs the lock.
  std::lock_guard<std::mutex> lock(other.snapshot_mu_);
  snapshot_ = other.snapshot_;
  snapshot_stale_ = other.snapshot_stale_;
}

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      slots_(std::move(other.slots_)),
      slots_used_(other.slots_used_),
      cardinality_(other.cardinality_),
      mutation_count_(other.mutation_count_),
      snapshot_(std::move(other.snapshot_)),
      snapshot_stale_(other.snapshot_stale_) {
  other.slots_used_ = 0;
  other.cardinality_ = 0;
  other.mutation_count_ = 0;
  other.snapshot_ = std::make_shared<SnapshotCache>();
  other.snapshot_stale_ = false;
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  rows_ = other.rows_;
  slots_ = other.slots_;
  slots_used_ = other.slots_used_;
  cardinality_ = other.cardinality_;
  mutation_count_ = other.mutation_count_;
  // Same discipline as the copy constructor: the source's columnar cache
  // may be racing with concurrent readers.
  std::lock_guard<std::mutex> lock(other.snapshot_mu_);
  snapshot_ = other.snapshot_;
  snapshot_stale_ = other.snapshot_stale_;
  return *this;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  rows_ = std::move(other.rows_);
  slots_ = std::move(other.slots_);
  slots_used_ = other.slots_used_;
  cardinality_ = other.cardinality_;
  mutation_count_ = other.mutation_count_;
  snapshot_ = std::move(other.snapshot_);
  snapshot_stale_ = other.snapshot_stale_;
  other.slots_used_ = 0;
  other.cardinality_ = 0;
  other.mutation_count_ = 0;
  other.snapshot_ = std::make_shared<SnapshotCache>();
  other.snapshot_stale_ = false;
  return *this;
}

size_t Table::FindPosition(const Tuple& tuple, size_t hash) const {
  if (slots_.empty()) return SIZE_MAX;
  const size_t mask = slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const IndexSlot& slot = slots_[i];
    if (slot.pos == kIndexEmpty) return SIZE_MAX;
    if (slot.pos != kIndexTombstone && slot.hash == hash &&
        rows_[slot.pos].first == tuple) {
      return slot.pos;
    }
  }
}

void Table::IndexRehash(size_t new_capacity) {
  std::vector<IndexSlot> old = std::move(slots_);
  slots_.assign(new_capacity, IndexSlot{0, kIndexEmpty});
  slots_used_ = 0;
  const size_t mask = new_capacity - 1;
  for (const IndexSlot& slot : old) {
    if (slot.pos == kIndexEmpty || slot.pos == kIndexTombstone) continue;
    size_t i = slot.hash & mask;
    while (slots_[i].pos != kIndexEmpty) i = (i + 1) & mask;
    slots_[i] = slot;
    ++slots_used_;
  }
}

void Table::IndexInsert(size_t hash, uint32_t pos) {
  // Grow at 70% occupancy (live + tombstones) so probes stay short;
  // rehashing also purges tombstones.
  if (slots_.empty()) {
    slots_.assign(16, IndexSlot{0, kIndexEmpty});
  } else if ((slots_used_ + 1) * 10 > slots_.size() * 7) {
    IndexRehash(slots_.size() * 2);
  }
  const size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i].pos != kIndexEmpty && slots_[i].pos != kIndexTombstone) {
    i = (i + 1) & mask;
  }
  if (slots_[i].pos == kIndexEmpty) ++slots_used_;
  slots_[i] = IndexSlot{hash, pos};
}

void Table::IndexErase(size_t hash, uint32_t pos) {
  const size_t mask = slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    IndexSlot& slot = slots_[i];
    WUW_CHECK(slot.pos != kIndexEmpty, "erasing an unindexed row");
    if (slot.pos == pos && slot.hash == hash) {
      slot.pos = kIndexTombstone;
      return;
    }
  }
}

void Table::IndexRepoint(size_t hash, uint32_t old_pos, uint32_t new_pos) {
  const size_t mask = slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    IndexSlot& slot = slots_[i];
    WUW_CHECK(slot.pos != kIndexEmpty, "repointing an unindexed row");
    if (slot.pos == old_pos && slot.hash == hash) {
      slot.pos = new_pos;
      return;
    }
  }
}

int64_t Table::Add(const Tuple& tuple, int64_t count) {
  if (count == 0) return Count(tuple);
  size_t hash = tuple.Hash();
  size_t pos = FindPosition(tuple, hash);
  snapshot_stale_ = true;
  ++mutation_count_;

  if (pos == SIZE_MAX) {
    if (count <= 0) return 0;  // clamp: deleting an absent tuple is a no-op
    WUW_CHECK(rows_.size() < kIndexTombstone, "table too large for row index");
    IndexInsert(hash, static_cast<uint32_t>(rows_.size()));
    rows_.emplace_back(tuple, count);
    cardinality_ += count;
    return count;
  }

  int64_t next = rows_[pos].second + count;
  if (next > 0) {
    cardinality_ += next - rows_[pos].second;
    rows_[pos].second = next;
    return next;
  }

  // Remove the row: swap-with-last keeps rows_ dense.
  cardinality_ -= rows_[pos].second;
  size_t last = rows_.size() - 1;
  // Drop the erased tuple's slot first: if the moved row shares (hash,
  // last) aliasing never arises because positions are unique.
  IndexErase(hash, static_cast<uint32_t>(pos));
  if (pos != last) {
    size_t moved_hash = rows_[last].first.Hash();
    rows_[pos] = std::move(rows_[last]);
    IndexRepoint(moved_hash, static_cast<uint32_t>(last),
                 static_cast<uint32_t>(pos));
  }
  rows_.pop_back();
  return 0;
}

int64_t Table::Count(const Tuple& tuple) const {
  size_t pos = FindPosition(tuple, tuple.Hash());
  return pos == SIZE_MAX ? 0 : rows_[pos].second;
}

void Table::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  for (const auto& [tuple, count] : rows_) fn(tuple, count);
}

std::vector<std::pair<Tuple, int64_t>> Table::SortedRows() const {
  std::vector<std::pair<Tuple, int64_t>> out = rows_;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Table::Clear() {
  rows_.clear();
  slots_.clear();
  slots_used_ = 0;
  cardinality_ = 0;
  snapshot_stale_ = true;
  ++mutation_count_;
}

void Table::ReleasePayload() {
  rows_.clear();
  rows_.shrink_to_fit();
  slots_.clear();
  slots_.shrink_to_fit();
  slots_used_ = 0;
  // Detach the columnar cache so a copy sharing it keeps its (still
  // valid) snapshot while this object drops the reference.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::make_shared<SnapshotCache>();
  snapshot_stale_ = false;
}

bool Table::ContentsEqual(const Table& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [tuple, count] : rows_) {
    if (other.Count(tuple) != count) return false;
  }
  return true;
}

std::shared_ptr<const ColumnTable> Table::ColumnarSnapshot() const {
  // snapshot_mu_ makes this safe for concurrent const readers of an
  // immutable table (snapshot-pinned extents): the stale-detach below
  // rewrites snapshot_, and two first-readers would otherwise race on it.
  std::lock_guard<std::mutex> outer(snapshot_mu_);
  // Reader-session threads (obs::ServeScope) may share this table with the
  // maintenance path, so they must not populate the cache: the build fires
  // deterministic kEngine counters, and a reader warming the cache would
  // steal the conversion the maintenance run counts in a readers-off run.
  // Returning nullptr is always legal — callers fall back to the row path.
  if (snapshot_stale_) {
    if (obs::InServeScope()) return nullptr;
    snapshot_ = std::make_shared<SnapshotCache>();
    const_cast<Table*>(this)->snapshot_stale_ = false;
  }
  std::lock_guard<std::mutex> lock(snapshot_->mu);
  if (!snapshot_->built) {
    if (obs::InServeScope()) return nullptr;
    snapshot_->table = ColumnTable::FromRows(schema_, rows_);
    snapshot_->built = true;
  }
  return snapshot_->table;
}

size_t Table::IndexBytes() const {
  return slots_.capacity() * sizeof(IndexSlot);
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + " {\n";
  size_t shown = 0;
  for (const auto& [tuple, count] : rows_) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  " + tuple.ToString();
    if (count != 1) out += " x" + std::to_string(count);
    out += "\n";
  }
  out += "} (" + std::to_string(cardinality_) + " rows)";
  return out;
}

}  // namespace wuw
