// Fixed-size on-disk pages: the bottom layer of the WUW_MEM_MB paged
// storage tier.
//
// A page file is a magic-tagged header followed by fixed-size page frames,
// each carrying its own CRC32 (the journal's framing discipline,
// exec/journal.cc): [u32 len][u32 page_no][payload][u32 crc32] zero-padded
// to the file's page size.  Every byte of the frame prefix and payload is
// covered by the CRC, so a flipped bit anywhere in a frame makes that page
// unreadable rather than silently wrong; loads keep the longest valid
// prefix of pages and report torn tails through error strings — never an
// abort (user-facing input path, see CLAUDE.md conventions).
//
// Two consumers sit on top:
//   * storage/paged_store.h spills whole extents as multi-page table
//     images (SaveTableImage / LoadTableImage below) when the warehouse's
//     resident set exceeds the WUW_MEM_MB budget;
//   * storage/buffer_pool.h pins/evicts individual pages under a byte
//     budget for the grace-partition spill paths in the join/aggregation
//     kernels.
//
// All disk traffic funnels through PageFile::ReadPage / WritePage, which
// carry the `paged.io.read` / `paged.io.write` fault sites — kill-anywhere
// recovery sweeps (fault_recovery_property_test) ride the same two points
// for every paged workload.
#ifndef WUW_STORAGE_PAGE_H_
#define WUW_STORAGE_PAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/env.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace wuw {
namespace paged {

// ---------------------------------------------------------------------------
// Byte codec.  Little-endian fixed-width primitives, length-prefixed
// strings — the journal's wire idiom (exec/journal.cc), exported here so
// page images and the kernels' spill records share one dialect.

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutString(std::string* out, const std::string& s);
void PutValue(std::string* out, const Value& v);
void PutTuple(std::string* out, const Tuple& t);

/// Bounds-checked little-endian reader; any overrun or type mismatch
/// latches `ok = false` and every later read returns a zero value.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  explicit ByteReader(const std::string& bytes)
      : data(reinterpret_cast<const uint8_t*>(bytes.data())),
        size(bytes.size()) {}
  ByteReader(const uint8_t* d, size_t n) : data(d), size(n) {}

  size_t remaining() const { return ok ? size - pos : 0; }

  bool Need(size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos++]) << (8 * i);
    }
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos++]) << (8 * i);
    }
    return v;
  }

  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return std::string();
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

bool GetValue(ByteReader* r, Value* out);
bool GetTuple(ByteReader* r, Tuple* out);

// ---------------------------------------------------------------------------
// Analytic size model.  Serialized-byte estimates computed from the wire
// format above — a pure function of the data, so every paging/spill
// decision derived from it is deterministic across runs, pool sizes, and
// platforms (never sizeof()/capacity(), which are allocator noise).

int64_t ApproxValueBytes(const Value& v);
int64_t ApproxTupleBytes(const Tuple& t);
/// Bytes of the table's serialized image payload (rows only; the fixed
/// header is noise at any realistic size).
int64_t ApproxTableBytes(const Table& table);

// ---------------------------------------------------------------------------
// Process-wide paged-tier statistics.  Plain relaxed atomics bumped on
// every armed-path event regardless of obs arming, so tests can assert
// "this budget really spilled" without arming the metric registry; the
// kEngine counters `paged.faults` / `paged.evictions` /
// `paged.spilled_partitions` mirror them when metrics are armed.

struct PagedStatsSnapshot {
  int64_t faults = 0;              ///< extent fault-ins + pool disk reads
  int64_t evictions = 0;           ///< extent hibernations + pool evictions
  int64_t spilled_partitions = 0;  ///< non-empty grace partitions
  int64_t read_retries = 0;        ///< transient-EIO retries in ReadPage
};

PagedStatsSnapshot GlobalPagedStats();

namespace internal {
extern std::atomic<int64_t> g_faults;
extern std::atomic<int64_t> g_evictions;
extern std::atomic<int64_t> g_spilled_partitions;
extern std::atomic<int64_t> g_read_retries;
}  // namespace internal

// ---------------------------------------------------------------------------
// Page files.

/// Per-frame overhead: u32 payload length + u32 page number + u32 CRC32.
inline constexpr size_t kPageFrameOverhead = 12;

/// A fixed-size-page disk file (the DiskManager of the classic buffer-pool
/// layering).  Not thread-safe: callers serialize access (the extent pager
/// holds its own mutex; operator spills are single-threaded per operator).
/// All disk traffic goes through an io::Env positioned handle, so the
/// WUW_IO_FAULT FaultEnv can inject EIO/ENOSPC/short writes underneath it.
class PageFile {
 public:
  /// Creates/truncates `path` with the given page size through `env`
  /// (null = the current io::GetEnv()).  Returns nullptr and fills
  /// `*error` on failure.
  static std::unique_ptr<PageFile> Create(const std::string& path,
                                          size_t page_bytes,
                                          std::string* error,
                                          io::Env* env = nullptr);

  /// Opens an existing page file, validating magic + header.  Returns
  /// nullptr and fills `*error` on failure.
  static std::unique_ptr<PageFile> Open(const std::string& path,
                                        std::string* error,
                                        io::Env* env = nullptr);

  /// Closes the handle; removes the file first when remove-on-close is set
  /// (spill temporaries).  Never throws — safe during unwinding.
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_bytes() const { return page_bytes_; }
  /// Usable payload bytes per page.
  size_t payload_capacity() const { return page_bytes_ - kPageFrameOverhead; }
  int64_t num_pages() const { return num_pages_; }
  const std::string& path() const { return path_; }

  /// Reserves the next page id.  No I/O: the frame exists on disk only
  /// after its first WritePage.
  int64_t AllocatePage() { return num_pages_++; }

  /// Writes one CRC-framed page (payload must fit payload_capacity()).
  /// Returns "" on success, else an error description.  Carries the
  /// `paged.io.write` fault site.
  std::string WritePage(int64_t page_id, const std::string& payload);

  /// Reads + validates one page frame.  Returns "" on success, else an
  /// error description (truncation, CRC mismatch, wrong page number — the
  /// caller treats any of them as a torn page).  Carries the
  /// `paged.io.read` fault site.  A *retryable* raw-read failure (EIO, not
  /// truncation or CRC damage — those are corruption, not transience) is
  /// retried on a bounded deterministic schedule (kReadAttempts fixed
  /// attempts, each counted in the kEngine `io.retries` metric and
  /// GlobalPagedStats().read_retries); a failure that outlives the
  /// schedule returns the error string — the caller's error/throw
  /// contract, never an abort.
  std::string ReadPage(int64_t page_id, std::string* payload);

  /// Bounded retry schedule for transient read errors.
  static constexpr int kReadAttempts = 3;

  /// Flushes buffered writes (no fsync).  Returns "" on success.
  std::string Flush();

  /// Flushes everything to stable storage (fsync) — the pre-rename step
  /// of SaveTableImage's crash discipline.  Returns "" on success.
  std::string Sync();

  /// Spill temporaries set this so the file vanishes with the handle.
  void set_remove_on_close(bool remove) { remove_on_close_ = remove; }

 private:
  PageFile(std::unique_ptr<io::RandomRWFile> file, io::Env* env,
           std::string path, size_t page_bytes, int64_t num_pages)
      : file_(std::move(file)),
        env_(env),
        path_(std::move(path)),
        page_bytes_(page_bytes),
        num_pages_(num_pages) {}

  std::unique_ptr<io::RandomRWFile> file_;
  io::Env* env_;
  std::string path_;
  size_t page_bytes_;
  int64_t num_pages_;
  bool remove_on_close_ = false;
};

// ---------------------------------------------------------------------------
// Table images: a whole extent serialized across consecutive pages —
// what the extent pager (storage/paged_store.h) writes on hibernate and
// reads on fault-in.

/// A decoded extent image.  `rows` is in the table's dense-storage order,
/// so rebuilding via Table::Add reproduces the identical dense layout
/// (scan order, and therefore every downstream row order, is preserved).
struct TableImage {
  Schema schema;
  std::vector<std::pair<Tuple, int64_t>> rows;
  int64_t mutation_count = 0;
  int64_t cardinality = 0;
};

/// Serializes `table` into the page-spanning image stream.
std::string SerializeTableImage(const Table& table);

/// Writes `table`'s image to `path` with the full crash-atomic discipline
/// (temp, fsync, rename, fsync parent dir — io/env.h).  Returns "" on
/// success, else an error description.
std::string SaveTableImage(const Table& table, const std::string& path,
                           size_t page_bytes);

/// Loads an image, keeping the longest valid prefix of pages and rows.
/// Returns false (with `*error`) when not even the image header survives;
/// returns true with `*torn = true` when a torn/corrupt tail dropped
/// trailing rows.  Never aborts.
bool LoadTableImage(const std::string& path, TableImage* out,
                    std::string* error, bool* torn);

}  // namespace paged
}  // namespace wuw

#endif  // WUW_STORAGE_PAGE_H_
