#include "storage/tuple.h"

namespace wuw {

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> values;
  values.reserve(a.size() + b.size());
  values.insert(values.end(), a.values().begin(), a.values().end());
  values.insert(values.end(), b.values().begin(), b.values().end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> values;
  values.reserve(indices.size());
  for (size_t i : indices) values.push_back(value(i));
  return Tuple(std::move(values));
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_ == other.values_) return true;  // shared representation
  if (size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (value(i) != other.value(i)) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  size_t n = std::min(size(), other.size());
  for (size_t i = 0; i < n; ++i) {
    if (value(i) < other.value(i)) return true;
    if (other.value(i) < value(i)) return false;
  }
  return size() < other.size();
}

size_t Tuple::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : values()) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += value(i).ToString();
  }
  out += "]";
  return out;
}

}  // namespace wuw
