// A byte-budgeted page cache over one PageFile: pin/unpin refcounts, LRU
// eviction of unpinned frames with dirty-page writeback — the
// BufferPoolManager half of the classic DiskManager/BufferPool layering,
// scoped to the WUW_MEM_MB spill paths.
//
// Consumers are single-threaded by construction: each grace-spill operator
// (algebra/spill_util.h) owns a private pool over a private temp file, so
// allocation, eviction, and the `paged.faults` / `paged.evictions`
// counters are deterministic regardless of WUW_THREADS.  The pool is
// therefore deliberately lock-free-by-exclusivity — no mutex.
//
// Budget discipline: a frame costs page_bytes() regardless of payload
// fill; admission evicts the least-recently-used UNPINNED frame (dirty
// frames write back through PageFile::WritePage, riding the
// `paged.io.write` fault site — and, like all PageFile I/O, the io::Env
// seam, so WUW_IO_FAULT's ENOSPC/EIO models reach writeback too) until
// the new frame fits.  Pinned frames
// are never evicted; if pins alone exceed the budget the pool overcommits
// — callers keep at most one page pinned at a time to make
// bytes_resident() <= budget an invariant (buffer_pool_test holds it to
// that).
#ifndef WUW_STORAGE_BUFFER_POOL_H_
#define WUW_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/page.h"

namespace wuw {
namespace paged {

class BufferPool {
 public:
  /// The pool caches pages of `file` (not owned) under `budget_bytes`.
  BufferPool(PageFile* file, size_t budget_bytes);

  /// Frees memory only — no flush, no I/O — so destruction during an
  /// exception unwind (a fault-injected kill mid-spill) is always safe.
  ~BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh page, resident + pinned (pin count 1) + dirty, and
  /// returns its id; `*payload` points at the page's in-memory buffer
  /// (valid until Unpin).  Throws std::runtime_error on writeback failure
  /// while evicting for admission.
  int64_t NewPage(std::string** payload);

  /// Pins a page, faulting it from disk if it was evicted (counts a
  /// paged fault; rides `paged.io.read`).  Returns the payload buffer,
  /// valid until the matching Unpin.  Throws std::runtime_error on a torn
  /// or unreadable page.
  std::string* Pin(int64_t page_id);

  /// Drops one pin; `dirty` marks the payload as modified since fetch.
  /// Unpinning an unpinned page is a contract violation (WUW_CHECK).
  void Unpin(int64_t page_id, bool dirty);

  /// Writes every dirty frame back (frames stay resident).  Returns "" on
  /// success, else the first error.
  std::string FlushAll();

  /// Resident frame bytes (frames * page size).
  size_t bytes_resident() const { return frames_.size() * file_->page_bytes(); }
  size_t budget_bytes() const { return budget_bytes_; }

  /// Disk re-reads of evicted pages.
  int64_t faults() const { return faults_; }
  /// Frames dropped for admission (dirty ones written back first).
  int64_t evictions() const { return evictions_; }

  int pin_count(int64_t page_id) const;

 private:
  struct Frame {
    std::string payload;
    int pins = 0;
    bool dirty = false;
    uint64_t last_use = 0;
  };

  /// Evicts LRU unpinned frames until a new frame fits the budget (or no
  /// candidate remains — the documented pinned-overcommit case).
  void EvictForAdmission();

  PageFile* file_;
  size_t budget_bytes_;
  uint64_t clock_ = 0;
  int64_t faults_ = 0;
  int64_t evictions_ = 0;
  /// Ordered map: eviction scans are deterministic by construction (ties
  /// in last_use cannot arise — the clock is monotone — but iteration
  /// order independence from pointer hashing is worth the log n).
  std::map<int64_t, Frame> frames_;
};

}  // namespace paged
}  // namespace wuw

#endif  // WUW_STORAGE_BUFFER_POOL_H_
