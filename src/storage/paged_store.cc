#include "storage/paged_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace wuw {
namespace paged {

int64_t ResolvedSpillBytes(const PagedOptions& options) {
  if (options.spill_bytes > 0) return options.spill_bytes;
  return std::max<int64_t>(1, options.budget_bytes / 4);
}

int64_t ResolvedPoolBytes(const PagedOptions& options) {
  if (options.pool_bytes > 0) return options.pool_bytes;
  return std::max<int64_t>(4 * static_cast<int64_t>(options.page_bytes),
                           options.budget_bytes / 4);
}

std::string ParsePagedSpec(const std::string& spec, PagedOptions* out) {
  PagedOptions options;
  bool have_budget = false;
  std::string remaining = spec;
  while (!remaining.empty()) {
    size_t semi = remaining.find(';');
    std::string clause = remaining.substr(0, semi);
    remaining =
        semi == std::string::npos ? "" : remaining.substr(semi + 1);
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    // A bare integer is shorthand for mb=<N>.
    std::string key = eq == std::string::npos ? "mb" : clause.substr(0, eq);
    std::string value =
        eq == std::string::npos ? clause : clause.substr(eq + 1);
    if (key == "dir") {
      if (value.empty()) return "empty dir in clause '" + clause + "'";
      options.dir = value;
      continue;
    }
    char* rest = nullptr;
    errno = 0;
    long long n = std::strtoll(value.c_str(), &rest, 10);
    if (value.empty() || rest == nullptr || *rest != '\0' || errno != 0 ||
        n < 0) {
      return "bad integer in clause '" + clause + "'";
    }
    if (key == "mb") {
      options.budget_bytes = static_cast<int64_t>(n) << 20;
      have_budget = true;
    } else if (key == "bytes") {
      options.budget_bytes = n;
      have_budget = true;
    } else if (key == "page_bytes") {
      options.page_bytes = static_cast<size_t>(n);
    } else if (key == "partitions") {
      options.partitions = static_cast<size_t>(n);
    } else if (key == "spill_bytes") {
      options.spill_bytes = n;
    } else if (key == "pool_bytes") {
      options.pool_bytes = n;
    } else {
      return "unknown clause '" + clause + "'";
    }
  }
  if (!have_budget || options.budget_bytes <= 0) {
    return "a positive budget is required (mb=<N> or bytes=<N>)";
  }
  if (options.page_bytes < 64 || options.page_bytes > (16u << 20)) {
    return "page_bytes out of range [64, 16Mi]";
  }
  if (options.partitions < 1 || options.partitions > 256 ||
      (options.partitions & (options.partitions - 1)) != 0) {
    return "partitions must be a power of two in [1, 256]";
  }
  *out = std::move(options);
  return "";
}

const PagedOptions* EnvPaged() {
  static const PagedOptions* options = []() -> const PagedOptions* {
    const char* spec = std::getenv("WUW_MEM_MB");
    if (spec == nullptr || *spec == '\0') return nullptr;
    auto* parsed = new PagedOptions();
    std::string error = ParsePagedSpec(spec, parsed);
    if (!error.empty()) {
      std::fprintf(stderr, "WUW_MEM_MB ignored: %s\n", error.c_str());
      delete parsed;
      return nullptr;
    }
    return parsed;
  }();
  return options;
}

namespace {

std::atomic<const PagedOptions*> g_operator_spill{nullptr};

/// Arms the kernels' spill gate from the environment at static-init time,
/// so every binary (not just ones that construct a Warehouse) honors
/// WUW_MEM_MB on its operator paths.
[[maybe_unused]] const bool g_env_spill_armed = [] {
  if (const PagedOptions* env = EnvPaged()) {
    g_operator_spill.store(env, std::memory_order_relaxed);
  }
  return true;
}();

std::atomic<int64_t> g_store_counter{0};

}  // namespace

const PagedOptions* OperatorSpill() {
  return g_operator_spill.load(std::memory_order_relaxed);
}

ScopedOperatorSpill::ScopedOperatorSpill(const PagedOptions& options)
    : options_(options),
      prev_(g_operator_spill.load(std::memory_order_relaxed)) {
  g_operator_spill.store(&options_, std::memory_order_relaxed);
}

ScopedOperatorSpill::~ScopedOperatorSpill() {
  g_operator_spill.store(prev_, std::memory_order_relaxed);
}

PagedStore::PagedStore(PagedOptions options) : options_(std::move(options)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path base = options_.dir.empty() ? fs::temp_directory_path(ec)
                                       : fs::path(options_.dir);
  fs::create_directories(base, ec);
  fs::path mine =
      base / ("wuw_paged_" + std::to_string(::getpid()) + "_" +
              std::to_string(
                  g_store_counter.fetch_add(1, std::memory_order_relaxed)));
  ec.clear();
  fs::create_directories(mine, ec);
  WUW_CHECK(!ec, "cannot create paged spill directory");
  dir_ = mine.string();
}

PagedStore::~PagedStore() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

void PagedStore::RegisterLocked(const std::string& name) {
  if (entries_.count(name) > 0) return;
  Entry entry;
  entry.reg_order = static_cast<int64_t>(order_.size());
  entry.path = dir_ + "/ext_" + std::to_string(entry.reg_order) + ".pages";
  entries_.emplace(name, std::move(entry));
  order_.push_back(name);
}

void PagedStore::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RegisterLocked(name);
}

void PagedStore::OnAccess(const std::string& name, Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    RegisterLocked(name);
    it = entries_.find(name);
  }
  Entry& entry = it->second;
  entry.last_used = seq_;
  if (entry.hibernated) FaultInLocked(name, &entry, table);
}

void PagedStore::FaultInLocked(const std::string& name, Entry* entry,
                               Table* table) {
  TableImage img;
  std::string error;
  bool torn = false;
  if (!LoadTableImage(entry->path, &img, &error, &torn)) {
    throw std::runtime_error("paged: extent image for " + name +
                             " unreadable: " + error);
  }
  if (torn) {
    throw std::runtime_error("paged: extent image for " + name +
                             " has a torn tail");
  }
  // Rebuild in image (= original dense) order: Add appends each distinct
  // tuple, so the dense layout — and every downstream scan order — is
  // reproduced exactly; then restore the precise mutation count so the
  // publish audit and image-staleness checks stay coherent.
  table->Clear();
  for (const auto& [tuple, count] : img.rows) table->Add(tuple, count);
  table->RestoreMutationCount(img.mutation_count);
  WUW_CHECK(table->cardinality() == img.cardinality,
            "paged fault-in cardinality mismatch");
  entry->hibernated = false;
  faults_.fetch_add(1, std::memory_order_relaxed);
  internal::g_faults.fetch_add(1, std::memory_order_relaxed);
  WUW_METRIC_ADD("paged.faults", obs::MetricClass::kEngine, 1);
}

void PagedStore::HibernateLocked(const std::string& name, Entry* entry,
                                 Table* table) {
  if (!entry->has_image || entry->image_mutations != table->mutation_count()) {
    std::string error =
        SaveTableImage(*table, entry->path, options_.page_bytes);
    if (!error.empty()) {
      throw std::runtime_error("paged: cannot spill extent " + name + ": " +
                               error);
    }
    entry->has_image = true;
    entry->image_mutations = table->mutation_count();
  }
  // Only after a durable image: a kill at paged.io.write above leaves the
  // extent resident and the store consistent.
  table->ReleasePayload();
  entry->hibernated = true;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  internal::g_evictions.fetch_add(1, std::memory_order_relaxed);
  WUW_METRIC_ADD("paged.evictions", obs::MetricClass::kEngine, 1);
}

void PagedStore::EvictLocked(Catalog* catalog, bool ignore_budget) {
  struct Candidate {
    uint64_t last_used;
    int64_t reg_order;
    const std::string* name;
    Table* table;
  };
  int64_t total = 0;
  std::vector<Candidate> candidates;
  for (const std::string& name : order_) {
    Entry& entry = entries_[name];
    if (entry.hibernated) continue;
    auto it = catalog->tables_.find(name);
    if (it == catalog->tables_.end()) continue;
    Table* table = it->second.get();
    if (entry.bytes_mutations != table->mutation_count()) {
      entry.approx_bytes = ApproxTableBytes(*table);
      entry.bytes_mutations = table->mutation_count();
    }
    total += entry.approx_bytes;
    // Published slots are pinned by a snapshot (use_count > 1): never
    // hibernated, so read snapshots stay servable.  Extents touched this
    // round (last_used == seq_) are the working set.  Empty extents free
    // nothing.
    if (it->second.use_count() > 1) continue;
    if (entry.last_used >= seq_) continue;
    if (entry.approx_bytes == 0) continue;
    candidates.push_back(
        {entry.last_used, entry.reg_order, &name, table});
  }
  if (!ignore_budget && total <= options_.budget_bytes) return;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_used != b.last_used ? a.last_used < b.last_used
                                                : a.reg_order < b.reg_order;
            });
  for (const Candidate& victim : candidates) {
    if (!ignore_budget && total <= options_.budget_bytes) break;
    Entry& entry = entries_[*victim.name];
    total -= entry.approx_bytes;
    HibernateLocked(*victim.name, &entry, victim.table);
  }
}

void PagedStore::Touch(const std::vector<std::string>& names,
                       Catalog* catalog, bool evict) {
  if (evict) {
    std::lock_guard<std::mutex> lock(mu_);
    ++seq_;
  }
  // Fault the working set in through the accessor hooks (which also stamp
  // last_used to the fresh clock).
  for (const std::string& name : names) catalog->MustGetTable(name);
  if (!evict) return;
  std::lock_guard<std::mutex> lock(mu_);
  EvictLocked(catalog, /*ignore_budget=*/false);
}

void PagedStore::TestOnlyEvictAll(Catalog* catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seq_;
  EvictLocked(catalog, /*ignore_budget=*/true);
}

bool PagedStore::IsHibernated(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.hibernated;
}

int64_t PagedStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, entry] : entries_) {
    if (!entry.hibernated) total += entry.approx_bytes;
  }
  return total;
}

}  // namespace paged
}  // namespace wuw
