// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): the checksum the
// journal's on-disk records carry so recovery can reject a torn or
// corrupted tail (exec/journal.h).  Table-driven, header-only, no
// dependencies.
#ifndef WUW_COMMON_CRC32_H_
#define WUW_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace wuw {

namespace internal {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// CRC-32 of `len` bytes at `data` (standard init/final XOR of ~0).
inline uint32_t Crc32(const void* data, size_t len) {
  const auto& table = internal::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace wuw

#endif  // WUW_COMMON_CRC32_H_
