// Lightweight invariant-checking macros used across the library.
//
// WUW_CHECK is enabled in all build types: the conditions it guards are
// API-contract violations (e.g. evaluating a strategy against the wrong
// catalog) whose cost is negligible next to the relational work being done.
#ifndef WUW_COMMON_CHECK_H_
#define WUW_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define WUW_CHECK(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "WUW_CHECK failed at %s:%d: %s\n  %s\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define WUW_CHECK_EQ(a, b, msg) WUW_CHECK((a) == (b), msg)

#endif  // WUW_COMMON_CHECK_H_
