// A bounded, instrumented memo of materialized subplan results.
//
// The cache maps plan-node fingerprints (see plan/plan_node.h — scan keys
// embed extent versions and the batch epoch, so entries self-invalidate) to
// shared, immutable Rows.  It is the mechanism behind cross-term and
// cross-expression sharing: once one maintenance term has materialized
// σ(orders) ⋈ lineitem, every other term — in the same Comp, a later
// expression of the same stage, or another strategy run against a clone of
// the same warehouse state — reuses the bytes instead of the scans.
//
// Eviction is cost-aware: under byte pressure the cache drops the entries
// that are cheapest to recompute per byte retained (est_recompute_cost /
// bytes, ascending), breaking ties by least recent use.  A zero budget
// admits nothing (handy for forcing the cache-off path through cache-on
// code); a negative budget means unbounded.
#ifndef WUW_PLAN_SUBPLAN_CACHE_H_
#define WUW_PLAN_SUBPLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "algebra/rows.h"

namespace wuw {

struct SubplanCacheOptions {
  /// Maximum resident bytes (approximate; see ApproxRowsBytes).  0 admits
  /// nothing; negative means unbounded.
  int64_t byte_budget = 256ll << 20;
};

/// Counters surfaced through ExecutionReport.  Monotone over the cache's
/// lifetime.
struct SubplanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Entries refused at insert (zero budget, or larger than the budget).
  int64_t rejected = 0;
  int64_t bytes_in_use = 0;
  int64_t bytes_evicted = 0;
  /// Summed est_recompute_cost of every hit — the rows the cache's
  /// consumers did NOT have to touch.  The advisor-facing benefit signal
  /// (and the "cache.cost_saved" kEngine counter: budget-dependent, so it
  /// can never be kWork).
  double cost_saved = 0;

  std::string ToString() const;
};

/// Rough resident size of a Rows batch, counting tuple payloads once
/// (tuples are copy-on-write, so cached copies share storage with the rows
/// handed to consumers).
int64_t ApproxRowsBytes(const Rows& rows);

/// Thread-safe fingerprint -> Rows memo with byte-budgeted, cost-aware LRU
/// eviction.  Values are shared_ptr<const Rows>: consumers may hold results
/// across evictions.
class SubplanCache {
 public:
  explicit SubplanCache(SubplanCacheOptions options = {})
      : options_(options) {}

  /// Returns the cached result for `fingerprint`, or nullptr (counted as a
  /// miss).  A hit refreshes recency.
  std::shared_ptr<const Rows> Lookup(const std::string& fingerprint);

  /// Inserts `rows` under `fingerprint`, evicting cheapest-per-byte entries
  /// until it fits.  `recompute_cost` is the estimated rows touched to
  /// rebuild the result (plan annotation); higher-cost entries survive
  /// pressure longer.  No-op if the key is already present.
  void Insert(const std::string& fingerprint, std::shared_ptr<const Rows> rows,
              double recompute_cost);

  /// Drops every entry (stats are retained).
  void Clear();

  SubplanCacheStats stats() const;
  int64_t byte_budget() const { return options_.byte_budget; }

 private:
  struct Entry {
    std::shared_ptr<const Rows> rows;
    int64_t bytes = 0;
    double recompute_cost = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  /// Evicts until at least `needed` bytes fit under the budget.  Caller
  /// holds mu_.
  void EvictFor(int64_t needed);

  SubplanCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
  SubplanCacheStats stats_;
};

}  // namespace wuw

#endif  // WUW_PLAN_SUBPLAN_CACHE_H_
