#include "plan/plan_node.h"

#include <sstream>

#include "common/check.h"
#include "expr/evaluator.h"
#include "expr/printer.h"

namespace wuw {
namespace {

const char* KindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kScanTable: return "scan";
    case PlanNodeKind::kScanDelta: return "dscan";
    case PlanNodeKind::kScanRows: return "rows";
    case PlanNodeKind::kFilter: return "filter";
    case PlanNodeKind::kProject: return "project";
    case PlanNodeKind::kHashJoin: return "join";
    case PlanNodeKind::kAggregate: return "agg";
  }
  return "?";
}

std::string JoinKeysFingerprint(const JoinKeys& keys) {
  std::string out = "l=";
  for (const std::string& c : keys.left_columns) { out += c; out += ','; }
  out += ";r=";
  for (const std::string& c : keys.right_columns) { out += c; out += ','; }
  return out;
}

}  // namespace

PlanNodeId PlanDag::InternTableScan(const std::string& name,
                                    const Table& table, int64_t version,
                                    int64_t epoch) {
  PlanNode n;
  n.kind = PlanNodeKind::kScanTable;
  n.schema = table.schema();
  n.table = &table;
  n.relation = name;
  n.input_rows = table.cardinality();
  // The (version, epoch) pair makes the key self-invalidating: Inst bumps
  // the extent version, a new change batch bumps the epoch.
  n.fingerprint = "scan:" + name + "@v" + std::to_string(version) + "#e" +
                  std::to_string(epoch);
  return Intern(std::move(n));
}

PlanNodeId PlanDag::InternDeltaScan(const std::string& name,
                                    const DeltaRelation& delta,
                                    int64_t epoch) {
  PlanNode n;
  n.kind = PlanNodeKind::kScanDelta;
  n.schema = delta.schema();
  n.delta = &delta;
  n.relation = name;
  n.input_rows = delta.AbsCardinality();
  n.fingerprint = "dscan:" + name + "#e" + std::to_string(epoch);
  return Intern(std::move(n));
}

PlanNodeId PlanDag::InternRowsScan(const Rows& rows) {
  PlanNode n;
  n.kind = PlanNodeKind::kScanRows;
  n.schema = rows.schema;
  n.rows = &rows;
  n.input_rows = rows.AbsCardinality();
  // Pointer identity only — two semantically equal batches at different
  // addresses must not unify, and nothing above this leaf may be cached.
  std::ostringstream fp;
  fp << "rows:@" << static_cast<const void*>(&rows);
  n.fingerprint = fp.str();
  n.cacheable = false;
  return Intern(std::move(n));
}

PlanNodeId PlanDag::InternFilter(PlanNodeId child, ScalarExpr::Ptr predicate) {
  const PlanNode& c = node(child);
  PlanNode n;
  n.kind = PlanNodeKind::kFilter;
  n.children = {child};
  n.schema = c.schema;
  n.cacheable = c.cacheable;
  n.fingerprint = "filter[" + ExprToSql(predicate) + "](" + c.fingerprint + ")";
  n.filter.predicate = std::move(predicate);
  return Intern(std::move(n));
}

PlanNodeId PlanDag::InternProject(PlanNodeId child,
                                  std::vector<ProjectItem> items) {
  const PlanNode& c = node(child);
  PlanNode n;
  n.kind = PlanNodeKind::kProject;
  n.children = {child};
  n.cacheable = c.cacheable;
  std::vector<Column> cols;
  std::string params;
  for (const ProjectItem& item : items) {
    cols.push_back(Column{
        item.name, BoundExpr::Bind(item.expr, c.schema).result_type()});
    params += ExprToSql(item.expr) + " AS " + item.name + ",";
  }
  n.schema = Schema(std::move(cols));
  n.fingerprint = "project[" + params + "](" + c.fingerprint + ")";
  n.project.items = std::move(items);
  return Intern(std::move(n));
}

PlanNodeId PlanDag::InternHashJoin(PlanNodeId left, PlanNodeId right,
                                   JoinKeys keys) {
  const PlanNode& l = node(left);
  const PlanNode& r = node(right);
  PlanNode n;
  n.kind = PlanNodeKind::kHashJoin;
  n.children = {left, right};
  n.schema = Schema::Concat(l.schema, r.schema);
  n.cacheable = l.cacheable && r.cacheable;
  n.fingerprint = "join[" + JoinKeysFingerprint(keys) + "](" + l.fingerprint +
                  ")(" + r.fingerprint + ")";
  n.join.keys = std::move(keys);
  return Intern(std::move(n));
}

PlanNodeId PlanDag::InternAggregate(PlanNodeId child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggSpec> aggs) {
  const PlanNode& c = node(child);
  PlanNode n;
  n.kind = PlanNodeKind::kAggregate;
  n.children = {child};
  n.cacheable = c.cacheable;

  // Output schema mirrors AggregateSigned: group columns, one column per
  // spec (SUM keeps int64 exactness when its argument is int64), then the
  // hidden per-group contributing-row counter.
  std::vector<Column> cols;
  std::string params;
  for (const std::string& g : group_by) {
    cols.push_back(c.schema.column(c.schema.MustIndexOf(g)));
    params += g + ",";
  }
  params += ";";
  for (const AggSpec& spec : aggs) {
    if (spec.fn == AggFn::kSum) {
      TypeId t =
          BoundExpr::Bind(spec.arg, c.schema).result_type() == TypeId::kInt64
              ? TypeId::kInt64
              : TypeId::kDouble;
      cols.push_back(Column{spec.name, t});
      params += "sum(" + ExprToSql(spec.arg) + ") AS " + spec.name + ",";
    } else {
      cols.push_back(Column{spec.name, TypeId::kInt64});
      params += "count(*) AS " + spec.name + ",";
    }
  }
  cols.push_back(Column{kGroupCountColumn, TypeId::kInt64});
  n.schema = Schema(std::move(cols));
  n.fingerprint = "agg[" + params + "](" + c.fingerprint + ")";
  n.aggregate.group_by = std::move(group_by);
  n.aggregate.aggs = std::move(aggs);
  return Intern(std::move(n));
}

PlanNodeId PlanDag::Intern(PlanNode node) {
  auto it = by_fingerprint_.find(node.fingerprint);
  if (it != by_fingerprint_.end()) {
    // CSE hit: this exact subplan already exists; the new parent edge still
    // counts toward sharing.
    return it->second;
  }
  PlanNodeId id = static_cast<PlanNodeId>(nodes_.size());
  for (PlanNodeId child : node.children) {
    WUW_CHECK(child >= 0 && child < id, "plan children must precede parents");
    nodes_[child].num_uses += 1;
  }
  by_fingerprint_.emplace(node.fingerprint, id);
  nodes_.push_back(std::move(node));
  return id;
}

std::string PlanNodeLabel(const PlanNode& node) {
  std::string label;
  switch (node.kind) {
    case PlanNodeKind::kScanTable: label = "ScanTable"; break;
    case PlanNodeKind::kScanDelta: label = "ScanDelta"; break;
    case PlanNodeKind::kScanRows: label = "ScanRows"; break;
    case PlanNodeKind::kFilter: label = "Filter"; break;
    case PlanNodeKind::kProject: label = "Project"; break;
    case PlanNodeKind::kHashJoin: label = "HashJoin"; break;
    case PlanNodeKind::kAggregate: label = "Aggregate"; break;
  }
  if (!node.relation.empty()) label += "(" + node.relation + ")";
  return label;
}

std::string PlanDag::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PlanNode& n = nodes_[i];
    out << "#" << i << " " << KindName(n.kind);
    if (!n.relation.empty()) out << " " << n.relation;
    if (!n.children.empty()) {
      out << " (";
      for (size_t c = 0; c < n.children.size(); ++c) {
        if (c > 0) out << ", ";
        out << "#" << n.children[c];
      }
      out << ")";
    }
    out << " uses=" << n.num_uses;
    if (!n.cacheable) out << " volatile";
    if (n.est_output_rows > 0) out << " est=" << n.est_output_rows;
    out << "\n";
  }
  return out.str();
}

}  // namespace wuw
