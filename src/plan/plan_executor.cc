#include "plan/plan_executor.h"

#include "common/check.h"
#include "fault/fault_injection.h"

namespace wuw {

PlanExecutor::PlanExecutor(const PlanDag& dag, SubplanCache* cache)
    : dag_(dag), cache_(cache), memo_(dag.size()) {}

void PlanExecutor::PrepareShared(const std::vector<PlanNodeId>& roots,
                                 OperatorStats* stats) {
  if (cache_ == nullptr) return;
  // Mark nodes reachable from the surviving roots (terms skipped for empty
  // deltas must not charge work for subplans nobody will read).
  std::vector<char> reachable(dag_.size(), 0);
  std::vector<PlanNodeId> frontier(roots);
  while (!frontier.empty()) {
    PlanNodeId id = frontier.back();
    frontier.pop_back();
    if (reachable[id]) continue;
    reachable[id] = 1;
    for (PlanNodeId c : dag_.node(id).children) frontier.push_back(c);
  }
  // Ids are a topological order, so ascending iteration materializes
  // children before the shared parents that consume them.
  for (size_t id = 0; id < dag_.size(); ++id) {
    const PlanNode& n = dag_.node(id);
    if (!reachable[id] || n.num_uses < 2 || !n.cacheable) continue;
    WUW_FAULT_POINT("plan.prepare_shared");
    Eval(static_cast<PlanNodeId>(id), stats, /*memoize_shared=*/true);
  }
}

std::shared_ptr<const Rows> PlanExecutor::Execute(PlanNodeId root,
                                                  OperatorStats* stats) {
  return Eval(root, stats, /*memoize_shared=*/false);
}

std::shared_ptr<const Rows> PlanExecutor::Eval(PlanNodeId id,
                                               OperatorStats* stats,
                                               bool memoize_shared) {
  if (memo_[id] != nullptr) return memo_[id];
  WUW_FAULT_POINT("plan.eval");
  const PlanNode& n = dag_.node(id);

  bool try_cache = cache_ != nullptr && n.cacheable;
  std::shared_ptr<const Rows> result;
  if (try_cache) {
    result = cache_->Lookup(n.fingerprint);
    if (stats != nullptr) {
      if (result != nullptr) {
        stats->subplan_cache_hits += 1;
      } else {
        stats->subplan_cache_misses += 1;
      }
    }
  }

  if (result == nullptr) {
    switch (n.kind) {
      case PlanNodeKind::kScanTable:
        result = std::make_shared<const Rows>(Rows::FromTable(*n.table));
        break;
      case PlanNodeKind::kScanDelta:
        result = std::make_shared<const Rows>(n.delta->ToRows());
        break;
      case PlanNodeKind::kScanRows:
        // Borrowed batch: alias the caller's storage, never own or cache it.
        result = std::shared_ptr<const Rows>(n.rows, [](const Rows*) {});
        break;
      default: {
        std::vector<std::shared_ptr<const Rows>> owned;
        std::vector<const Rows*> inputs;
        owned.reserve(n.children.size());
        inputs.reserve(n.children.size());
        for (PlanNodeId c : n.children) {
          owned.push_back(Eval(c, stats, memoize_shared));
          inputs.push_back(owned.back().get());
        }
        Rows out;
        switch (n.kind) {
          case PlanNodeKind::kFilter: out = n.filter.Run(inputs, stats); break;
          case PlanNodeKind::kProject:
            out = n.project.Run(inputs, stats);
            break;
          case PlanNodeKind::kHashJoin: out = n.join.Run(inputs, stats); break;
          case PlanNodeKind::kAggregate:
            out = n.aggregate.Run(inputs, stats);
            break;
          default: WUW_CHECK(false, "unreachable plan node kind");
        }
        result = std::make_shared<const Rows>(std::move(out));
      }
    }
    if (try_cache) {
      cache_->Insert(n.fingerprint, result, n.est_recompute_cost);
    }
  }

  if (memoize_shared && n.num_uses >= 2 && n.cacheable) memo_[id] = result;
  return result;
}

}  // namespace wuw
