#include "plan/plan_executor.h"

#include "common/check.h"
#include "exec/window_budget.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"

namespace wuw {

namespace {

/// Morsel-parallel table snapshot: morsels copy disjoint windows of the
/// dense row storage straight into the pre-sized output, so the result is
/// identical to Rows::FromTable (same order, COW tuple copies only bump
/// refcounts).
Rows ScanTable(const Table& table, ThreadPool* pool,
               const CancelToken* cancel) {
  const auto& dense = table.dense_rows();
  if (!ShouldParallelize(pool, dense.size())) return Rows::FromTable(table);
  Rows out(table.schema());
  out.rows.resize(dense.size());
  pool->ParallelFor(
      dense.size(), kMorselRows,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out.rows[i] = dense[i];
      },
      cancel);
  return out;
}

}  // namespace

PlanExecutor::PlanExecutor(const PlanDag& dag, SubplanCache* cache,
                           ThreadPool* pool, const CancelToken* cancel)
    : dag_(dag), cache_(cache), pool_(pool), cancel_(cancel),
      memo_(dag.size()) {}

void PlanExecutor::PrepareShared(const std::vector<PlanNodeId>& roots,
                                 OperatorStats* stats) {
  if (cache_ == nullptr) return;
  // Mark nodes reachable from the surviving roots (terms skipped for empty
  // deltas must not charge work for subplans nobody will read).
  std::vector<char> reachable(dag_.size(), 0);
  std::vector<PlanNodeId> frontier(roots);
  while (!frontier.empty()) {
    PlanNodeId id = frontier.back();
    frontier.pop_back();
    if (reachable[id]) continue;
    reachable[id] = 1;
    for (PlanNodeId c : dag_.node(id).children) frontier.push_back(c);
  }
  // Ids are a topological order, so ascending iteration materializes
  // children before the shared parents that consume them.
  for (size_t id = 0; id < dag_.size(); ++id) {
    const PlanNode& n = dag_.node(id);
    if (!reachable[id] || n.num_uses < 2 || !n.cacheable) continue;
    WUW_FAULT_POINT("plan.prepare_shared");
    // kEngine, not kWork: PrepareShared only runs when a cache is attached.
    WUW_METRIC_ADD("plan.shared_nodes_prepared", obs::MetricClass::kEngine, 1);
    Eval(static_cast<PlanNodeId>(id), stats, /*memoize_shared=*/true);
  }
}

std::shared_ptr<const Rows> PlanExecutor::Execute(PlanNodeId root,
                                                  OperatorStats* stats) {
  return Eval(root, stats, /*memoize_shared=*/false);
}

std::shared_ptr<const Rows> PlanExecutor::Eval(PlanNodeId id,
                                               OperatorStats* stats,
                                               bool memoize_shared) {
  if (memo_[id] != nullptr) return memo_[id];
  WUW_FAULT_POINT("plan.eval");
  // Node entry is a mutation-free boundary: everything below is read-only
  // w.r.t. the warehouse, so abandoning here leaves the paused state
  // coherent (only a discarded partial result is lost).
  if (cancel_ != nullptr) cancel_->Check();
  const PlanNode& n = dag_.node(id);

  bool try_cache = cache_ != nullptr && n.cacheable;
  std::shared_ptr<const Rows> result;
  if (try_cache) {
    result = cache_->Lookup(n.fingerprint);
    if (stats != nullptr) {
      if (result != nullptr) {
        stats->subplan_cache_hits += 1;
      } else {
        stats->subplan_cache_misses += 1;
      }
    }
  }
  bool from_cache = result != nullptr;

  if (result == nullptr) {
    WUW_METRIC_ADD("plan.nodes_executed", obs::MetricClass::kEngine, 1);
    switch (n.kind) {
      case PlanNodeKind::kScanTable:
        result =
            std::make_shared<const Rows>(ScanTable(*n.table, pool_, cancel_));
        break;
      case PlanNodeKind::kScanDelta:
        result = std::make_shared<const Rows>(n.delta->ToRows());
        break;
      case PlanNodeKind::kScanRows:
        // Borrowed batch: alias the caller's storage, never own or cache it.
        result = std::shared_ptr<const Rows>(n.rows, [](const Rows*) {});
        break;
      default: {
        std::vector<std::shared_ptr<const Rows>> owned(n.children.size());
        std::vector<const Rows*> inputs;
        inputs.reserve(n.children.size());
        // Independent children (a join's two sides) may evaluate
        // concurrently — but never during PrepareShared, whose memo writes
        // are the one piece of executor state that is not thread-safe.
        // Stats fold per child in child order; every counter is a
        // commutative sum, so totals equal the sequential traversal's.
        if (!memoize_shared && n.children.size() > 1 &&
            pool_ != nullptr && pool_->parallelism() > 1) {
          std::vector<OperatorStats> child_stats(n.children.size());
          pool_->ParallelTasks(
              n.children.size(), /*max_workers=*/0,
              [&](size_t c) {
                owned[c] = Eval(n.children[c], &child_stats[c],
                                /*memoize_shared=*/false);
              },
              cancel_);
          if (stats != nullptr) {
            for (const OperatorStats& cs : child_stats) *stats += cs;
          }
        } else {
          for (size_t c = 0; c < n.children.size(); ++c) {
            owned[c] = Eval(n.children[c], stats, memoize_shared);
          }
        }
        for (const auto& child : owned) inputs.push_back(child.get());
        Rows out;
        switch (n.kind) {
          case PlanNodeKind::kFilter:
            out = n.filter.Run(inputs, stats, pool_, cancel_);
            break;
          case PlanNodeKind::kProject:
            out = n.project.Run(inputs, stats, pool_, cancel_);
            break;
          case PlanNodeKind::kHashJoin:
            out = n.join.Run(inputs, stats, pool_, cancel_);
            break;
          case PlanNodeKind::kAggregate:
            out = n.aggregate.Run(inputs, stats, pool_, cancel_);
            break;
          default: WUW_CHECK(false, "unreachable plan node kind");
        }
        result = std::make_shared<const Rows>(std::move(out));
      }
    }
    if (try_cache) {
      cache_->Insert(n.fingerprint, result, n.est_recompute_cost);
    }
  }

  if (runtime_ != nullptr) {
    PlanNodeRuntime& rt = (*runtime_)[id];
    rt.rows = static_cast<int64_t>(result->rows.size());
    rt.from_cache = from_cache;
  }
  if (memoize_shared && n.num_uses >= 2 && n.cacheable) memo_[id] = result;
  return result;
}

}  // namespace wuw
