// The physical-plan layer: typed plan nodes interned into a DAG.
//
// A maintenance term (or a full recompute) lowers into a tree of plan nodes
// — scan / delta-scan / filter / project / hash-join / aggregate — instead
// of executing eagerly.  Trees are built through PlanDag, which performs
// common-subexpression elimination at construction: every node carries a
// canonical fingerprint of (operator, parameters, children), and interning
// a node whose fingerprint already exists returns the existing node.  The
// 2^|Y|-1 terms of one Comp expression therefore share their common join
// prefixes structurally (Mistry et al., "Materialized View Selection and
// Maintenance Using Multi-Query Optimization"), and the fingerprints double
// as keys of the cross-expression SubplanCache.
//
// Fingerprints of extent scans embed the view's extent version and the
// warehouse batch epoch (see exec/warehouse.h): a cached subplan can never
// be served after an Inst rewrote one of its operands or after a new change
// batch arrived, because the key itself changes.
#ifndef WUW_PLAN_PLAN_NODE_H_
#define WUW_PLAN_PLAN_NODE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/filter.h"
#include "algebra/hash_join.h"
#include "algebra/project.h"
#include "algebra/rows.h"
#include "delta/delta_relation.h"
#include "storage/table.h"

namespace wuw {

enum class PlanNodeKind : uint8_t {
  kScanTable,  // materialize a view's current extent
  kScanDelta,  // materialize a pending/finalized delta relation
  kScanRows,   // a caller-supplied Rows batch (never cacheable)
  kFilter,
  kProject,
  kHashJoin,
  kAggregate,
};

/// Index of a node within its PlanDag.
using PlanNodeId = int32_t;

/// One operator of a physical plan.  Leaves reference their operand
/// in place (tables / deltas / rows outlive the DAG); interior nodes hold
/// their algebra kernel (uniform Run(inputs, stats) signature).
struct PlanNode {
  PlanNodeKind kind;
  std::vector<PlanNodeId> children;
  /// Output schema, computed at intern time (joins concatenate, projections
  /// bind their expressions, aggregates mirror AggregateSigned's layout).
  Schema schema;
  /// Canonical identity: equal fingerprints ⇒ equal results.  Used for CSE
  /// within a DAG and as the SubplanCache key across DAGs.
  std::string fingerprint;
  /// False iff the subtree reads a kScanRows leaf, whose identity is only a
  /// pointer — such results must never outlive the caller's batch.
  bool cacheable = true;
  /// Number of parent edges across the whole DAG; ≥ 2 means the subplan is
  /// shared by several terms (the memoization payoff).
  int num_uses = 0;

  // Leaf payloads (exactly one non-null for scan kinds).
  const Table* table = nullptr;
  const DeltaRelation* delta = nullptr;
  const Rows* rows = nullptr;
  /// Source view name for kScanTable / kScanDelta (diagnostics).
  std::string relation;

  // Interior kernels (selected by kind).
  FilterKernel filter;
  ProjectKernel project;
  HashJoinKernel join;
  AggregateKernel aggregate;

  // Annotations filled by stats/plan_cardinality.h.
  /// Exact operand size for leaves (|V| or |δV|); 0 for interior nodes.
  int64_t input_rows = 0;
  /// Estimated output cardinality (System-R composition).
  double est_output_rows = 0;
  /// Estimated rows the engine touches to rebuild this subtree from its
  /// leaves — the SubplanCache evicts low-cost (cheap-to-recompute)
  /// entries first.
  double est_recompute_cost = 0;

  bool is_leaf() const {
    return kind == PlanNodeKind::kScanTable ||
           kind == PlanNodeKind::kScanDelta || kind == PlanNodeKind::kScanRows;
  }
};

/// An arena of plan nodes with fingerprint interning (CSE).  Children are
/// always interned before parents, so node ids are a topological order.
class PlanDag {
 public:
  /// Leaf over a view's extent.  `version` and `epoch` come from the
  /// warehouse (Warehouse::extent_version / batch_epoch); pass 0/0 when no
  /// cross-expression cache is attached.
  PlanNodeId InternTableScan(const std::string& name, const Table& table,
                             int64_t version, int64_t epoch);
  /// Leaf over a delta relation.  Delta contents are stable for the life of
  /// one batch epoch (base deltas are fixed; derived deltas finalize once).
  PlanNodeId InternDeltaScan(const std::string& name,
                             const DeltaRelation& delta, int64_t epoch);
  /// Leaf over caller-owned Rows; never cacheable (pointer identity only).
  PlanNodeId InternRowsScan(const Rows& rows);

  PlanNodeId InternFilter(PlanNodeId child, ScalarExpr::Ptr predicate);
  PlanNodeId InternProject(PlanNodeId child, std::vector<ProjectItem> items);
  PlanNodeId InternHashJoin(PlanNodeId left, PlanNodeId right, JoinKeys keys);
  PlanNodeId InternAggregate(PlanNodeId child,
                             std::vector<std::string> group_by,
                             std::vector<AggSpec> aggs);

  size_t size() const { return nodes_.size(); }
  const PlanNode& node(PlanNodeId id) const { return nodes_[id]; }
  PlanNode* mutable_node(PlanNodeId id) { return &nodes_[id]; }

  /// Debug rendering, one node per line.
  std::string ToString() const;

 private:
  /// Interns `node` (children/fingerprint already set): returns the
  /// existing id on a fingerprint match, else appends.  Bumps children's
  /// num_uses exactly once per parent edge.
  PlanNodeId Intern(PlanNode node);

  std::vector<PlanNode> nodes_;
  std::unordered_map<std::string, PlanNodeId> by_fingerprint_;
};

/// Short operator label for EXPLAIN / observation output, e.g.
/// "HashJoin", "ScanDelta(dOrders)".
std::string PlanNodeLabel(const PlanNode& node);

}  // namespace wuw

#endif  // WUW_PLAN_PLAN_NODE_H_
