// Executes a PlanDag with two layers of result reuse:
//
//  1. Intra-DAG memoization: nodes with more than one parent (the common
//     join prefixes CSE discovered across a Comp's terms) are materialized
//     once by PrepareShared and served from an id-indexed memo afterwards.
//  2. Cross-DAG caching: cacheable nodes consult the SubplanCache by
//     fingerprint, so later expressions of the same stage — or later
//     strategy runs over clones of the same state — reuse results computed
//     under a different DAG entirely.
//
// Both layers are attached iff a SubplanCache is supplied.  With a null
// cache the executor degenerates to eager per-term re-evaluation with
// operator-for-operator identical OperatorStats to the pre-plan pipeline,
// which is what the paper-fidelity experiment tables run.
//
// Thread-safety: after PrepareShared returns, Execute only reads the memo,
// so concurrent term workers may call Execute on disjoint roots with their
// own OperatorStats (the SubplanCache locks internally).  With a ThreadPool
// attached, Execute additionally runs morsel-parallel kernels and evaluates
// a join's two sides concurrently (per-child stats fold in child order);
// PrepareShared — the only memo writer — always evaluates single-threaded.
#ifndef WUW_PLAN_PLAN_EXECUTOR_H_
#define WUW_PLAN_PLAN_EXECUTOR_H_

#include <memory>
#include <vector>

#include "algebra/operator_stats.h"
#include "plan/plan_node.h"
#include "plan/subplan_cache.h"

namespace wuw {

class CancelToken;
class ThreadPool;

/// Per-node execution record for EXPLAIN (obs/explain.h): rows the node
/// actually produced and whether they came from the cross-DAG cache.
struct PlanNodeRuntime {
  /// Rows produced, or -1 if the node never ran (short-circuited by a
  /// memo/cache hit above it, or its term was skipped).
  int64_t rows = -1;
  bool from_cache = false;
};

class PlanExecutor {
 public:
  /// `dag` must outlive the executor.  `cache` may be null (no sharing);
  /// `pool` may be null (fully sequential kernels).  A non-null `cancel`
  /// token is checked at every node entry and forwarded to the kernels'
  /// morsel loops; a fired token unwinds WindowCancelledError out of
  /// Execute/PrepareShared (see exec/window_budget.h).
  PlanExecutor(const PlanDag& dag, SubplanCache* cache,
               ThreadPool* pool = nullptr,
               const CancelToken* cancel = nullptr);

  /// Materializes every cacheable node with num_uses >= 2 that is reachable
  /// from `roots`, in topological (id) order, charging the work to `stats`.
  /// No-op when no cache is attached.  Call once, before any Execute.
  void PrepareShared(const std::vector<PlanNodeId>& roots,
                     OperatorStats* stats);

  /// Evaluates `root` and returns its result.  Results are shared and
  /// immutable; callers needing to mutate should copy (tuples are COW, so
  /// copies are cheap).
  std::shared_ptr<const Rows> Execute(PlanNodeId root, OperatorStats* stats);

  /// Attaches a per-node runtime sink (sized to dag.size() by the caller).
  /// Writes are unsynchronized, so only valid when evaluation is sequential
  /// (null pool or parallelism() == 1) — EXPLAIN's single-threaded replay.
  void set_runtime(std::vector<PlanNodeRuntime>* runtime) {
    runtime_ = runtime;
  }

 private:
  std::shared_ptr<const Rows> Eval(PlanNodeId id, OperatorStats* stats,
                                   bool memoize_shared);

  const PlanDag& dag_;
  SubplanCache* cache_;
  ThreadPool* pool_;
  const CancelToken* cancel_;
  /// Per-node memo, filled only by PrepareShared (read-only afterwards).
  std::vector<std::shared_ptr<const Rows>> memo_;
  /// Optional EXPLAIN sink; see set_runtime.
  std::vector<PlanNodeRuntime>* runtime_ = nullptr;
};

}  // namespace wuw

#endif  // WUW_PLAN_PLAN_EXECUTOR_H_
