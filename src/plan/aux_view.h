// Persistent auxiliary views: the multi-query-optimization layer that
// makes SubplanCache sharing permanent (ROADMAP "MQO across the VDAG";
// Mistry/Roy/Ramamritham/Sudarshan, PAPERS.md).
//
// A Comp(V, Y)'s 2^|Y|-1 terms share left-deep join *prefixes*: every term
// whose leading k operands all read extents evaluates the identical
// filtered join of sources(V)[0..k).  The PlanDag already unifies those
// prefixes within one window (fingerprint interning, PR 1) and the
// SubplanCache carries them across Comps of one batch — but both die with
// the batch.  This layer promotes the hot prefixes to *hidden warehouse
// views* ("__aux_<n>"): real VDAG members with extents, accumulators, and
// version counters, maintained incrementally like any other view, so
// snapshot publish/COW, journaling, and pause/kill/resume cover them with
// zero new machinery.
//
// Three cooperating pieces:
//   1. AuxViewRegistry — the promotion advisor.  ExecuteExpression tallies,
//      per (parent view, prefix length), how many structural terms of each
//      executed Comp could have substituted a materialized prefix
//      (TallyComp; deterministic: counts come from the term *structure*,
//      never from runtime row counts or cache state).  At each commit
//      (Warehouse::ResetBatch -> AuxCommit) the advisor closes the window,
//      ranks hot candidates by benefit x frequency - maintenance cost, and
//      asks the warehouse to materialize the winners.
//   2. FindAuxBinding — the rewrite pass.  EvalComp consults the bindings
//      when lowering each term: if the term's leading operands are all
//      extents whose versions still match the binding's stamps (taken at
//      the materializing commit), the prefix lowers to one aux-extent scan
//      instead of k scans + k-1 joins.  Staleness is structurally
//      impossible: stamps embed extent_version, aux scan nodes embed
//      extent_version + batch_epoch exactly like every cached scan, and
//      any mid-strategy Inst of a covered source kills the substitution
//      for the rest of the window.
//   3. AuxCostInfo (core/work_metric.h) — BuildCostInfo exports the
//      bindings to the strategy optimizers so Prune's costing sees the
//      cheap alternative and strategy *choice* changes.
//
// Gating: the WUW_AUX_VIEWS env knob ("1"/"on" or
// "max=N;min_windows=N;min_uses=N;min_rows=N;auto=0|1") arms every
// warehouse at construction; in-process, Warehouse::EnableAuxViews.
// Unset, Warehouse::aux_ stays null and every hook is one pointer test —
// zero behavior change, bit-identical to an unarmed build
// (bench/micro_aux keeps this honest).
#ifndef WUW_PLAN_AUX_VIEW_H_
#define WUW_PLAN_AUX_VIEW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/work_metric.h"
#include "graph/vdag.h"
#include "storage/catalog.h"
#include "view/view_definition.h"

namespace wuw {

/// Name prefix of hidden auxiliary views.  The prefix is what hides them:
/// Catalog::ContentsEqual skips it, CheckVdagStrategy waives unmentioned
/// views carrying it, and Conflicts() orders their installs conservatively.
inline constexpr char kAuxViewPrefix[] = "__aux_";

/// True for system-created auxiliary views ("__aux_<n>").
inline bool IsAuxViewName(const std::string& name) {
  return name.rfind(kAuxViewPrefix, 0) == 0;
}

/// Advisor policy knobs (WUW_AUX_VIEWS spec grammar).
struct AuxViewOptions {
  /// Cap on distinct materialized aux views per warehouse.
  int64_t max_views = 4;
  /// Consecutive hot windows a candidate must accumulate before promotion.
  int64_t min_windows = 2;
  /// Substitutable terms per window for a window to count as hot.
  int64_t min_uses = 2;
  /// Minimum summed prefix-extent rows — don't bother materializing tiny
  /// prefixes.
  int64_t min_rows = 0;
  /// False = tally only, never materialize (diagnostics).
  bool auto_promote = true;
};

/// Parses a WUW_AUX_VIEWS spec ("1", "on", or ';'-separated clauses
/// "max=N", "min_windows=N", "min_uses=N", "min_rows=N", "auto=0|1") into
/// `out`.  Returns "" on success, else a description of the problem
/// (user-facing input path: error strings, never aborts).
std::string ParseAuxViewSpec(const std::string& spec, AuxViewOptions* out);

/// The process-wide WUW_AUX_VIEWS options, parsed once; nullptr when the
/// variable is unset.  A malformed spec warns once on stderr and reads as
/// unset.
const AuxViewOptions* EnvAuxViews();

/// One substitution rule: terms of `parent` whose leading `prefix_len`
/// operands all read extents may scan `aux_view` instead — provided every
/// stamped version below still matches the live counter.
struct AuxTermBinding {
  std::string parent;
  std::string aux_view;
  size_t prefix_len = 0;
  /// sources(parent)[0 .. prefix_len), in definition order.
  std::vector<std::string> prefix_sources;
  /// extent_version of each prefix source at the last commit; a live
  /// mismatch means some source was rewritten since the aux view was
  /// brought up to date, so the materialization no longer equals the
  /// prefix join.
  std::vector<std::pair<std::string, int64_t>> required_versions;
  /// extent_version of the aux view itself at the last commit; a live
  /// mismatch means the aux extent holds mid-window (post-Inst) state
  /// while un-installed prefix extents are still pre-window.
  int64_t aux_version = 0;
};

/// Immutable copy of the bindings handed to EvalComp for one strategy run
/// (CompEvalOptions::aux_bindings).  Per parent, longest prefix first.
struct AuxBindingSnapshot {
  std::unordered_map<std::string, std::vector<AuxTermBinding>> by_view;
};

/// The rewrite-pass predicate: the longest binding applicable to the term
/// of `def` whose per-source operand choice is `use_delta` (true = delta),
/// or nullptr.  Applicability = all prefix operands are extents, all
/// version stamps match `version_of`, the aux extent exists in `catalog`,
/// and scanning it is strictly cheaper than scanning the prefix extents.
const AuxTermBinding* FindAuxBinding(
    const AuxBindingSnapshot& snapshot, const ViewDefinition& def,
    const std::vector<bool>& use_delta,
    const std::function<int64_t(const std::string&)>& version_of,
    const Catalog& catalog);

/// The promotion advisor + binding store.  Owned by Warehouse (null while
/// disarmed); Copy()'d by Warehouse::Clone so clones substitute and
/// promote identically — which is what keeps kill/resume runs bit-identical
/// to uninterrupted ones.
///
/// Thread-safe where execution touches it (TallyComp from stage workers,
/// snapshot() from MakeCompEvalOptions); the commit-side methods run only
/// from ResetBatch, which is single-threaded by contract.
class AuxViewRegistry {
 public:
  /// A stale materialization ResetBatch must recompute before restamping.
  struct AuxRefresh {
    std::string aux_view;
    std::shared_ptr<const ViewDefinition> def;
  };

  /// One promotion the advisor wants.  `already_materialized` = the recipe
  /// is shared with an existing aux view (classic MQO sharing), so only a
  /// new binding is recorded; otherwise the warehouse materializes
  /// `def` and registers `aux_view` in the VDAG first.
  struct AuxPromotion {
    std::string parent;
    size_t prefix_len = 0;
    std::string aux_view;
    std::shared_ptr<const ViewDefinition> def;
    std::vector<std::string> prefix_sources;
    bool already_materialized = false;
    /// Summed prefix extent cardinalities at proposal time; the warehouse
    /// rejects the materialization unless it comes out strictly smaller.
    int64_t prefix_extent_rows = 0;
    /// Substitutable terms tallied in the closing window — the frequency
    /// the warehouse weighs the measured benefit by before accepting.
    int64_t window_uses = 0;
  };

  explicit AuxViewRegistry(AuxViewOptions options);

  const AuxViewOptions& options() const { return options_; }

  /// Replaces the policy knobs (EnableAuxViews on an already-armed
  /// warehouse).  Tallies, bindings, and stamps are preserved.
  void set_options(AuxViewOptions options);

  /// Advisor input signal: counts, per (def.name(), k), the structural
  /// terms of Comp(def, over) whose first k operands all read extents —
  /// i.e. the terms a k-prefix materialization would have substituted.
  /// Pure arithmetic over the term structure (independent of row counts,
  /// caches, pools, and skip-empty-delta pruning), so tallies — and hence
  /// promotion decisions — are deterministic across every knob.
  void TallyComp(const ViewDefinition& def,
                 const std::vector<std::string>& over);

  /// Current bindings for the rewrite pass; nullptr when nothing is bound
  /// (the common cold-start case — callers skip all aux work on null).
  std::shared_ptr<const AuxBindingSnapshot> snapshot() const;

  /// Bindings in optimizer form (core/work_metric.h).
  AuxCostInfo BuildCostInfo() const;

  /// Deep copy for Warehouse::Clone.
  std::unique_ptr<AuxViewRegistry> Copy() const;

  // Commit-side API, called from Warehouse::ResetBatch in this order:
  // CollectStale -> (refresh each) -> AuditViolations (debug) ->
  // CloseWindow -> (materialize / MarkRejected / Bind each) -> Restamp.

  /// Aux views whose prefix sources were rewritten since the last commit
  /// while the aux extent itself was not (deduped).  Those must be
  /// recomputed before this commit publishes.  Soundness of the converse:
  /// every path that bumps an aux extent's version (Inst via a validated
  /// strategy, RecomputeDerived, a refresh) leaves it equal to its
  /// definition over current sources, so "aux bumped" implies fresh.
  std::vector<AuxRefresh> CollectStale(
      const std::function<int64_t(const std::string&)>& version_of) const;

  /// Closes the tally window: updates hot streaks, resets per-window
  /// counters, and returns the promotions the advisor wants this commit
  /// (empty unless auto_promote).  Deterministic: candidates iterate in
  /// sorted order and scores use catalog cardinalities only.
  std::vector<AuxPromotion> CloseWindow(const Vdag& vdag,
                                        const Catalog& catalog);

  /// Permanently rejects a candidate whose materialization turned out not
  /// to be beneficial (e.g. the prefix join is as large as its inputs).
  void MarkRejected(const std::string& parent, size_t prefix_len);

  /// Records a binding for a successful promotion.  Stamps are filled by
  /// the Restamp that ends the same commit.
  void Bind(const AuxPromotion& promotion);

  /// Re-stamps every binding against the live version counters and extent
  /// mutation counts — the per-commit freshness baseline substitution and
  /// the audit check against.
  void Restamp(const std::function<int64_t(const std::string&)>& version_of,
               const Catalog& catalog);

  /// The PR 7-style debug audit, aux flavor: aux extents mutated since
  /// their stamp whose extent_version was NOT bumped (a missed
  /// NoteExtentChanged would serve stale version-keyed scans).  Empty on a
  /// healthy warehouse; ResetBatch aborts on it in debug builds.
  std::vector<std::string> AuditViolations(
      const std::function<int64_t(const std::string&)>& version_of,
      const Catalog& catalog) const;

  /// Distinct materialized aux views bound so far.
  size_t NumAuxViews() const;

  /// Names of distinct bound aux views (sorted; diagnostics/tests).
  std::vector<std::string> BoundAuxNames() const;

 private:
  struct Candidate {
    int64_t uses_in_window = 0;
    int64_t last_window_uses = 0;
    int64_t total_uses = 0;
    int64_t hot_windows = 0;
    bool rejected = false;
    bool promoted = false;
  };
  struct Binding {
    AuxTermBinding pub;
    std::shared_ptr<const ViewDefinition> def;
    /// Table::mutation_count of the aux extent at the last Restamp.
    int64_t aux_mutations = 0;
  };

  void RebuildSnapshotLocked();

  /// Guards candidates_/bindings_/snapshot_ against concurrent TallyComp /
  /// snapshot() calls from stage workers.
  mutable std::mutex mu_;
  AuxViewOptions options_;
  /// Keyed (parent view, prefix length); std::map for deterministic
  /// iteration order in CloseWindow.
  std::map<std::pair<std::string, size_t>, Candidate> candidates_;
  std::vector<Binding> bindings_;
  /// Canonical prefix recipe -> existing aux view (MQO sharing across
  /// parents: same recipe, one materialization, many bindings).
  std::map<std::string, std::string> recipe_to_aux_;
  /// Recipes of promotions proposed by the last CloseWindow, keyed by aux
  /// name; consumed by Bind, cleared by Restamp.
  std::map<std::string, std::string> pending_recipes_;
  int64_t next_id_ = 0;
  std::shared_ptr<const AuxBindingSnapshot> snapshot_;
};

}  // namespace wuw

#endif  // WUW_PLAN_AUX_VIEW_H_
