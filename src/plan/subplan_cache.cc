#include "plan/subplan_cache.h"

#include <sstream>

#include "common/check.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"

namespace wuw {

int64_t ApproxRowsBytes(const Rows& rows) {
  // Charge each (tuple, multiplicity) entry its value payloads plus fixed
  // bookkeeping (shared_ptr control block, vector headers, multiplicity).
  // COW sharing across copies means this over-approximates total resident
  // bytes, which is the safe direction for a budget.
  constexpr int64_t kPerRowOverhead = 48;
  int64_t bytes = 0;
  for (const auto& [tuple, mult] : rows.rows) {
    (void)mult;
    bytes += kPerRowOverhead;
    for (const Value& v : tuple.values()) {
      bytes += static_cast<int64_t>(sizeof(Value));
      if (v.type() == TypeId::kString) {
        bytes += static_cast<int64_t>(v.AsString().size());
      }
    }
  }
  return bytes;
}

std::string SubplanCacheStats::ToString() const {
  std::ostringstream out;
  out << "hits=" << hits << " misses=" << misses
      << " insertions=" << insertions << " evictions=" << evictions
      << " rejected=" << rejected << " bytes_in_use=" << bytes_in_use
      << " bytes_evicted=" << bytes_evicted
      << " cost_saved=" << static_cast<int64_t>(cost_saved);
  return out.str();
}

std::shared_ptr<const Rows> SubplanCache::Lookup(
    const std::string& fingerprint) {
  WUW_FAULT_POINT("subplan_cache.lookup");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    stats_.misses += 1;
    WUW_METRIC_ADD("cache.misses", obs::MetricClass::kEngine, 1);
    return nullptr;
  }
  stats_.hits += 1;
  stats_.cost_saved += it->second.recompute_cost;
  WUW_METRIC_ADD("cache.hits", obs::MetricClass::kEngine, 1);
  WUW_METRIC_ADD("cache.cost_saved", obs::MetricClass::kEngine,
                 static_cast<int64_t>(it->second.recompute_cost));
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.rows;
}

void SubplanCache::Insert(const std::string& fingerprint,
                          std::shared_ptr<const Rows> rows,
                          double recompute_cost) {
  WUW_CHECK(rows != nullptr, "cannot cache a null result");
  WUW_FAULT_POINT("subplan_cache.insert");
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(fingerprint) > 0) return;
  int64_t bytes = ApproxRowsBytes(*rows);
  if (options_.byte_budget == 0 ||
      (options_.byte_budget > 0 && bytes > options_.byte_budget)) {
    // Budget 0 admits nothing — including zero-byte (empty) results, so
    // "admit nothing" means literally no hits — and a positive budget
    // rejects single results larger than itself.
    stats_.rejected += 1;
    WUW_METRIC_ADD("cache.rejected", obs::MetricClass::kEngine, 1);
    return;
  }
  EvictFor(bytes);
  lru_.push_front(fingerprint);
  entries_.emplace(fingerprint,
                   Entry{std::move(rows), bytes, recompute_cost, lru_.begin()});
  stats_.insertions += 1;
  stats_.bytes_in_use += bytes;
  WUW_METRIC_ADD("cache.insertions", obs::MetricClass::kEngine, 1);
  WUW_METRIC_ADD("cache.bytes_inserted", obs::MetricClass::kEngine, bytes);
}

void SubplanCache::EvictFor(int64_t needed) {
  if (options_.byte_budget < 0) return;  // unbounded
  while (!entries_.empty() &&
         stats_.bytes_in_use + needed > options_.byte_budget) {
    // Victim = cheapest to recompute per byte retained; ties (and the
    // common all-equal-cost case) fall back to least recently used by
    // scanning the LRU list back to front.
    auto victim = entries_.end();
    double victim_score = 0;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto e = entries_.find(*it);
      double score = e->second.recompute_cost /
                     static_cast<double>(e->second.bytes + 1);
      if (victim == entries_.end() || score < victim_score) {
        victim = e;
        victim_score = score;
      }
    }
    stats_.evictions += 1;
    stats_.bytes_in_use -= victim->second.bytes;
    stats_.bytes_evicted += victim->second.bytes;
    WUW_METRIC_ADD("cache.evictions", obs::MetricClass::kEngine, 1);
    WUW_METRIC_ADD("cache.bytes_evicted", obs::MetricClass::kEngine,
                   victim->second.bytes);
    lru_.erase(victim->second.lru_pos);
    entries_.erase(victim);
  }
}

void SubplanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_.bytes_in_use = 0;
}

SubplanCacheStats SubplanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wuw
