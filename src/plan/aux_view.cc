#include "plan/aux_view.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/check.h"
#include "expr/printer.h"
#include "storage/table.h"

namespace wuw {

namespace {

/// Parses a non-negative int64; returns false on any malformed input.
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || v < 0) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

/// Structural analysis of sources(parent)[0..k): which join edges and
/// filter conjuncts belong inside the prefix, plus the canonical recipe
/// string that identifies the materialization across parents.  Mirrors
/// BuildJoinPlan's classification (view/join_pipeline.cc) exactly — the
/// prefix def must compute precisely what the parent pipeline's first k
/// steps compute, including the quirk that no-column conjuncts land at
/// step 0 and are therefore dropped by every lowering path alike.
struct PrefixParts {
  bool constructible = false;
  std::vector<JoinCondition> joins;
  std::vector<ScalarExpr::Ptr> filters;
  std::string recipe;
};

PrefixParts AnalyzePrefix(const Vdag& vdag, const ViewDefinition& parent,
                          size_t k) {
  PrefixParts parts;
  const std::vector<std::string>& sources = parent.sources();
  if (k < 2 || k >= sources.size()) return parts;
  std::vector<const Schema*> schemas;
  schemas.reserve(sources.size());
  for (const std::string& src : sources) {
    if (!vdag.HasView(src)) return parts;
    schemas.push_back(&vdag.OutputSchema(src));
  }

  auto owner_of = [&](const std::string& col) {
    for (size_t s = 0; s < schemas.size(); ++s) {
      if (schemas[s]->HasColumn(col)) return static_cast<int>(s);
    }
    return -1;
  };

  // Join edges with both ends inside the prefix; every prefix step must
  // consume at least one (no cross joins hiding in a materialization).
  std::vector<bool> step_has_edge(k, false);
  for (const JoinCondition& jc : parent.joins()) {
    int a = owner_of(jc.left_column);
    int b = owner_of(jc.right_column);
    if (a < 0 || b < 0) return parts;
    int last = std::max(a, b);
    if (last < static_cast<int>(k)) {
      parts.joins.push_back(jc);
      step_has_edge[last] = true;
    }
  }
  for (size_t i = 1; i < k; ++i) {
    if (!step_has_edge[i]) return parts;
  }

  // Filter conjuncts the pipeline runs at a step < k (single-source ones
  // at their scan, multi-source ones at the join step owning their last
  // column — same rule as BuildJoinPlan).
  for (const ScalarExpr::Ptr& conjunct : parent.filters()) {
    std::vector<std::string> cols = conjunct->ReferencedColumns();
    int single = -1;
    int last = 0;
    bool spans = false;
    for (const std::string& col : cols) {
      int owner = owner_of(col);
      if (owner < 0) return parts;
      if (single == -1) single = owner;
      if (owner != single) spans = true;
      last = std::max(last, owner);
    }
    const int step = (!cols.empty() && !spans) ? single : last;
    if (step < static_cast<int>(k)) parts.filters.push_back(conjunct);
  }

  std::string recipe;
  for (size_t i = 0; i < k; ++i) {
    if (i > 0) recipe += ",";
    recipe += sources[i];
  }
  recipe += "|";
  for (size_t i = 0; i < parts.joins.size(); ++i) {
    if (i > 0) recipe += "&";
    recipe += parts.joins[i].left_column + "=" + parts.joins[i].right_column;
  }
  recipe += "|";
  for (size_t i = 0; i < parts.filters.size(); ++i) {
    if (i > 0) recipe += "&";
    recipe += ExprToSql(parts.filters[i]);
  }
  parts.recipe = std::move(recipe);
  parts.constructible = true;
  return parts;
}

/// The prefix materialization's definition: an SPJ view over the prefix
/// sources whose output is the concatenated source schema verbatim, so an
/// aux-extent scan is column-for-column interchangeable with the parent
/// pipeline's k-th intermediate.
std::shared_ptr<const ViewDefinition> BuildPrefixDef(
    const Vdag& vdag, const ViewDefinition& parent, size_t k,
    const PrefixParts& parts, const std::string& aux_name) {
  ViewDefinitionBuilder builder(aux_name);
  for (size_t i = 0; i < k; ++i) builder.From(parent.sources()[i]);
  for (const JoinCondition& jc : parts.joins) {
    builder.JoinOn(jc.left_column, jc.right_column);
  }
  for (const ScalarExpr::Ptr& f : parts.filters) builder.Where(f);
  for (size_t i = 0; i < k; ++i) {
    for (const Column& col : vdag.OutputSchema(parent.sources()[i]).columns()) {
      builder.SelectColumn(col.name);
    }
  }
  return builder.Build();
}

}  // namespace

std::string ParseAuxViewSpec(const std::string& spec, AuxViewOptions* out) {
  AuxViewOptions parsed;
  if (spec.empty()) return "WUW_AUX_VIEWS: empty spec";
  if (spec == "1" || spec == "on") {
    *out = parsed;
    return "";
  }
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return "WUW_AUX_VIEWS: clause is not key=value: '" + clause + "'";
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    int64_t number = 0;
    if (!ParseInt64(value, &number)) {
      return "WUW_AUX_VIEWS: bad value in '" + clause + "'";
    }
    if (key == "max") {
      parsed.max_views = number;
    } else if (key == "min_windows") {
      parsed.min_windows = number;
    } else if (key == "min_uses") {
      parsed.min_uses = number;
    } else if (key == "min_rows") {
      parsed.min_rows = number;
    } else if (key == "auto") {
      if (number != 0 && number != 1) {
        return "WUW_AUX_VIEWS: auto must be 0 or 1";
      }
      parsed.auto_promote = number == 1;
    } else {
      return "WUW_AUX_VIEWS: unknown key '" + key + "'";
    }
  }
  *out = parsed;
  return "";
}

const AuxViewOptions* EnvAuxViews() {
  static const AuxViewOptions* cached = []() -> const AuxViewOptions* {
    const char* spec = std::getenv("WUW_AUX_VIEWS");
    if (spec == nullptr || spec[0] == '\0') return nullptr;
    static AuxViewOptions options;
    std::string error = ParseAuxViewSpec(spec, &options);
    if (!error.empty()) {
      std::fprintf(stderr, "warning: ignoring %s\n", error.c_str());
      return nullptr;
    }
    return &options;
  }();
  return cached;
}

const AuxTermBinding* FindAuxBinding(
    const AuxBindingSnapshot& snapshot, const ViewDefinition& def,
    const std::vector<bool>& use_delta,
    const std::function<int64_t(const std::string&)>& version_of,
    const Catalog& catalog) {
  auto it = snapshot.by_view.find(def.name());
  if (it == snapshot.by_view.end()) return nullptr;
  const std::vector<std::string>& sources = def.sources();
  for (const AuxTermBinding& binding : it->second) {  // longest prefix first
    const size_t k = binding.prefix_len;
    if (k < 2 || k >= sources.size() || k > use_delta.size() ||
        binding.prefix_sources.size() != k) {
      continue;
    }
    bool applicable = true;
    int64_t prefix_rows = 0;
    for (size_t i = 0; i < k && applicable; ++i) {
      if (use_delta[i] || binding.prefix_sources[i] != sources[i]) {
        applicable = false;
        break;
      }
      const Table* table = catalog.GetTable(sources[i]);
      if (table == nullptr) {
        applicable = false;
        break;
      }
      prefix_rows += table->cardinality();
    }
    if (!applicable) continue;
    for (const auto& [src, version] : binding.required_versions) {
      if (version_of(src) != version) {
        applicable = false;
        break;
      }
    }
    if (!applicable || version_of(binding.aux_view) != binding.aux_version) {
      continue;
    }
    const Table* aux = catalog.GetTable(binding.aux_view);
    // Strict benefit: never substitute a scan that reads no fewer rows.
    if (aux == nullptr || aux->cardinality() >= prefix_rows) continue;
    return &binding;
  }
  return nullptr;
}

AuxViewRegistry::AuxViewRegistry(AuxViewOptions options)
    : options_(options) {}

void AuxViewRegistry::set_options(AuxViewOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
}

void AuxViewRegistry::TallyComp(const ViewDefinition& def,
                                const std::vector<std::string>& over) {
  const size_t n = def.num_sources();
  if (n < 3) return;  // prefixes need k in [2, n): nonempty only for n >= 3
  std::vector<size_t> y_positions;
  y_positions.reserve(over.size());
  for (const std::string& view : over) {
    int index = def.SourceIndex(view);
    if (index >= 0) y_positions.push_back(static_cast<size_t>(index));
  }
  if (y_positions.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t k = 2; k < n; ++k) {
    // Terms substitutable by a k-prefix: mask bits of Y positions < k all
    // zero, at least one bit set among positions >= k.
    int64_t y_beyond = 0;
    for (size_t pos : y_positions) {
      if (pos >= k) ++y_beyond;
    }
    if (y_beyond <= 0 || y_beyond >= 62) continue;
    Candidate& candidate = candidates_[{def.name(), k}];
    const int64_t uses = (int64_t{1} << y_beyond) - 1;
    candidate.uses_in_window += uses;
    candidate.total_uses += uses;
  }
}

std::shared_ptr<const AuxBindingSnapshot> AuxViewRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

AuxCostInfo AuxViewRegistry::BuildCostInfo() const {
  std::lock_guard<std::mutex> lock(mu_);
  AuxCostInfo info;
  for (const Binding& binding : bindings_) {
    info.alternatives.push_back(AuxCostAlternative{
        binding.pub.parent, binding.pub.aux_view, binding.pub.prefix_len,
        binding.pub.prefix_sources});
  }
  return info;
}

std::unique_ptr<AuxViewRegistry> AuxViewRegistry::Copy() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto out = std::make_unique<AuxViewRegistry>(options_);
  out->candidates_ = candidates_;
  out->bindings_ = bindings_;
  out->recipe_to_aux_ = recipe_to_aux_;
  out->pending_recipes_ = pending_recipes_;
  out->next_id_ = next_id_;
  out->RebuildSnapshotLocked();
  return out;
}

std::vector<AuxViewRegistry::AuxRefresh> AuxViewRegistry::CollectStale(
    const std::function<int64_t(const std::string&)>& version_of) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuxRefresh> out;
  std::set<std::string> seen;
  for (const Binding& binding : bindings_) {
    if (!seen.insert(binding.pub.aux_view).second) continue;
    bool source_drift = false;
    for (const auto& [src, version] : binding.pub.required_versions) {
      if (version_of(src) != version) {
        source_drift = true;
        break;
      }
    }
    const bool aux_drift =
        version_of(binding.pub.aux_view) != binding.pub.aux_version;
    // Sources moved but the materialization did not: the window's strategy
    // predates this aux view (or skipped it), so recompute before commit.
    if (source_drift && !aux_drift) {
      out.push_back(AuxRefresh{binding.pub.aux_view, binding.def});
    }
  }
  return out;
}

std::vector<AuxViewRegistry::AuxPromotion> AuxViewRegistry::CloseWindow(
    const Vdag& vdag, const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, candidate] : candidates_) {
    candidate.last_window_uses = candidate.uses_in_window;
    if (candidate.uses_in_window >= options_.min_uses) {
      ++candidate.hot_windows;
    } else {
      candidate.hot_windows = 0;
    }
    candidate.uses_in_window = 0;
  }
  std::vector<AuxPromotion> out;
  if (!options_.auto_promote) return out;

  std::set<std::string> bound_parents;
  std::set<std::string> bound_aux;
  for (const Binding& binding : bindings_) {
    bound_parents.insert(binding.pub.parent);
    bound_aux.insert(binding.pub.aux_view);
  }

  // Best eligible prefix length per parent: maximize (substitutions beyond
  // the maintenance multiplier) x prefix rows — the "benefit x frequency -
  // maintenance cost" rank with the unknown |aux| taken optimistically;
  // the warehouse re-checks against the *actual* materialized cardinality
  // before accepting.  candidates_ is an ordered map, so selection is
  // deterministic.
  struct Pick {
    size_t prefix_len = 0;
    double score = 0;
    int64_t prefix_rows = 0;
    int64_t window_uses = 0;
  };
  std::map<std::string, Pick> picks;
  for (auto& [key, candidate] : candidates_) {
    const std::string& parent = key.first;
    const size_t k = key.second;
    if (candidate.rejected || candidate.promoted) continue;
    if (bound_parents.count(parent) > 0) continue;
    if (candidate.hot_windows < options_.min_windows) continue;
    if (!vdag.IsDerivedView(parent)) continue;
    const ViewDefinition& def = *vdag.definition(parent);
    if (k < 2 || k >= def.num_sources()) continue;
    // Screening: each changed prefix source costs one read of the other
    // k-1 prefix extents per window to maintain the aux view, so fewer
    // than k substitutions per window cannot pay for themselves even if
    // the materialization were free.
    const double spare = static_cast<double>(candidate.last_window_uses) -
                         static_cast<double>(k - 1);
    if (spare <= 0) continue;
    int64_t prefix_rows = 0;
    bool have_tables = true;
    for (size_t i = 0; i < k; ++i) {
      const Table* table = catalog.GetTable(def.sources()[i]);
      if (table == nullptr) {
        have_tables = false;
        break;
      }
      prefix_rows += table->cardinality();
    }
    if (!have_tables || prefix_rows < options_.min_rows) continue;
    const double score = spare * static_cast<double>(prefix_rows);
    auto it = picks.find(parent);
    if (it == picks.end() || score > it->second.score ||
        (score == it->second.score && k < it->second.prefix_len)) {
      picks[parent] =
          Pick{k, score, prefix_rows, candidate.last_window_uses};
    }
  }

  int64_t new_slots =
      options_.max_views - static_cast<int64_t>(bound_aux.size());
  // Recipes proposed earlier in THIS window: recipe_to_aux_ only learns a
  // recipe at Bind (after the warehouse materializes), so without this map
  // two parents sharing a prefix in the same window would each mint their
  // own aux view instead of sharing one (the classic MQO case).
  std::map<std::string, std::string> this_window;
  for (const auto& [parent, pick] : picks) {
    const ViewDefinition& def = *vdag.definition(parent);
    PrefixParts parts = AnalyzePrefix(vdag, def, pick.prefix_len);
    if (!parts.constructible) {
      // Cross joins / unresolvable columns never become constructible:
      // reject permanently so the advisor stops proposing them.
      candidates_[{parent, pick.prefix_len}].rejected = true;
      continue;
    }
    AuxPromotion promotion;
    promotion.parent = parent;
    promotion.prefix_len = pick.prefix_len;
    promotion.prefix_extent_rows = pick.prefix_rows;
    promotion.window_uses = pick.window_uses;
    promotion.prefix_sources.assign(
        def.sources().begin(),
        def.sources().begin() + static_cast<long>(pick.prefix_len));
    auto shared = recipe_to_aux_.find(parts.recipe);
    auto sibling = this_window.find(parts.recipe);
    if (shared != recipe_to_aux_.end()) {
      // Classic MQO sharing: another parent already materialized this
      // recipe — reuse its extent, record only a new binding.
      promotion.aux_view = shared->second;
      promotion.already_materialized = true;
    } else if (sibling != this_window.end()) {
      // Shared with an earlier promotion of this same window; the warehouse
      // processes promotions in order, so the extent exists (or the sibling
      // was rejected — the warehouse skips the binding in that case).
      promotion.aux_view = sibling->second;
      promotion.already_materialized = true;
    } else {
      if (new_slots <= 0) continue;  // capacity full; retry next window
      --new_slots;
      promotion.aux_view = kAuxViewPrefix + std::to_string(next_id_++);
      this_window.emplace(parts.recipe, promotion.aux_view);
    }
    promotion.def = BuildPrefixDef(vdag, def, pick.prefix_len, parts,
                                   promotion.aux_view);
    pending_recipes_[promotion.aux_view] = parts.recipe;
    out.push_back(std::move(promotion));
  }
  return out;
}

void AuxViewRegistry::MarkRejected(const std::string& parent,
                                   size_t prefix_len) {
  std::lock_guard<std::mutex> lock(mu_);
  candidates_[{parent, prefix_len}].rejected = true;
}

void AuxViewRegistry::Bind(const AuxPromotion& promotion) {
  std::lock_guard<std::mutex> lock(mu_);
  Binding binding;
  binding.pub.parent = promotion.parent;
  binding.pub.aux_view = promotion.aux_view;
  binding.pub.prefix_len = promotion.prefix_len;
  binding.pub.prefix_sources = promotion.prefix_sources;
  for (const std::string& src : promotion.prefix_sources) {
    binding.pub.required_versions.emplace_back(src, 0);
  }
  binding.def = promotion.def;
  bindings_.push_back(std::move(binding));
  candidates_[{promotion.parent, promotion.prefix_len}].promoted = true;
  auto recipe = pending_recipes_.find(promotion.aux_view);
  if (recipe != pending_recipes_.end()) {
    recipe_to_aux_.emplace(recipe->second, promotion.aux_view);
  }
  // Snapshot rebuild happens in the Restamp that ends this same commit.
}

void AuxViewRegistry::Restamp(
    const std::function<int64_t(const std::string&)>& version_of,
    const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_recipes_.clear();
  for (Binding& binding : bindings_) {
    for (auto& [src, version] : binding.pub.required_versions) {
      version = version_of(src);
    }
    binding.pub.aux_version = version_of(binding.pub.aux_view);
    const Table* table = catalog.GetTable(binding.pub.aux_view);
    binding.aux_mutations = table != nullptr ? table->mutation_count() : 0;
  }
  RebuildSnapshotLocked();
}

std::vector<std::string> AuxViewRegistry::AuditViolations(
    const std::function<int64_t(const std::string&)>& version_of,
    const Catalog& catalog) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Binding& binding : bindings_) {
    if (!seen.insert(binding.pub.aux_view).second) continue;
    const Table* table = catalog.GetTable(binding.pub.aux_view);
    if (table == nullptr) continue;
    const bool mutated = table->mutation_count() != binding.aux_mutations;
    const bool bumped =
        version_of(binding.pub.aux_view) != binding.pub.aux_version;
    if (mutated && !bumped) out.push_back(binding.pub.aux_view);
  }
  return out;
}

size_t AuxViewRegistry::NumAuxViews() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> aux;
  for (const Binding& binding : bindings_) aux.insert(binding.pub.aux_view);
  return aux.size();
}

std::vector<std::string> AuxViewRegistry::BoundAuxNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> aux;
  for (const Binding& binding : bindings_) aux.insert(binding.pub.aux_view);
  return std::vector<std::string>(aux.begin(), aux.end());
}

void AuxViewRegistry::RebuildSnapshotLocked() {
  if (bindings_.empty()) {
    snapshot_ = nullptr;
    return;
  }
  auto snapshot = std::make_shared<AuxBindingSnapshot>();
  for (const Binding& binding : bindings_) {
    snapshot->by_view[binding.pub.parent].push_back(binding.pub);
  }
  for (auto& [view, list] : snapshot->by_view) {
    std::sort(list.begin(), list.end(),
              [](const AuxTermBinding& a, const AuxTermBinding& b) {
                if (a.prefix_len != b.prefix_len) {
                  return a.prefix_len > b.prefix_len;  // longest first
                }
                return a.aux_view < b.aux_view;
              });
  }
  snapshot_ = std::move(snapshot);
}

}  // namespace wuw
